//! The shared-concurrency policy-resolution service: "how do I deliver
//! to domain X right now?" for millions of queued messages (ROADMAP
//! item 2; paper §2.4/§3.3).
//!
//! The per-message engine ([`crate::delivery`]) and the queue's per-wave
//! resolution ([`crate::enforce`]) both answer that question for *one*
//! caller at a time over a private [`PolicyCache`]. A long-running MTA
//! answers it for hundreds of concurrent delivery workers, and the
//! sender-side measurements ("Lazy Gatekeepers", PAPERS.md) show that
//! *this* layer — what the cache does under live traffic — decides how
//! much protection MTA-STS actually delivers. This module is that
//! service:
//!
//! - **[`ShardedPolicyCache`]** — `RwLock`-per-shard over the existing
//!   [`PolicyCache`] decision logic. Reads (the overwhelmingly common
//!   warm-path operation) take a shard read lock and never write, so
//!   they proceed concurrently; writes touch exactly one shard. Shard
//!   assignment is FNV-1a over the domain's labels, so it is stable
//!   across runs and processes.
//! - **Single-flight refresh** — a thundering herd of N workers
//!   resolving the same cold domain triggers exactly **one** policy
//!   fetch: the first caller becomes the flight leader, the other N−1
//!   park on the in-flight slot (a condvar) and reuse the leader's
//!   result. Coalesced waits are counted.
//! - **Request admission** — the HTTPS fetch leg (the part that can
//!   hammer a small policy host) is gated by a
//!   [`netbase::rate::TokenBucket`]. The deterministic batch driver
//!   plans admission instants with [`TokenBucket::plan_admissions`],
//!   exactly as the parallel scanner's per-shard clocks do, and sheds
//!   requests whose admission would be delayed past the configured
//!   bound.
//! - **Kumomta egress semantics** — answers are the existing
//!   [`ResolvedPolicy`] / [`crate::enforce::TlsRequirement`] types, so
//!   cached policy *mode* adjusts the effective TLS requirement and the
//!   DANE/TLSA precedence rule of the queue is untouched (DANE is
//!   per-MX-host and stays with the attempt planner).
//! - **`/metrics`** — the service's counters (hits, fetches, coalesced
//!   waits, stale fallbacks, shed requests, …) render through the
//!   `obsv` Prometheus exporter; [`ResolverDaemon`] serves them over a
//!   real TCP socket.
//!
//! # Determinism contract
//!
//! Live concurrent [`PolicyResolver::resolve`] calls are scheduled by
//! the OS and make no ordering promise beyond single-flight. The
//! **batch** driver [`PolicyResolver::resolve_batch`] is the
//! deterministic surface: for a fixed `(cache state, source behaviour,
//! batch, submit instant)` its resolution ledger — and therefore
//! [`resolution_digest`] — is byte-identical at every `SCAN_THREADS`,
//! because classification is a pure read phase, fetch admission is
//! planned once on the single logical bucket, and stores fold back in
//! submission order.

use crate::enforce::ResolvedPolicy;
use crate::pipeline::MxTransport;
use mtasts::{
    evaluate_record_set, parse_policy, CacheDecision, CachedPolicy, Mode, PolicyCache, RecordError,
    StsRecord,
};
use netbase::{map_sharded, DomainName, Duration, SimInstant, TokenBucket};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

// ---------------------------------------------------------------------
// Policy source
// ---------------------------------------------------------------------

/// Where policies come from: the `_mta-sts` TXT lookup and the
/// strict-TLS HTTPS fetch. Both must be pure functions of
/// `(domain, now)` for the batch driver's determinism contract to hold.
pub trait PolicySource: Sync {
    /// The `_mta-sts.<domain>` TXT strings; `None` when the lookup
    /// failed (SERVFAIL-class), `Some(vec![])` when the name does not
    /// exist.
    fn record_txts(&self, domain: &DomainName, now: SimInstant) -> Option<Vec<String>>;

    /// Fetches the raw policy document over strict-TLS HTTPS.
    fn fetch_policy(&self, domain: &DomainName, now: SimInstant) -> Result<String, String>;
}

/// Adapts any queue transport into a [`PolicySource`], so the delivery
/// pipeline and the daemon resolve through one cache implementation.
pub struct TransportSource<'a, T: MxTransport + ?Sized>(pub &'a T);

impl<T: MxTransport + ?Sized> PolicySource for TransportSource<'_, T> {
    fn record_txts(&self, domain: &DomainName, now: SimInstant) -> Option<Vec<String>> {
        self.0.sts_record(domain, now)
    }

    fn fetch_policy(&self, domain: &DomainName, now: SimInstant) -> Result<String, String> {
        self.0.fetch_sts_policy(domain, now)
    }
}

// ---------------------------------------------------------------------
// Sharded cache
// ---------------------------------------------------------------------

/// FNV-1a 64-bit, fed incrementally (shard selection, ledger digests).
fn fnv64(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The shard a domain maps to among `n` shards (`n` a power of two):
/// FNV-1a over its labels, stable across runs and processes.
fn shard_index_for(domain: &DomainName, n: usize) -> usize {
    let mut h = FNV_OFFSET;
    for label in domain.labels() {
        h = fnv64(h, label.as_bytes());
        h = fnv64(h, b".");
    }
    (h as usize) & (n - 1)
}

/// A concurrent TOFU policy cache: `RwLock`-per-shard over
/// [`PolicyCache`]. Decision logic is entirely the inner cache's
/// ([`PolicyCache::assess`]), so a sharded cache is observationally
/// equivalent to one big `PolicyCache` — the property the oracle
/// cross-check proptest pins.
#[derive(Debug)]
pub struct ShardedPolicyCache {
    shards: Vec<RwLock<PolicyCache>>,
    /// Cache uses (served decisions), summed across all callers.
    hits: AtomicU64,
}

impl ShardedPolicyCache {
    /// A cache with `shards` shards (rounded up to a power of two,
    /// minimum 1).
    pub fn new(shards: usize) -> ShardedPolicyCache {
        let n = shards.max(1).next_power_of_two();
        ShardedPolicyCache {
            shards: (0..n).map(|_| RwLock::new(PolicyCache::new())).collect(),
            hits: AtomicU64::new(0),
        }
    }

    /// Rebuilds a cache from a [`snapshot`](ShardedPolicyCache::snapshot)
    /// (same entry format as [`PolicyCache::snapshot`], so pipeline
    /// checkpoints written before the sharded cache still restore).
    /// Counters start at zero — seeding is not traffic.
    pub fn from_snapshot(
        entries: Vec<(DomainName, CachedPolicy)>,
        shards: usize,
    ) -> ShardedPolicyCache {
        let n = shards.max(1).next_power_of_two();
        let mut per_shard: Vec<Vec<(DomainName, CachedPolicy)>> =
            (0..n).map(|_| Vec::new()).collect();
        for (domain, entry) in entries {
            per_shard[shard_index_for(&domain, n)].push((domain, entry));
        }
        // Per-shard `from_snapshot` keeps counters at zero: seeding is
        // not fetch traffic.
        ShardedPolicyCache {
            shards: per_shard
                .into_iter()
                .map(|entries| RwLock::new(PolicyCache::from_snapshot(entries)))
                .collect(),
            hits: AtomicU64::new(0),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a domain lives in: FNV-1a over its labels, stable
    /// across runs, processes, and shard-count-preserving rebuilds.
    pub fn shard_index(&self, domain: &DomainName) -> usize {
        shard_index_for(domain, self.shards.len())
    }

    /// The cache decision for `domain` under a shard **read** lock —
    /// the lock-free-read warm path. Counts a hit when the decision is
    /// served from cache.
    pub fn assess(
        &self,
        domain: &DomainName,
        current_record_id: Option<&str>,
        now: SimInstant,
    ) -> CacheDecision {
        let shard = self.shards[self.shard_index(domain)]
            .read()
            .expect("shard lock poisoned");
        let decision = shard.assess(domain, current_record_id, now);
        if matches!(
            decision,
            CacheDecision::UseCached(_) | CacheDecision::UseCachedDespiteDns(_)
        ) {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        decision
    }

    /// Stores a freshly fetched policy (shard write lock; the inner
    /// cache counts the completed fetch).
    pub fn store(
        &self,
        domain: DomainName,
        policy: mtasts::Policy,
        record_id: &str,
        now: SimInstant,
    ) {
        let idx = self.shard_index(&domain);
        self.shards[idx]
            .write()
            .expect("shard lock poisoned")
            .store(domain, policy, record_id, now);
    }

    /// A clone of the raw entry, fresh or not (stale-fallback reads).
    pub fn entry_clone(&self, domain: &DomainName) -> Option<CachedPolicy> {
        self.shards[self.shard_index(domain)]
            .read()
            .expect("shard lock poisoned")
            .peek(domain)
            .cloned()
    }

    /// Removes every expired entry across all shards; returns how many
    /// were dropped. This is the disposal path `decide`/`assess`
    /// deliberately do not take (stale fallback needs the entries).
    pub fn evict_expired(&self, now: SimInstant) -> usize {
        self.shards
            .iter()
            .map(|s| s.write().expect("shard lock poisoned").evict_expired(now))
            .sum()
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").len())
            .sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(cache uses, completed fetches)` across all shards.
    pub fn stats(&self) -> (u64, u64) {
        let fetches = self
            .shards
            .iter()
            .map(|s| s.read().expect("shard lock poisoned").stats().1)
            .sum();
        (self.hits.load(Ordering::Relaxed), fetches)
    }

    /// A canonical snapshot: every entry from every shard, sorted by
    /// domain — byte-identical to the equivalent single
    /// [`PolicyCache::snapshot`], whatever the shard count (the
    /// shard-merge determinism property).
    pub fn snapshot(&self) -> Vec<(DomainName, CachedPolicy)> {
        let mut entries: Vec<(DomainName, CachedPolicy)> = self
            .shards
            .iter()
            .flat_map(|s| s.read().expect("shard lock poisoned").snapshot())
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }
}

// ---------------------------------------------------------------------
// Shared resolution (pipeline + resolver leaders)
// ---------------------------------------------------------------------

/// How a resolution was satisfied — the ledger-facing classification
/// behind the service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Disposition {
    /// Fresh cache entry, record id unchanged.
    Hit,
    /// Fresh cache entry despite a failed record lookup (TOFU
    /// downgrade protection).
    HitDespiteDns,
    /// A completed HTTPS fetch (this caller was the flight leader).
    Fetched,
    /// Parked on another caller's in-flight fetch and reused its result.
    Coalesced,
    /// Refresh failed; a retained cached policy governs (RFC 8461 §3.3).
    StaleFallback,
    /// No record (or NXDOMAIN): MTA-STS does not apply.
    Undeployed,
    /// A record exists but is invalid (counts as not deployed, §3.1).
    RecordInvalid,
    /// Fetch failed and nothing cached could take over.
    Unavailable,
    /// Admission control refused the fetch leg (token bucket empty or
    /// delay past the bound).
    Shed,
}

/// The pre-evaluated `_mta-sts` record lookup.
type RecordLookup = Option<Result<StsRecord, RecordError>>;

fn evaluate_lookup(txts: Option<&[String]>) -> RecordLookup {
    txts.map(evaluate_record_set)
}

fn record_id_of(record: &RecordLookup) -> Option<String> {
    match record {
        Some(Ok(r)) => Some(r.id.clone()),
        _ => None,
    }
}

/// §3.3 stale fallback against the sharded cache: a still-fresh entry
/// keeps governing after a failed refresh; an expired one never
/// resurrects *on this path* (the record was readable, so the domain
/// demonstrably still publishes MTA-STS — a dark policy host past
/// `max_age` resolves Unavailable, exactly like [`crate::enforce`]).
fn stale_or_shared(
    cache: &ShardedPolicyCache,
    domain: &DomainName,
    now: SimInstant,
    reason: String,
) -> (ResolvedPolicy, Disposition) {
    match cache.entry_clone(domain).filter(|e| e.is_fresh(now)) {
        Some(entry) => (
            ResolvedPolicy::Active {
                policy: entry.policy,
                from_cache: true,
                stale: true,
            },
            Disposition::StaleFallback,
        ),
        None => (
            ResolvedPolicy::Unavailable { reason },
            Disposition::Unavailable,
        ),
    }
}

/// Resolves `domain` against the shared cache with a pre-evaluated
/// record lookup. `admit_fetch` gates the HTTPS leg (admission
/// control); everything up to it is lock-free reads plus at most one
/// shard write on a completed fetch.
///
/// This is the single implementation both the delivery pipeline's
/// per-wave resolution and the resolver's flight leaders run — the
/// semantics mirror [`crate::enforce::resolve_domain`] over one big
/// cache, which the oracle cross-check proptest verifies.
fn resolve_with_record<S: PolicySource + ?Sized>(
    cache: &ShardedPolicyCache,
    source: &S,
    domain: &DomainName,
    record: RecordLookup,
    now: SimInstant,
    admit_fetch: &mut dyn FnMut(SimInstant) -> bool,
) -> (ResolvedPolicy, Disposition) {
    let record_id = record_id_of(&record);
    match cache.assess(domain, record_id.as_deref(), now) {
        CacheDecision::UseCached(entry) => (
            ResolvedPolicy::Active {
                policy: entry.policy,
                from_cache: true,
                stale: false,
            },
            Disposition::Hit,
        ),
        CacheDecision::UseCachedDespiteDns(entry) => (
            ResolvedPolicy::Active {
                policy: entry.policy,
                from_cache: true,
                stale: false,
            },
            Disposition::HitDespiteDns,
        ),
        CacheDecision::Fetch(_) => match record {
            // Record lookup failed (SERVFAIL-class): any retained entry —
            // even past `max_age`, since `decide` no longer disposes of
            // it — keeps governing (§3.3; a sender cannot tell blocked
            // DNS from an outage). Genuine removal is the NXDOMAIN arm.
            None => match cache.entry_clone(domain) {
                Some(entry) => (
                    ResolvedPolicy::Active {
                        policy: entry.policy,
                        from_cache: true,
                        stale: true,
                    },
                    Disposition::StaleFallback,
                ),
                None => (ResolvedPolicy::NotApplicable, Disposition::Undeployed),
            },
            Some(Err(RecordError::NoRecord)) => {
                (ResolvedPolicy::NotApplicable, Disposition::Undeployed)
            }
            Some(Err(e)) => (ResolvedPolicy::RecordInvalid(e), Disposition::RecordInvalid),
            Some(Ok(rec)) => {
                if !admit_fetch(now) {
                    return (
                        ResolvedPolicy::Unavailable {
                            reason: "fetch shed by admission control".to_string(),
                        },
                        Disposition::Shed,
                    );
                }
                match source.fetch_policy(domain, now) {
                    Ok(body) => match parse_policy(&body) {
                        Ok(policy) => {
                            cache.store(domain.clone(), policy.clone(), &rec.id, now);
                            (
                                ResolvedPolicy::Active {
                                    policy,
                                    from_cache: false,
                                    stale: false,
                                },
                                Disposition::Fetched,
                            )
                        }
                        Err(e) => stale_or_shared(
                            cache,
                            domain,
                            now,
                            format!("policy parse failure: {e:?}"),
                        ),
                    },
                    Err(e) => {
                        stale_or_shared(cache, domain, now, format!("policy fetch failure: {e}"))
                    }
                }
            }
        },
    }
}

/// Sequential resolution through the shared cache — the delivery
/// pipeline's per-wave entry point (no admission, no flight: wave
/// resolution is already one-caller-per-domain by construction).
pub fn resolve_shared<S: PolicySource + ?Sized>(
    cache: &ShardedPolicyCache,
    source: &S,
    domain: &DomainName,
    now: SimInstant,
) -> (ResolvedPolicy, Disposition) {
    let txts = source.record_txts(domain, now);
    let record = evaluate_lookup(txts.as_deref());
    resolve_with_record(cache, source, domain, record, now, &mut |_| true)
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// The resolver's service counters. Monotonic, relaxed atomics: totals
/// are exact (every event increments exactly once), order is not
/// meaningful.
#[derive(Debug, Default)]
struct Metrics {
    requests: AtomicU64,
    hits: AtomicU64,
    hits_despite_dns: AtomicU64,
    fetches: AtomicU64,
    coalesced: AtomicU64,
    stale_fallbacks: AtomicU64,
    shed: AtomicU64,
    undeployed: AtomicU64,
    record_invalid: AtomicU64,
    unavailable: AtomicU64,
    evicted: AtomicU64,
    sweeps: AtomicU64,
    /// Wall-clock latency of live [`PolicyResolver::resolve`] calls in
    /// microseconds. A service observable (the `/metrics` surface
    /// reports p50/p95/p99 from it), never part of any deterministic
    /// ledger — which is why it may hold real timings.
    latency_us: Mutex<obsv::Histogram>,
}

/// A point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct MetricsSnapshot {
    /// Total resolve calls answered (batch rows included).
    pub requests: u64,
    /// Decisions served from a fresh cache entry.
    pub hits: u64,
    /// Hits served through a failed record lookup (TOFU protection).
    pub hits_despite_dns: u64,
    /// Completed HTTPS policy fetches.
    pub fetches: u64,
    /// Callers that parked on an in-flight fetch and reused its result.
    pub coalesced: u64,
    /// RFC 8461 §3.3 stale fallbacks served.
    pub stale_fallbacks: u64,
    /// Fetches refused by admission control.
    pub shed: u64,
    /// Resolutions concluding MTA-STS does not apply.
    pub undeployed: u64,
    /// Resolutions hitting an invalid `_mta-sts` record.
    pub record_invalid: u64,
    /// Resolutions with no usable policy and no fallback.
    pub unavailable: u64,
    /// Entries dropped by expiry sweeps.
    pub evicted: u64,
    /// Expiry sweeps run.
    pub sweeps: u64,
    /// Live cache entries at snapshot time.
    pub cache_entries: u64,
}

impl Metrics {
    fn count(&self, disposition: Disposition) {
        let slot = match disposition {
            Disposition::Hit => &self.hits,
            Disposition::HitDespiteDns => &self.hits_despite_dns,
            Disposition::Fetched => &self.fetches,
            Disposition::Coalesced => &self.coalesced,
            Disposition::StaleFallback => &self.stale_fallbacks,
            Disposition::Shed => &self.shed,
            Disposition::Undeployed => &self.undeployed,
            Disposition::RecordInvalid => &self.record_invalid,
            Disposition::Unavailable => &self.unavailable,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Resolver
// ---------------------------------------------------------------------

/// Admission control for the fetch leg.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Sustained fetches per second.
    pub rate_per_sec: f64,
    /// Burst capacity.
    pub burst: u32,
    /// Batch driver: a fetch whose planned admission instant would lie
    /// more than this far past its submit instant is shed instead of
    /// queued. The live path sheds when no token is immediately
    /// available (a parked delivery worker cannot wait out a refill).
    pub max_delay: Duration,
}

/// Resolver tuning.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Cache shards (rounded up to a power of two).
    pub shards: usize,
    /// Fetch admission; `None` disables shedding entirely.
    pub admission: Option<AdmissionConfig>,
    /// Worker threads for [`PolicyResolver::resolve_batch`]
    /// (0 = read `SCAN_THREADS`, default 1).
    pub threads: usize,
}

impl Default for ResolverConfig {
    fn default() -> ResolverConfig {
        ResolverConfig {
            shards: 16,
            admission: None,
            threads: 0,
        }
    }
}

impl ResolverConfig {
    fn effective_threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        std::env::var("SCAN_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1)
    }
}

/// One in-flight fetch slot: the leader publishes its result here and
/// wakes every parked follower.
#[derive(Default)]
struct Flight {
    result: Mutex<Option<(ResolvedPolicy, Disposition)>>,
    ready: Condvar,
}

/// One row of the resolution ledger — serializable, so the batch
/// driver's output digests like the delivery ledger does.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resolution {
    /// Submission index within the batch (stable across thread counts).
    pub seq: u64,
    /// The recipient domain resolved.
    pub domain: DomainName,
    /// How the resolution was satisfied.
    pub disposition: Disposition,
    /// The governing policy's mode, when one applies.
    pub mode: Option<Mode>,
    /// Whether §3.3 stale fallback supplied the policy.
    pub stale: bool,
    /// The instant the resolution was performed at (admission clock for
    /// fetch leaders, submit instant otherwise).
    pub resolved_unix_secs: i64,
}

/// FNV-1a 64-bit over the serialized resolution ledger — the
/// byte-identity witness the 1-vs-8-thread tests and `exp_resolver`
/// compare.
pub fn resolution_digest(rows: &[Resolution]) -> String {
    let payload = serde_json::to_string(rows).expect("ledger serializes");
    format!("{:016x}", fnv64(FNV_OFFSET, payload.as_bytes()))
}

fn row_for(
    seq: u64,
    domain: &DomainName,
    resolved: &ResolvedPolicy,
    disposition: Disposition,
    at: SimInstant,
) -> Resolution {
    let (mode, stale) = match resolved {
        ResolvedPolicy::Active { policy, stale, .. } => (Some(policy.mode), *stale),
        _ => (None, false),
    };
    Resolution {
        seq,
        domain: domain.clone(),
        disposition,
        mode,
        stale,
        resolved_unix_secs: at.unix_secs(),
    }
}

/// The concurrent policy-resolution service.
pub struct PolicyResolver {
    cfg: ResolverConfig,
    cache: ShardedPolicyCache,
    /// Per-shard in-flight fetch slots (single-flight).
    inflight: Vec<Mutex<HashMap<DomainName, Arc<Flight>>>>,
    /// The single logical admission bucket (per-shard clocks are
    /// *planned* from it, as the scan engine does).
    bucket: Option<Mutex<TokenBucket>>,
    metrics: Metrics,
}

impl PolicyResolver {
    /// A resolver with an empty cache. `epoch` starts the admission
    /// bucket's clock.
    pub fn new(cfg: ResolverConfig, epoch: SimInstant) -> PolicyResolver {
        PolicyResolver::with_cache(cfg, epoch, Vec::new())
    }

    /// A resolver seeded from a cache snapshot (checkpoint resume, warm
    /// starts). Seeding never touches counters.
    pub fn with_cache(
        cfg: ResolverConfig,
        epoch: SimInstant,
        entries: Vec<(DomainName, CachedPolicy)>,
    ) -> PolicyResolver {
        let cache = ShardedPolicyCache::from_snapshot(entries, cfg.shards);
        let inflight = (0..cache.shard_count()).map(|_| Mutex::default()).collect();
        let bucket = cfg
            .admission
            .as_ref()
            .map(|a| Mutex::new(TokenBucket::new(a.rate_per_sec, a.burst, epoch)));
        PolicyResolver {
            cfg,
            cache,
            inflight,
            bucket,
            metrics: Metrics::default(),
        }
    }

    /// The underlying sharded cache (snapshots, sweeps, tests).
    pub fn cache(&self) -> &ShardedPolicyCache {
        &self.cache
    }

    /// A copy of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.metrics.requests.load(Ordering::Relaxed),
            hits: self.metrics.hits.load(Ordering::Relaxed),
            hits_despite_dns: self.metrics.hits_despite_dns.load(Ordering::Relaxed),
            fetches: self.metrics.fetches.load(Ordering::Relaxed),
            coalesced: self.metrics.coalesced.load(Ordering::Relaxed),
            stale_fallbacks: self.metrics.stale_fallbacks.load(Ordering::Relaxed),
            shed: self.metrics.shed.load(Ordering::Relaxed),
            undeployed: self.metrics.undeployed.load(Ordering::Relaxed),
            record_invalid: self.metrics.record_invalid.load(Ordering::Relaxed),
            unavailable: self.metrics.unavailable.load(Ordering::Relaxed),
            evicted: self.metrics.evicted.load(Ordering::Relaxed),
            sweeps: self.metrics.sweeps.load(Ordering::Relaxed),
            cache_entries: self.cache.len() as u64,
        }
    }

    /// The counters as an `obsv` collector — the `/metrics` surface
    /// renders this through [`obsv::export::prometheus_text`].
    pub fn metrics_collector(&self) -> obsv::Collector {
        let snap = self.metrics();
        let mut c = obsv::Collector::new();
        let pairs: [(&'static str, u64); 13] = [
            ("resolver.requests", snap.requests),
            ("resolver.hits", snap.hits),
            ("resolver.hits_despite_dns", snap.hits_despite_dns),
            ("resolver.fetches", snap.fetches),
            ("resolver.coalesced_waits", snap.coalesced),
            ("resolver.stale_fallbacks", snap.stale_fallbacks),
            ("resolver.shed_requests", snap.shed),
            ("resolver.undeployed", snap.undeployed),
            ("resolver.record_invalid", snap.record_invalid),
            ("resolver.unavailable", snap.unavailable),
            ("resolver.evicted", snap.evicted),
            ("resolver.sweeps", snap.sweeps),
            ("resolver.cache_entries", snap.cache_entries),
        ];
        for (name, value) in pairs {
            *c.counters.entry(name).or_default() += value;
        }
        if let Ok(h) = self.metrics.latency_us.lock() {
            if h.count > 0 {
                c.histograms.insert("resolver.latency_us", h.clone());
            }
        }
        c
    }

    /// The Prometheus text exposition of the service counters.
    pub fn metrics_text(&self) -> String {
        obsv::export::prometheus_text(&self.metrics_collector())
    }

    /// Removes expired entries (the disposal path the decision logic
    /// deliberately does not take).
    pub fn sweep(&self, now: SimInstant) -> usize {
        let evicted = self.cache.evict_expired(now);
        self.metrics.sweeps.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .evicted
            .fetch_add(evicted as u64, Ordering::Relaxed);
        obsv::counter!("resolver.sweep_evicted", evicted as u64);
        evicted
    }

    /// Live concurrent resolution with single-flight refresh: any
    /// number of threads may call this; a cold domain triggers exactly
    /// one policy fetch, with every other caller parked on the flight
    /// slot and reusing the leader's result.
    pub fn resolve<S: PolicySource>(
        &self,
        source: &S,
        domain: &DomainName,
        now: SimInstant,
    ) -> (ResolvedPolicy, Disposition) {
        let started = std::time::Instant::now();
        let out = self.resolve_inner(source, domain, now);
        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        if let Ok(mut h) = self.metrics.latency_us.lock() {
            h.record(us);
        }
        out
    }

    fn resolve_inner<S: PolicySource>(
        &self,
        source: &S,
        domain: &DomainName,
        now: SimInstant,
    ) -> (ResolvedPolicy, Disposition) {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let txts = source.record_txts(domain, now);
        let record = evaluate_lookup(txts.as_deref());
        let record_id = record_id_of(&record);

        // Warm path: one shard read lock, no writes anywhere.
        match self.cache.assess(domain, record_id.as_deref(), now) {
            CacheDecision::UseCached(entry) => {
                self.metrics.count(Disposition::Hit);
                obsv::counter!("resolver.hit");
                return (
                    ResolvedPolicy::Active {
                        policy: entry.policy,
                        from_cache: true,
                        stale: false,
                    },
                    Disposition::Hit,
                );
            }
            CacheDecision::UseCachedDespiteDns(entry) => {
                self.metrics.count(Disposition::HitDespiteDns);
                obsv::counter!("resolver.hit");
                return (
                    ResolvedPolicy::Active {
                        policy: entry.policy,
                        from_cache: true,
                        stale: false,
                    },
                    Disposition::HitDespiteDns,
                );
            }
            CacheDecision::Fetch(_) => {}
        }

        // Cold path: join or lead the flight for this domain.
        let shard = self.cache.shard_index(domain);
        let (flight, leader) = {
            let mut map = self.inflight[shard].lock().expect("inflight lock poisoned");
            match map.get(domain) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight::default());
                    map.insert(domain.clone(), Arc::clone(&f));
                    (f, true)
                }
            }
        };

        if !leader {
            // Park until the leader publishes, then reuse its result.
            let mut slot = flight.result.lock().expect("flight lock poisoned");
            while slot.is_none() {
                slot = flight.ready.wait(slot).expect("flight lock poisoned");
            }
            let (resolved, _) = slot.clone().expect("slot filled");
            self.metrics.count(Disposition::Coalesced);
            obsv::counter!("resolver.coalesced_wait");
            return (resolved, Disposition::Coalesced);
        }

        // Leader: re-run the full resolution (the cache may have been
        // filled between the assessment above and taking leadership —
        // `resolve_with_record` re-assesses first, so a just-landed
        // policy turns this flight into a hit without a second fetch).
        let mut admit = |at: SimInstant| match &self.bucket {
            Some(bucket) => bucket.lock().expect("bucket lock poisoned").try_acquire(at),
            None => true,
        };
        let outcome = resolve_with_record(&self.cache, source, domain, record, now, &mut admit);
        {
            let mut slot = flight.result.lock().expect("flight lock poisoned");
            *slot = Some(outcome.clone());
            flight.ready.notify_all();
        }
        self.inflight[shard]
            .lock()
            .expect("inflight lock poisoned")
            .remove(domain);
        self.metrics.count(outcome.1);
        if matches!(outcome.1, Disposition::Fetched) {
            obsv::counter!("resolver.fetch");
        }
        outcome
    }

    /// Deterministic batch resolution: resolves `domains` (a wave of
    /// requests submitted at `submitted`) and returns one ledger row
    /// per request, in submission order.
    ///
    /// Within the batch, duplicate cold domains coalesce onto the first
    /// occurrence's fetch — the batch-mode face of single-flight.
    /// Fetch admission instants are planned once on the logical bucket
    /// via [`TokenBucket::plan_admissions`] (or the shedding variant
    /// when a delay bound is configured), so the ledger — and
    /// [`resolution_digest`] — is byte-identical at every thread count.
    pub fn resolve_batch<S: PolicySource>(
        &self,
        source: &S,
        domains: &[DomainName],
        submitted: SimInstant,
    ) -> Vec<Resolution> {
        let batch_started = std::time::Instant::now();
        let threads = self.cfg.effective_threads();
        self.metrics
            .requests
            .fetch_add(domains.len() as u64, Ordering::Relaxed);

        // Phase A (parallel, pure reads): record lookup + cache
        // assessment per request. No writes happen anywhere in this
        // phase, so every thread count observes the same pre-wave cache.
        enum Class {
            Served(ResolvedPolicy, Disposition),
            NeedsFetch(RecordLookup),
        }
        let classified: Vec<Class> = map_sharded(threads, domains, |_, domain| {
            let txts = source.record_txts(domain, submitted);
            let record = evaluate_lookup(txts.as_deref());
            let record_id = record_id_of(&record);
            match self.cache.assess(domain, record_id.as_deref(), submitted) {
                CacheDecision::UseCached(entry) => Class::Served(
                    ResolvedPolicy::Active {
                        policy: entry.policy,
                        from_cache: true,
                        stale: false,
                    },
                    Disposition::Hit,
                ),
                CacheDecision::UseCachedDespiteDns(entry) => Class::Served(
                    ResolvedPolicy::Active {
                        policy: entry.policy,
                        from_cache: true,
                        stale: false,
                    },
                    Disposition::HitDespiteDns,
                ),
                CacheDecision::Fetch(_) => Class::NeedsFetch(record),
            }
        });

        // Phase B (sequential): first occurrence of each cold domain
        // leads; later occurrences coalesce. Leaders that actually need
        // the HTTPS leg (valid record) get planned admission instants.
        let mut leader_of: HashMap<&DomainName, usize> = HashMap::new();
        let mut leaders: Vec<usize> = Vec::new();
        for (i, class) in classified.iter().enumerate() {
            if matches!(class, Class::NeedsFetch(_)) {
                leader_of.entry(&domains[i]).or_insert_with(|| {
                    leaders.push(i);
                    i
                });
            }
        }
        let fetch_leaders: Vec<usize> = leaders
            .iter()
            .copied()
            .filter(|&i| matches!(&classified[i], Class::NeedsFetch(Some(Ok(_)))))
            .collect();
        // Admission plan: one instant per fetch leader, from the single
        // logical bucket (deterministic per-shard clocks, PR-3 style).
        // `None` = shed.
        let admissions: Vec<Option<SimInstant>> = match (&self.bucket, &self.cfg.admission) {
            (Some(bucket), Some(adm)) => {
                let mut bucket = bucket.lock().expect("bucket lock poisoned");
                fetch_leaders
                    .iter()
                    .map(|_| {
                        let wait = bucket.time_until_available(submitted);
                        if wait > adm.max_delay {
                            None
                        } else {
                            Some(bucket.acquire_at(submitted))
                        }
                    })
                    .collect()
            }
            _ => fetch_leaders.iter().map(|_| Some(submitted)).collect(),
        };

        // Phase C (parallel, pure in `(domain, instant)`): the fetches.
        let fetch_inputs: Vec<(usize, SimInstant)> = fetch_leaders
            .iter()
            .zip(&admissions)
            .filter_map(|(&i, at)| at.map(|at| (i, at)))
            .collect();
        let fetched: Vec<Result<String, String>> =
            map_sharded(threads, &fetch_inputs, |_, &(i, at)| {
                source.fetch_policy(&domains[i], at)
            });
        let mut fetch_result: HashMap<usize, (Result<String, String>, SimInstant)> = fetch_inputs
            .iter()
            .zip(fetched)
            .map(|(&(i, at), body)| (i, (body, at)))
            .collect();
        let shed: std::collections::HashSet<usize> = fetch_leaders
            .iter()
            .zip(&admissions)
            .filter_map(|(&i, at)| at.is_none().then_some(i))
            .collect();

        // Phase D (sequential, submission order): interpret leaders,
        // fold stores into the cache, then emit rows — coalesced
        // followers reuse their leader's resolution.
        let mut leader_outcome: HashMap<usize, (ResolvedPolicy, Disposition, SimInstant)> =
            HashMap::new();
        for &i in &leaders {
            let Class::NeedsFetch(record) = &classified[i] else {
                unreachable!("leaders are NeedsFetch by construction");
            };
            let domain = &domains[i];
            let outcome = if shed.contains(&i) {
                (
                    (
                        ResolvedPolicy::Unavailable {
                            reason: "fetch shed by admission control".to_string(),
                        },
                        Disposition::Shed,
                    ),
                    submitted,
                )
            } else {
                match record {
                    None => (
                        match self.cache.entry_clone(domain) {
                            Some(entry) => (
                                ResolvedPolicy::Active {
                                    policy: entry.policy,
                                    from_cache: true,
                                    stale: true,
                                },
                                Disposition::StaleFallback,
                            ),
                            None => (ResolvedPolicy::NotApplicable, Disposition::Undeployed),
                        },
                        submitted,
                    ),
                    Some(Err(RecordError::NoRecord)) => (
                        (ResolvedPolicy::NotApplicable, Disposition::Undeployed),
                        submitted,
                    ),
                    Some(Err(e)) => (
                        (
                            ResolvedPolicy::RecordInvalid(e.clone()),
                            Disposition::RecordInvalid,
                        ),
                        submitted,
                    ),
                    Some(Ok(rec)) => {
                        let (body, at) = fetch_result.remove(&i).expect("fetch ran for leader");
                        let outcome = match body {
                            Ok(body) => match parse_policy(&body) {
                                Ok(policy) => {
                                    self.cache
                                        .store(domain.clone(), policy.clone(), &rec.id, at);
                                    (
                                        ResolvedPolicy::Active {
                                            policy,
                                            from_cache: false,
                                            stale: false,
                                        },
                                        Disposition::Fetched,
                                    )
                                }
                                Err(e) => stale_or_shared(
                                    &self.cache,
                                    domain,
                                    at,
                                    format!("policy parse failure: {e:?}"),
                                ),
                            },
                            Err(e) => stale_or_shared(
                                &self.cache,
                                domain,
                                at,
                                format!("policy fetch failure: {e}"),
                            ),
                        };
                        (outcome, at)
                    }
                }
            };
            let ((resolved, disposition), at) = outcome;
            leader_outcome.insert(i, (resolved, disposition, at));
        }

        let mut rows = Vec::with_capacity(domains.len());
        for (i, class) in classified.iter().enumerate() {
            let domain = &domains[i];
            let row = match class {
                Class::Served(resolved, disposition) => {
                    self.metrics.count(*disposition);
                    row_for(i as u64, domain, resolved, *disposition, submitted)
                }
                Class::NeedsFetch(_) => {
                    let leader = leader_of[domain];
                    let (resolved, disposition, at) =
                        leader_outcome.get(&leader).expect("leader resolved");
                    if leader == i {
                        self.metrics.count(*disposition);
                        row_for(i as u64, domain, resolved, *disposition, *at)
                    } else {
                        self.metrics.count(Disposition::Coalesced);
                        row_for(i as u64, domain, resolved, Disposition::Coalesced, *at)
                    }
                }
            };
            rows.push(row);
        }
        // Latency accounting: one sample per row at the batch's mean
        // per-row wall cost (individual rows aren't separately timed —
        // they run fused inside shard workers). Service observable only;
        // the ledger above is already sealed.
        if !rows.is_empty() {
            let us = u64::try_from(batch_started.elapsed().as_micros()).unwrap_or(u64::MAX);
            let mean = us / rows.len() as u64;
            if let Ok(mut h) = self.metrics.latency_us.lock() {
                for _ in 0..rows.len() {
                    h.record(mean);
                }
            }
        }
        rows
    }
}

// ---------------------------------------------------------------------
// Daemon loop + /metrics
// ---------------------------------------------------------------------

/// Daemon tuning.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Simulated seconds between ticks.
    pub tick: Duration,
    /// Run an expiry sweep every this many ticks (0 = never).
    pub sweep_every: u64,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            tick: Duration::minutes(1),
            sweep_every: 60,
        }
    }
}

/// Rolling daemon health, updated once per tick and served at
/// `/healthz`. Rides the flight recorder's [`obsv::timeseries::WindowSeries`]:
/// each tick folds its counter deltas into a tick-keyed window and sets
/// the cache-occupancy gauge, so "shed rate over the last window" is the
/// most recent window's delta, not a lifetime total.
#[derive(Debug, Default)]
pub struct DaemonHealth {
    /// Tick-keyed windows of per-tick counter deltas + gauges.
    pub windows: obsv::timeseries::WindowSeries,
    /// Ticks completed.
    pub ticks: u64,
    /// Ticks since the last expiry sweep ran.
    pub last_sweep_age_ticks: u64,
    /// Counter snapshot at the previous tick (delta base).
    last_shed: u64,
    last_requests: u64,
}

impl DaemonHealth {
    fn observe(&mut self, snap: &MetricsSnapshot, swept: bool) {
        let key = self.ticks as i64;
        let mut delta = obsv::timeseries::Window::default();
        let shed = snap.shed.saturating_sub(self.last_shed);
        let requests = snap.requests.saturating_sub(self.last_requests);
        if shed > 0 {
            delta.counters.insert("resolver.shed_requests", shed);
        }
        if requests > 0 {
            delta.counters.insert("resolver.requests", requests);
        }
        delta
            .gauges
            .insert("resolver.cache_entries", snap.cache_entries);
        self.windows.fold(key, &delta);
        self.last_shed = snap.shed;
        self.last_requests = snap.requests;
        self.ticks += 1;
        self.last_sweep_age_ticks = if swept {
            0
        } else {
            self.last_sweep_age_ticks + 1
        };
    }

    /// The `/healthz` body: current cache occupancy, last-window shed
    /// rate, and sweep recency, as one JSON object.
    pub fn to_json(&self) -> String {
        let last = self
            .windows
            .iter()
            .last()
            .map(|(_, w)| w.clone())
            .unwrap_or_default();
        let shed = last.counter("resolver.shed_requests");
        let requests = last.counter("resolver.requests");
        let cache_entries = last.gauge("resolver.cache_entries").unwrap_or(0);
        // Degraded when the last window shed more than half its load.
        let status = if requests > 0 && shed * 2 > requests {
            "degraded"
        } else {
            "ok"
        };
        format!(
            "{{\"status\":\"{status}\",\"ticks\":{},\"cache_entries\":{cache_entries},\
             \"shed_last_window\":{shed},\"requests_last_window\":{requests},\
             \"last_sweep_age_ticks\":{}}}\n",
            self.ticks, self.last_sweep_age_ticks
        )
    }
}

/// The long-running resolution service: a shared [`PolicyResolver`]
/// plus a deterministic tick loop (resolve the queued batch, advance
/// the clock, periodically sweep expired entries) and a `/metrics` +
/// `/healthz` endpoint pair served over TCP.
pub struct ResolverDaemon {
    cfg: DaemonConfig,
    resolver: Arc<PolicyResolver>,
    now: SimInstant,
    ticks: u64,
    health: Arc<Mutex<DaemonHealth>>,
}

impl ResolverDaemon {
    /// A daemon over an existing resolver, starting its clock at `now`.
    pub fn new(
        cfg: DaemonConfig,
        resolver: Arc<PolicyResolver>,
        now: SimInstant,
    ) -> ResolverDaemon {
        ResolverDaemon {
            cfg,
            resolver,
            now,
            ticks: 0,
            health: Arc::new(Mutex::new(DaemonHealth::default())),
        }
    }

    /// The shared resolver (hand clones to delivery workers).
    pub fn resolver(&self) -> Arc<PolicyResolver> {
        Arc::clone(&self.resolver)
    }

    /// The shared health state (hand clones to the serving thread).
    pub fn health(&self) -> Arc<Mutex<DaemonHealth>> {
        Arc::clone(&self.health)
    }

    /// The daemon's current simulated instant.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// One daemon tick: resolve the batch of requests that arrived
    /// since the last tick, advance the clock, and sweep expired
    /// entries on the configured cadence. Returns the tick's ledger.
    pub fn tick<S: PolicySource>(
        &mut self,
        source: &S,
        requests: &[DomainName],
    ) -> Vec<Resolution> {
        let rows = self.resolver.resolve_batch(source, requests, self.now);
        self.ticks += 1;
        let swept = self.cfg.sweep_every != 0 && self.ticks.is_multiple_of(self.cfg.sweep_every);
        if swept {
            self.resolver.sweep(self.now);
        }
        if let Ok(mut health) = self.health.lock() {
            health.observe(&self.resolver.metrics(), swept);
        }
        self.now += self.cfg.tick;
        rows
    }

    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves `/metrics` — the
    /// resolver's counters in Prometheus text exposition — answering up
    /// to `max_requests` connections before returning (`None` = serve
    /// forever). Returns the bound local address via the callback so
    /// callers using port 0 learn the real port before serving starts.
    pub fn serve_metrics(
        resolver: Arc<PolicyResolver>,
        addr: &str,
        max_requests: Option<usize>,
        on_bound: impl FnOnce(std::net::SocketAddr),
    ) -> std::io::Result<()> {
        ResolverDaemon::serve(resolver, Arc::default(), addr, max_requests, on_bound)
    }

    /// Binds `addr` and serves both endpoints: `/metrics` (Prometheus
    /// exposition, latency quantiles included) and `/healthz` (cache
    /// occupancy, last-window shed rate, sweep recency — the state
    /// [`ResolverDaemon::tick`] maintains in the shared
    /// [`DaemonHealth`]). Answers up to `max_requests` connections
    /// before returning (`None` = serve forever); reports the bound
    /// address via `on_bound` so port-0 callers learn the real port.
    pub fn serve(
        resolver: Arc<PolicyResolver>,
        health: Arc<Mutex<DaemonHealth>>,
        addr: &str,
        max_requests: Option<usize>,
        on_bound: impl FnOnce(std::net::SocketAddr),
    ) -> std::io::Result<()> {
        use std::io::{Read as _, Write as _};
        let listener = std::net::TcpListener::bind(addr)?;
        on_bound(listener.local_addr()?);
        let mut served = 0usize;
        for stream in listener.incoming() {
            let mut stream = stream?;
            let mut buf = [0u8; 1024];
            let n = stream.read(&mut buf).unwrap_or(0);
            let request = String::from_utf8_lossy(&buf[..n]);
            let path = request
                .lines()
                .next()
                .and_then(|l| l.split_whitespace().nth(1))
                .unwrap_or("/");
            let (status, content_type, body) = match path {
                "/metrics" => (
                    "200 OK",
                    "text/plain; version=0.0.4",
                    resolver.metrics_text(),
                ),
                "/healthz" => {
                    let body = health
                        .lock()
                        .map(|h| h.to_json())
                        .unwrap_or_else(|_| String::from("{\"status\":\"poisoned\"}\n"));
                    ("200 OK", "application/json", body)
                }
                _ => (
                    "404 Not Found",
                    "text/plain; version=0.0.4",
                    String::from("see /metrics or /healthz\n"),
                ),
            };
            let response = format!(
                "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            let _ = stream.write_all(response.as_bytes());
            served += 1;
            if matches!(max_requests, Some(max) if served >= max) {
                break;
            }
        }
        Ok(())
    }
}
