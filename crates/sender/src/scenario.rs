//! Degraded-MX scenario builder: the shared worlds the delivery
//! pipeline's chaos matrix runs over.
//!
//! One builder feeds the unit/determinism tests, the live-wire parity
//! test, `exp_delivery`, and the `outbound_pipeline` example, so every
//! consumer exercises *the same* degradations: a hard-down MX, a
//! flapping MX, a whole-preference-tier outage, and probabilistic
//! greylisting. Every populated domain gets the same topology — two
//! preference-10 exchanges and one preference-20 backup — because the
//! matrix is about *failure shape*, not topology variety.
//!
//! Fault-schedule degradations ([`Degradation::FlappingMx`],
//! [`Degradation::Greylist`]) act on the fast path only (the wire
//! deployment serves static behaviour); reachability degradations
//! ([`Degradation::OneMxDown`], [`Degradation::TierOutage`]) translate
//! to both paths, which is what makes the wire-parity test honest.

use crate::pipeline::QueuedMessage;
use dns::RecordData;
use netbase::{DomainName, SimInstant};
use simnet::{FaultKind, FaultSchedule, MxEndpoint, Reachability, World};

/// Which failure shape the scenario injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Degradation {
    /// Healthy baseline: every MX up.
    None,
    /// The first preference-10 exchange of every domain is hard-down
    /// (connection refused) for the whole run.
    OneMxDown,
    /// The first preference-10 exchange of every domain flaps: `cycles`
    /// alternations of `down_secs` dead / `up_secs` alive, starting at
    /// the scenario epoch.
    FlappingMx {
        /// Seconds down per cycle.
        down_secs: i64,
        /// Seconds up per cycle.
        up_secs: i64,
        /// Number of down-phases.
        cycles: u32,
    },
    /// The entire preference-10 tier is hard-down; only the backup
    /// exchange carries mail.
    TierOutage,
    /// Every exchange greylists with this per-draw probability.
    Greylist {
        /// 0.0–1.0 chance a session is deferred with a 450.
        rate: f64,
    },
}

impl Degradation {
    /// Short machine name, used as the bench scenario key.
    pub fn key(&self) -> &'static str {
        match self {
            Degradation::None => "baseline",
            Degradation::OneMxDown => "one_mx_down",
            Degradation::FlappingMx { .. } => "flapping_mx",
            Degradation::TierOutage => "tier_outage",
            Degradation::Greylist { .. } => "greylist",
        }
    }

    /// Whether the degradation is expressed purely through endpoint
    /// reachability (and therefore reproduces on the wire deployment,
    /// which does not serve fault schedules).
    pub fn wire_faithful(&self) -> bool {
        matches!(
            self,
            Degradation::None | Degradation::OneMxDown | Degradation::TierOutage
        )
    }
}

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// Seed for the world's fault schedules.
    pub seed: u64,
    /// Populated recipient domains (`d0.test` … `d{n-1}.test`).
    pub domains: usize,
    /// Messages queued per domain.
    pub messages_per_domain: usize,
    /// The injected failure shape.
    pub degradation: Degradation,
    /// When the scenario's clock starts (flapping windows anchor here).
    pub epoch: SimInstant,
}

impl ScenarioSpec {
    /// A small scenario with the given degradation (tests, example).
    pub fn small(seed: u64, degradation: Degradation) -> ScenarioSpec {
        ScenarioSpec {
            seed,
            domains: 4,
            messages_per_domain: 8,
            degradation,
            epoch: SimInstant::from_unix_secs(1_717_200_000),
        }
    }
}

/// One recipient domain's deployed topology.
#[derive(Debug, Clone)]
pub struct DomainTopology {
    /// The recipient domain.
    pub domain: DomainName,
    /// Its exchanges as `(preference, host)`, primaries first.
    pub exchanges: Vec<(u16, DomainName)>,
}

/// A built world plus the message load to drain through it.
pub struct Scenario {
    /// The simulated internet with the degradation installed.
    pub world: World,
    /// The queue load, round-robin across domains in submission order.
    pub messages: Vec<QueuedMessage>,
    /// Per-domain topology (asserts and ledger checks).
    pub topologies: Vec<DomainTopology>,
    /// The spec this was built from.
    pub spec: ScenarioSpec,
}

/// MX layout every scenario domain gets: two primaries, one backup.
const MX_LAYOUT: [(&str, u16); 3] = [("mxa", 10), ("mxb", 10), ("mxc", 20)];

/// Builds the world and message load for `spec`.
pub fn build(spec: ScenarioSpec) -> Scenario {
    let world = World::new();
    let mut topologies = Vec::with_capacity(spec.domains);
    for i in 0..spec.domains {
        let domain: DomainName = format!("d{i}.test")
            .parse()
            .expect("scenario domain parses");
        world.ensure_zone(&domain);
        let mut exchanges = Vec::new();
        for (slot, (label, preference)) in MX_LAYOUT.iter().enumerate() {
            let host: DomainName = format!("{label}.d{i}.test")
                .parse()
                .expect("scenario host parses");
            let mut endpoint = MxEndpoint::plaintext(host.clone());
            apply_degradation(&mut endpoint, &spec, slot);
            let ip = world.add_mx_endpoint(endpoint);
            world.with_zone(&domain, |z| {
                z.add_rr(&host, 300, RecordData::A(ip));
                z.add_rr(
                    &domain,
                    300,
                    RecordData::Mx {
                        preference: *preference,
                        exchange: host.clone(),
                    },
                );
            });
            exchanges.push((*preference, host));
        }
        topologies.push(DomainTopology { domain, exchanges });
    }

    // Round-robin submission order spreads each domain's messages across
    // the admission timeline, so time-varying degradations (flapping,
    // greylist windows) bite different messages of the same domain.
    let mut messages = Vec::with_capacity(spec.domains * spec.messages_per_domain);
    let mut seq = 0usize;
    for j in 0..spec.messages_per_domain {
        for i in 0..spec.domains {
            messages.push(QueuedMessage::new(
                &format!("m{seq}"),
                "queue@sender.test",
                &format!("user{j}@d{i}.test"),
                &format!("scenario message {seq}"),
            ));
            seq += 1;
        }
    }

    Scenario {
        world,
        messages,
        topologies,
        spec,
    }
}

fn apply_degradation(endpoint: &mut MxEndpoint, spec: &ScenarioSpec, slot: usize) {
    match spec.degradation {
        Degradation::None => {}
        Degradation::OneMxDown => {
            if slot == 0 {
                endpoint.reachability = Reachability::Refused;
            }
        }
        Degradation::FlappingMx {
            down_secs,
            up_secs,
            cycles,
        } => {
            if slot == 0 {
                endpoint.faults = FaultSchedule::new(spec.seed).with_flapping(
                    FaultKind::TcpReset,
                    spec.epoch,
                    netbase::Duration::seconds(down_secs),
                    netbase::Duration::seconds(up_secs),
                    cycles,
                );
            }
        }
        Degradation::TierOutage => {
            if slot <= 1 {
                endpoint.reachability = Reachability::Refused;
            }
        }
        Degradation::Greylist { rate } => {
            endpoint.faults =
                FaultSchedule::new(spec.seed).with_rate(FaultKind::SmtpGreylist, rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_topology_and_load() {
        let s = build(ScenarioSpec::small(7, Degradation::None));
        assert_eq!(s.topologies.len(), 4);
        assert_eq!(s.messages.len(), 32);
        // MX records resolve with both tiers present.
        let recs = s
            .world
            .mx_records_with_pref(&s.topologies[0].domain, s.spec.epoch)
            .unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs.iter().filter(|(p, _)| *p == 10).count(), 2);
        assert_eq!(recs.iter().filter(|(p, _)| *p == 20).count(), 1);
    }

    #[test]
    fn one_mx_down_kills_exactly_the_first_primary() {
        let s = build(ScenarioSpec::small(7, Degradation::OneMxDown));
        let down: Vec<bool> = s.topologies[0]
            .exchanges
            .iter()
            .map(|(_, host)| {
                let ip = s
                    .world
                    .resolve(host, dns::RecordType::A, s.spec.epoch)
                    .unwrap()
                    .a_addrs()[0];
                s.world.mx_endpoint(ip).unwrap().reachability != Reachability::Up
            })
            .collect();
        assert_eq!(down, vec![true, false, false]);
    }
}
