//! Degraded-MX scenario builder: the shared worlds the delivery
//! pipeline's chaos matrix runs over.
//!
//! One builder feeds the unit/determinism tests, the live-wire parity
//! test, `exp_delivery`, and the `outbound_pipeline` example, so every
//! consumer exercises *the same* degradations: a hard-down MX, a
//! flapping MX, a whole-preference-tier outage, and probabilistic
//! greylisting. Every populated domain gets the same topology — two
//! preference-10 exchanges and one preference-20 backup — because the
//! matrix is about *failure shape*, not topology variety.
//!
//! Fault-schedule degradations ([`Degradation::FlappingMx`],
//! [`Degradation::Greylist`]) act on the fast path only (the wire
//! deployment serves static behaviour); reachability degradations
//! ([`Degradation::OneMxDown`], [`Degradation::TierOutage`]) translate
//! to both paths, which is what makes the wire-parity test honest.

use crate::pipeline::QueuedMessage;
use dns::RecordData;
use mtasts::Mode;
use netbase::{DomainName, SimInstant};
use simnet::{
    AttackKind, AttackSchedule, FaultKind, FaultSchedule, MxEndpoint, Reachability, WebEndpoint,
    World,
};

/// Which failure shape the scenario injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Degradation {
    /// Healthy baseline: every MX up.
    None,
    /// The first preference-10 exchange of every domain is hard-down
    /// (connection refused) for the whole run.
    OneMxDown,
    /// The first preference-10 exchange of every domain flaps: `cycles`
    /// alternations of `down_secs` dead / `up_secs` alive, starting at
    /// the scenario epoch.
    FlappingMx {
        /// Seconds down per cycle.
        down_secs: i64,
        /// Seconds up per cycle.
        up_secs: i64,
        /// Number of down-phases.
        cycles: u32,
    },
    /// The entire preference-10 tier is hard-down; only the backup
    /// exchange carries mail.
    TierOutage,
    /// Every exchange greylists with this per-draw probability.
    Greylist {
        /// 0.0–1.0 chance a session is deferred with a 450.
        rate: f64,
    },
    /// An on-path attacker strips STARTTLS from every MX session during
    /// `[epoch + delay, epoch + delay + duration)` — the downgrade
    /// MTA-STS exists to stop (§2.4).
    StartTlsStrip {
        /// Seconds after the epoch the window opens.
        delay_secs: i64,
        /// Window length in seconds.
        duration_secs: i64,
    },
    /// Forged MX answers redirect every domain's mail to the attacker's
    /// preference-0 relay (`mx.attacker.example`, plaintext) during the
    /// window — the `MxNotListed` case RFC 8461 §4.1 catches.
    MxRedirect {
        /// Seconds after the epoch the window opens.
        delay_secs: i64,
        /// Window length in seconds.
        duration_secs: i64,
    },
    /// Every policy host is TCP-dark during the window: HTTPS fetches
    /// fail, and only the TOFU cache (with §3.3 stale fallback) can
    /// keep enforcement alive.
    PolicyHostOutage {
        /// Seconds after the epoch the window opens.
        delay_secs: i64,
        /// Window length in seconds.
        duration_secs: i64,
    },
}

impl Degradation {
    /// Short machine name, used as the bench scenario key.
    pub fn key(&self) -> &'static str {
        match self {
            Degradation::None => "baseline",
            Degradation::OneMxDown => "one_mx_down",
            Degradation::FlappingMx { .. } => "flapping_mx",
            Degradation::TierOutage => "tier_outage",
            Degradation::Greylist { .. } => "greylist",
            Degradation::StartTlsStrip { .. } => "starttls_strip",
            Degradation::MxRedirect { .. } => "mx_redirect",
            Degradation::PolicyHostOutage { .. } => "policy_outage",
        }
    }

    /// Whether the degradation is expressed purely through endpoint
    /// reachability (and therefore reproduces on the wire deployment,
    /// which does not serve fault schedules or attack windows).
    pub fn wire_faithful(&self) -> bool {
        matches!(
            self,
            Degradation::None | Degradation::OneMxDown | Degradation::TierOutage
        )
    }
}

/// Whether (and how) the scenario domains deploy MTA-STS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StsDeployment {
    /// No MTA-STS anywhere; plaintext MXes (the pre-enforcement worlds,
    /// and the only shape the wire deployment serves).
    None,
    /// Every domain publishes a policy in `mode`: STARTTLS-capable MXes
    /// with valid chains, a `_mta-sts` TXT record, and a policy host
    /// serving a document listing all three exchanges explicitly.
    Published {
        /// The policy mode every domain publishes.
        mode: Mode,
        /// The policy `max_age` in seconds.
        max_age: u64,
    },
}

impl StsDeployment {
    /// Short machine name, used as the bench scenario key suffix.
    pub fn key(&self) -> &'static str {
        match self {
            StsDeployment::None => "nosts",
            StsDeployment::Published { mode, .. } => match mode {
                Mode::Enforce => "enforce",
                Mode::Testing => "testing",
                Mode::None => "mode_none",
            },
        }
    }
}

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// Seed for the world's fault schedules.
    pub seed: u64,
    /// Populated recipient domains (`d0.test` … `d{n-1}.test`).
    pub domains: usize,
    /// Messages queued per domain.
    pub messages_per_domain: usize,
    /// The injected failure shape.
    pub degradation: Degradation,
    /// MTA-STS deployment shape across the recipient domains.
    pub sts: StsDeployment,
    /// When the scenario's clock starts (flapping windows anchor here).
    pub epoch: SimInstant,
}

impl ScenarioSpec {
    /// A small scenario with the given degradation (tests, example).
    pub fn small(seed: u64, degradation: Degradation) -> ScenarioSpec {
        ScenarioSpec {
            seed,
            domains: 4,
            messages_per_domain: 8,
            degradation,
            sts: StsDeployment::None,
            epoch: SimInstant::from_unix_secs(1_717_200_000),
        }
    }

    /// The same scenario with every domain publishing a policy in
    /// `mode` (week-long `max_age`, well within every queue run).
    pub fn with_sts(self, mode: Mode) -> ScenarioSpec {
        ScenarioSpec {
            sts: StsDeployment::Published {
                mode,
                max_age: 604_800,
            },
            ..self
        }
    }
}

/// One recipient domain's deployed topology.
#[derive(Debug, Clone)]
pub struct DomainTopology {
    /// The recipient domain.
    pub domain: DomainName,
    /// Its exchanges as `(preference, host)`, primaries first.
    pub exchanges: Vec<(u16, DomainName)>,
}

/// A built world plus the message load to drain through it.
pub struct Scenario {
    /// The simulated internet with the degradation installed.
    pub world: World,
    /// The queue load, round-robin across domains in submission order.
    pub messages: Vec<QueuedMessage>,
    /// Per-domain topology (asserts and ledger checks).
    pub topologies: Vec<DomainTopology>,
    /// The spec this was built from.
    pub spec: ScenarioSpec,
}

/// MX layout every scenario domain gets: two primaries, one backup.
const MX_LAYOUT: [(&str, u16); 3] = [("mxa", 10), ("mxb", 10), ("mxc", 20)];

/// Builds the world and message load for `spec`.
pub fn build(spec: ScenarioSpec) -> Scenario {
    let world = World::new();
    let mut topologies = Vec::with_capacity(spec.domains);
    for i in 0..spec.domains {
        let domain: DomainName = format!("d{i}.test")
            .parse()
            .expect("scenario domain parses");
        world.ensure_zone(&domain);
        let mut exchanges = Vec::new();
        for (slot, (label, preference)) in MX_LAYOUT.iter().enumerate() {
            let host: DomainName = format!("{label}.d{i}.test")
                .parse()
                .expect("scenario host parses");
            let mut endpoint = match spec.sts {
                // Enforcement worlds get STARTTLS-capable exchanges with
                // valid chains — the policy must be satisfiable.
                StsDeployment::Published { .. } => MxEndpoint::healthy(
                    host.clone(),
                    world
                        .pki
                        .issue_valid(std::slice::from_ref(&host), spec.epoch),
                ),
                StsDeployment::None => MxEndpoint::plaintext(host.clone()),
            };
            apply_degradation(&mut endpoint, &spec, slot);
            let ip = world.add_mx_endpoint(endpoint);
            world.with_zone(&domain, |z| {
                z.add_rr(&host, 300, RecordData::A(ip));
                z.add_rr(
                    &domain,
                    300,
                    RecordData::Mx {
                        preference: *preference,
                        exchange: host.clone(),
                    },
                );
            });
            exchanges.push((*preference, host));
        }
        if let StsDeployment::Published { mode, max_age } = spec.sts {
            deploy_sts(&world, &spec, i, mode, max_age);
        }
        topologies.push(DomainTopology { domain, exchanges });
    }

    install_attacker(&world, &spec);

    // Round-robin submission order spreads each domain's messages across
    // the admission timeline, so time-varying degradations (flapping,
    // greylist windows) bite different messages of the same domain.
    let mut messages = Vec::with_capacity(spec.domains * spec.messages_per_domain);
    let mut seq = 0usize;
    for j in 0..spec.messages_per_domain {
        for i in 0..spec.domains {
            messages.push(QueuedMessage::new(
                &format!("m{seq}"),
                "queue@sender.test",
                &format!("user{j}@d{i}.test"),
                &format!("scenario message {seq}"),
            ));
            seq += 1;
        }
    }

    Scenario {
        world,
        messages,
        topologies,
        spec,
    }
}

/// Publishes domain `i`'s MTA-STS deployment: the `_mta-sts` TXT record
/// and a per-domain policy host serving a document that lists all three
/// exchanges explicitly (no wildcard — the ladder filter must match
/// hosts, not luck). Under [`Degradation::PolicyHostOutage`] the policy
/// host goes TCP-dark for the window, so only the TOFU cache keeps
/// enforcement alive.
fn deploy_sts(world: &World, spec: &ScenarioSpec, i: usize, mode: Mode, max_age: u64) {
    let domain: DomainName = format!("d{i}.test").parse().expect("domain parses");
    let policy_host: DomainName = format!("mta-sts.d{i}.test")
        .parse()
        .expect("policy host parses");
    let mut web = WebEndpoint::up();
    web.install_chain(
        policy_host.clone(),
        world
            .pki
            .issue_valid(std::slice::from_ref(&policy_host), spec.epoch),
    );
    let mut body = format!("version: STSv1\r\nmode: {mode}\r\n");
    for (label, _) in MX_LAYOUT {
        body.push_str(&format!("mx: {label}.d{i}.test\r\n"));
    }
    body.push_str(&format!("max_age: {max_age}\r\n"));
    web.install_policy(policy_host.clone(), &body);
    if let Degradation::PolicyHostOutage {
        delay_secs,
        duration_secs,
    } = spec.degradation
    {
        let start = spec.epoch + netbase::Duration::seconds(delay_secs);
        web.faults = FaultSchedule::new(spec.seed).with_window(
            FaultKind::TcpReset,
            start,
            start + netbase::Duration::seconds(duration_secs),
        );
    }
    let web_ip = world.add_web_endpoint(web);
    world.with_zone(&domain, |z| {
        z.add_rr(&policy_host, 300, RecordData::A(web_ip));
        let txt: DomainName = format!("_mta-sts.d{i}.test")
            .parse()
            .expect("txt name parses");
        z.add_rr(
            &txt,
            300,
            RecordData::Txt(vec!["v=STSv1; id=scenario1;".to_string()]),
        );
    });
}

/// Installs the on-path attacker for the window-based degradations and,
/// for [`Degradation::MxRedirect`], deploys the attacker's own relay
/// zone so the forged preference-0 answer actually resolves.
fn install_attacker(world: &World, spec: &ScenarioSpec) {
    let (kind, delay_secs, duration_secs) = match spec.degradation {
        Degradation::StartTlsStrip {
            delay_secs,
            duration_secs,
        } => (AttackKind::StartTlsStrip, delay_secs, duration_secs),
        Degradation::MxRedirect {
            delay_secs,
            duration_secs,
        } => (AttackKind::MxRedirect, delay_secs, duration_secs),
        _ => return,
    };
    let start = spec.epoch + netbase::Duration::seconds(delay_secs);
    let schedule = AttackSchedule::new().with_window(
        kind,
        None,
        start,
        start + netbase::Duration::seconds(duration_secs),
    );
    if kind == AttackKind::MxRedirect {
        let relay = schedule.attacker_host().clone();
        let zone: DomainName = "attacker.example".parse().expect("attacker zone parses");
        world.ensure_zone(&zone);
        let ip = world.add_mx_endpoint(MxEndpoint::plaintext(relay.clone()));
        world.with_zone(&zone, |z| z.add_rr(&relay, 300, RecordData::A(ip)));
    }
    world.set_attacker(schedule);
}

fn apply_degradation(endpoint: &mut MxEndpoint, spec: &ScenarioSpec, slot: usize) {
    match spec.degradation {
        Degradation::None => {}
        Degradation::OneMxDown => {
            if slot == 0 {
                endpoint.reachability = Reachability::Refused;
            }
        }
        Degradation::FlappingMx {
            down_secs,
            up_secs,
            cycles,
        } => {
            if slot == 0 {
                endpoint.faults = FaultSchedule::new(spec.seed).with_flapping(
                    FaultKind::TcpReset,
                    spec.epoch,
                    netbase::Duration::seconds(down_secs),
                    netbase::Duration::seconds(up_secs),
                    cycles,
                );
            }
        }
        Degradation::TierOutage => {
            if slot <= 1 {
                endpoint.reachability = Reachability::Refused;
            }
        }
        Degradation::Greylist { rate } => {
            endpoint.faults =
                FaultSchedule::new(spec.seed).with_rate(FaultKind::SmtpGreylist, rate);
        }
        // Attacker-window degradations leave the legitimate exchanges
        // untouched: the strip and redirect live on the path (the
        // attacker schedule), the outage lives on the policy host.
        Degradation::StartTlsStrip { .. }
        | Degradation::MxRedirect { .. }
        | Degradation::PolicyHostOutage { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_topology_and_load() {
        let s = build(ScenarioSpec::small(7, Degradation::None));
        assert_eq!(s.topologies.len(), 4);
        assert_eq!(s.messages.len(), 32);
        // MX records resolve with both tiers present.
        let recs = s
            .world
            .mx_records_with_pref(&s.topologies[0].domain, s.spec.epoch)
            .unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs.iter().filter(|(p, _)| *p == 10).count(), 2);
        assert_eq!(recs.iter().filter(|(p, _)| *p == 20).count(), 1);
    }

    #[test]
    fn sts_deployment_publishes_fetchable_policies() {
        let s = build(ScenarioSpec::small(7, Degradation::None).with_sts(Mode::Enforce));
        let d = &s.topologies[0].domain;
        let txts = s.world.mta_sts_txts(d, s.spec.epoch).unwrap();
        assert_eq!(txts.len(), 1, "one _mta-sts TXT record: {txts:?}");
        let (policy, _raw) = s.world.fetch_policy(d, s.spec.epoch).result.unwrap();
        assert_eq!(policy.mode, Mode::Enforce);
        // Every published exchange is listed in the policy.
        for (_, host) in &s.topologies[0].exchanges {
            assert!(
                mtasts::mx_matches_policy(host, &policy),
                "{host} missing from policy"
            );
        }
    }

    #[test]
    fn mx_redirect_deploys_a_resolvable_attacker_relay() {
        let s = build(
            ScenarioSpec::small(
                7,
                Degradation::MxRedirect {
                    delay_secs: 300,
                    duration_secs: 600,
                },
            )
            .with_sts(Mode::Enforce),
        );
        let inside = s.spec.epoch + netbase::Duration::seconds(400);
        let recs = s
            .world
            .mx_records_with_pref(&s.topologies[0].domain, inside)
            .unwrap();
        assert_eq!(recs.len(), 1, "forged answer replaces the real set");
        assert_eq!(recs[0].0, 0);
        let relay = recs[0].1.clone();
        assert!(
            s.world.resolve(&relay, dns::RecordType::A, inside).is_ok(),
            "attacker relay must resolve"
        );
        // Outside the window the legitimate ladder is back.
        let after = s.spec.epoch + netbase::Duration::seconds(2_000);
        assert_eq!(
            s.world
                .mx_records_with_pref(&s.topologies[0].domain, after)
                .unwrap()
                .len(),
            3
        );
    }

    #[test]
    fn one_mx_down_kills_exactly_the_first_primary() {
        let s = build(ScenarioSpec::small(7, Degradation::OneMxDown));
        let down: Vec<bool> = s.topologies[0]
            .exchanges
            .iter()
            .map(|(_, host)| {
                let ip = s
                    .world
                    .resolve(host, dns::RecordType::A, s.spec.epoch)
                    .unwrap()
                    .a_addrs()[0];
                s.world.mx_endpoint(ip).unwrap().reachability != Reachability::Up
            })
            .collect();
        assert_eq!(down, vec![true, false, false]);
    }
}
