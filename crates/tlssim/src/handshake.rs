//! The toy-TLS handshake.
//!
//! Sequence (mirroring TLS 1.2 with server-only authentication):
//!
//! ```text
//! Client                                   Server
//!   ClientHello {nonce, dh_pub, sni}  ──▶
//!                                     ◀──  ServerHello {nonce, dh_pub, chain}
//!                                          (or Alert: unrecognized_name /
//!                                           handshake_failure)
//!   Finished {}                       ──▶
//!   ... XOR-enciphered application bytes in both directions ...
//! ```
//!
//! The server selects its certificate chain by SNI, which is how the paper's
//! third-party policy hosts serve thousands of customer domains from shared
//! infrastructure (§5), and how "no certificate installed for this name"
//! failures arise (§4.3.3).
//!
//! Certificate checking is the *caller's* decision: [`client_handshake`]
//! always completes the transport handshake and returns the presented
//! chain. Opportunistic senders (the 93.2% in §6.2) proceed regardless;
//! validating senders and the scanner inspect the chain and abort or record
//! errors. Pass [`ClientConfig::strict`] to abort in-handshake instead.

use crate::frame::{read_frame, write_frame, FrameError, FrameType};
use crate::keys::{derive_keys, DhKeyPair};
use crate::stream::TlsStream;
use netbase::{DomainName, SimInstant};
use pkix::{validate_chain, CertError, SimCert, TrustStore};
use std::collections::HashMap;
use std::fmt;
use tokio::io::{AsyncRead, AsyncWrite};

/// TLS-style alert codes used by the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alert {
    /// Handshake refused (e.g. TLS disabled for this endpoint).
    HandshakeFailure,
    /// Client rejected the server certificate.
    BadCertificate,
    /// No certificate available for the requested SNI.
    UnrecognizedName,
    /// Unknown/other alert code.
    Other(u8),
}

impl Alert {
    /// Wire code (mirrors TLS alert descriptions).
    pub fn code(self) -> u8 {
        match self {
            Alert::HandshakeFailure => 40,
            Alert::BadCertificate => 42,
            Alert::UnrecognizedName => 112,
            Alert::Other(c) => c,
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Alert {
        match code {
            40 => Alert::HandshakeFailure,
            42 => Alert::BadCertificate,
            112 => Alert::UnrecognizedName,
            other => Alert::Other(other),
        }
    }
}

/// Handshake failures.
#[derive(Debug)]
pub enum HandshakeError {
    /// Framing or transport failure.
    Frame(FrameError),
    /// The peer sent an alert.
    PeerAlert(Alert),
    /// Strict-mode certificate validation failed (the alert was sent to the
    /// peer before returning).
    Cert(CertError),
    /// The peer violated the handshake sequence.
    Protocol(String),
}

impl fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandshakeError::Frame(e) => write!(f, "handshake transport error: {e}"),
            HandshakeError::PeerAlert(a) => write!(f, "peer alert: {a:?}"),
            HandshakeError::Cert(e) => write!(f, "certificate validation failed: {e}"),
            HandshakeError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for HandshakeError {}

impl From<FrameError> for HandshakeError {
    fn from(e: FrameError) -> HandshakeError {
        HandshakeError::Frame(e)
    }
}

/// Server certificate inventory: chains selected by SNI.
#[derive(Debug, Clone, Default)]
pub struct ServerIdentity {
    /// Chains keyed by the exact name they were installed for.
    chains: HashMap<DomainName, Vec<SimCert>>,
    /// Chain served when no installed name matches (common on shared
    /// hosting: the provider's own certificate — a mismatch the client then
    /// detects).
    default_chain: Option<Vec<SimCert>>,
}

impl ServerIdentity {
    /// An identity with no certificates (every SNI gets
    /// `unrecognized_name`).
    pub fn empty() -> ServerIdentity {
        ServerIdentity::default()
    }

    /// Installs `chain` for `name` (exact-match SNI selection; the chain's
    /// leaf may be a wildcard certificate covering more names).
    pub fn install(&mut self, name: DomainName, chain: Vec<SimCert>) {
        self.chains.insert(name, chain);
    }

    /// Removes the chain installed for `name`.
    pub fn uninstall(&mut self, name: &DomainName) -> bool {
        self.chains.remove(name).is_some()
    }

    /// Sets the fallback chain served for unknown SNI.
    pub fn set_default(&mut self, chain: Vec<SimCert>) {
        self.default_chain = Some(chain);
    }

    /// Selects the chain for an SNI: exact installed name, then any
    /// installed wildcard-covering chain, then the default.
    pub fn select(&self, sni: &DomainName) -> Option<&Vec<SimCert>> {
        if let Some(chain) = self.chains.get(sni) {
            return Some(chain);
        }
        self.chains
            .values()
            .find(|chain| {
                chain
                    .first()
                    .is_some_and(|leaf| pkix::validate::cert_covers_host(leaf, sni))
            })
            .or(self.default_chain.as_ref())
    }
}

/// Server-side fault injection, driving the paper's policy-server error
/// classes (§4.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerBehavior {
    /// Normal operation.
    #[default]
    Normal,
    /// Refuse every handshake with `handshake_failure` (TLS disabled).
    RefuseHandshake,
    /// Drop the connection after reading ClientHello (abrupt close).
    AbruptClose,
}

/// Server handshake configuration.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Certificate inventory.
    pub identity: ServerIdentity,
    /// Fault injection.
    pub behavior: ServerBehavior,
    /// Server nonce; deterministic tests set this, live servers may use any
    /// value.
    pub nonce: u64,
    /// DH secret; as with the nonce, fixed for determinism.
    pub dh_secret: u64,
}

/// Client handshake configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server name to request (certificate selection key).
    pub sni: DomainName,
    /// Client nonce.
    pub nonce: u64,
    /// DH secret.
    pub dh_secret: u64,
    /// When set, validate the presented chain against this store at this
    /// time *during* the handshake and abort with an alert on failure.
    pub strict: Option<(TrustStore, SimInstant)>,
}

impl ClientConfig {
    /// An opportunistic (non-validating) client for `sni`.
    pub fn opportunistic(sni: DomainName, nonce: u64, dh_secret: u64) -> ClientConfig {
        ClientConfig {
            sni,
            nonce,
            dh_secret,
            strict: None,
        }
    }
}

/// Outcome of a successful client handshake.
pub struct ClientSession<S> {
    /// The encrypted stream, ready for application data.
    pub stream: TlsStream<S>,
    /// The certificate chain the server presented (leaf first; may be
    /// empty if the server presented none).
    pub peer_chain: Vec<SimCert>,
}

/// Runs the client side of the handshake over `inner`.
pub async fn client_handshake<S: AsyncRead + AsyncWrite + Unpin>(
    mut inner: S,
    config: ClientConfig,
) -> Result<ClientSession<S>, HandshakeError> {
    let dh = DhKeyPair::from_secret(config.dh_secret);
    // ClientHello.
    let mut hello = Vec::new();
    hello.extend_from_slice(&config.nonce.to_be_bytes());
    hello.extend_from_slice(&dh.public.to_be_bytes());
    let sni = config.sni.to_string();
    hello.extend_from_slice(&(sni.len() as u32).to_be_bytes());
    hello.extend_from_slice(sni.as_bytes());
    write_frame(&mut inner, FrameType::ClientHello, &hello).await?;

    // ServerHello or Alert.
    let frame = read_frame(&mut inner).await?;
    match frame.ftype {
        FrameType::Alert => {
            let code = frame.payload.first().copied().unwrap_or(0);
            return Err(HandshakeError::PeerAlert(Alert::from_code(code)));
        }
        FrameType::ServerHello => {}
        other => {
            return Err(HandshakeError::Protocol(format!(
                "expected ServerHello, got {other:?}"
            )))
        }
    }
    let (server_nonce, server_pub, peer_chain) = parse_server_hello(&frame.payload)?;

    // Optional in-handshake validation.
    if let Some((roots, now)) = &config.strict {
        if let Err(e) = validate_chain(&peer_chain, &config.sni, *now, roots) {
            let _ = write_frame(
                &mut inner,
                FrameType::Alert,
                &[Alert::BadCertificate.code()],
            )
            .await;
            return Err(HandshakeError::Cert(e));
        }
    }

    // Finished + key derivation.
    write_frame(&mut inner, FrameType::Finished, &[]).await?;
    let keys = derive_keys(dh.shared_secret(server_pub), config.nonce, server_nonce);
    Ok(ClientSession {
        stream: TlsStream::client(inner, keys),
        peer_chain,
    })
}

/// Outcome of a successful server handshake.
pub struct ServerSession<S> {
    /// The encrypted stream, ready for application data.
    pub stream: TlsStream<S>,
    /// The SNI the client requested.
    pub sni: DomainName,
}

/// Runs the server side of the handshake over `inner`.
pub async fn server_handshake<S: AsyncRead + AsyncWrite + Unpin>(
    mut inner: S,
    config: &ServerConfig,
) -> Result<ServerSession<S>, HandshakeError> {
    let frame = read_frame(&mut inner).await?;
    if frame.ftype != FrameType::ClientHello {
        return Err(HandshakeError::Protocol(format!(
            "expected ClientHello, got {:?}",
            frame.ftype
        )));
    }
    let (client_nonce, client_pub, sni) = parse_client_hello(&frame.payload)?;

    match config.behavior {
        ServerBehavior::Normal => {}
        ServerBehavior::RefuseHandshake => {
            write_frame(
                &mut inner,
                FrameType::Alert,
                &[Alert::HandshakeFailure.code()],
            )
            .await?;
            return Err(HandshakeError::PeerAlert(Alert::HandshakeFailure));
        }
        ServerBehavior::AbruptClose => {
            // Simulate a crash/reset: just stop talking.
            return Err(HandshakeError::Protocol("configured abrupt close".into()));
        }
    }

    let Some(chain) = config.identity.select(&sni) else {
        write_frame(
            &mut inner,
            FrameType::Alert,
            &[Alert::UnrecognizedName.code()],
        )
        .await?;
        return Err(HandshakeError::PeerAlert(Alert::UnrecognizedName));
    };

    let dh = DhKeyPair::from_secret(config.dh_secret);
    let mut hello = Vec::new();
    hello.extend_from_slice(&config.nonce.to_be_bytes());
    hello.extend_from_slice(&dh.public.to_be_bytes());
    hello.extend_from_slice(&(chain.len() as u32).to_be_bytes());
    for cert in chain {
        let bytes = cert.to_bytes();
        hello.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        hello.extend_from_slice(&bytes);
    }
    write_frame(&mut inner, FrameType::ServerHello, &hello).await?;

    // Finished or Alert (strict client rejecting the certificate).
    let fin = read_frame(&mut inner).await?;
    match fin.ftype {
        FrameType::Finished => {}
        FrameType::Alert => {
            let code = fin.payload.first().copied().unwrap_or(0);
            return Err(HandshakeError::PeerAlert(Alert::from_code(code)));
        }
        other => {
            return Err(HandshakeError::Protocol(format!(
                "expected Finished, got {other:?}"
            )))
        }
    }
    let keys = derive_keys(dh.shared_secret(client_pub), client_nonce, config.nonce);
    Ok(ServerSession {
        stream: TlsStream::server(inner, keys),
        sni,
    })
}

fn parse_client_hello(payload: &[u8]) -> Result<(u64, u64, DomainName), HandshakeError> {
    let err = |m: &str| HandshakeError::Protocol(m.to_string());
    if payload.len() < 20 {
        return Err(err("short ClientHello"));
    }
    let nonce = u64::from_be_bytes(payload[0..8].try_into().expect("sized"));
    let dh_pub = u64::from_be_bytes(payload[8..16].try_into().expect("sized"));
    let sni_len = u32::from_be_bytes(payload[16..20].try_into().expect("sized")) as usize;
    if payload.len() != 20 + sni_len {
        return Err(err("bad SNI length"));
    }
    let sni_str = std::str::from_utf8(&payload[20..]).map_err(|_| err("SNI is not UTF-8"))?;
    let sni = DomainName::parse(sni_str).map_err(|_| err("SNI is not a valid name"))?;
    Ok((nonce, dh_pub, sni))
}

fn parse_server_hello(payload: &[u8]) -> Result<(u64, u64, Vec<SimCert>), HandshakeError> {
    let err = |m: &str| HandshakeError::Protocol(m.to_string());
    if payload.len() < 20 {
        return Err(err("short ServerHello"));
    }
    let nonce = u64::from_be_bytes(payload[0..8].try_into().expect("sized"));
    let dh_pub = u64::from_be_bytes(payload[8..16].try_into().expect("sized"));
    let count = u32::from_be_bytes(payload[16..20].try_into().expect("sized")) as usize;
    if count > 16 {
        return Err(err("unreasonable chain length"));
    }
    let mut pos = 20;
    let mut chain = Vec::with_capacity(count);
    for _ in 0..count {
        if payload.len() < pos + 4 {
            return Err(err("truncated chain"));
        }
        let len = u32::from_be_bytes(payload[pos..pos + 4].try_into().expect("sized")) as usize;
        pos += 4;
        if payload.len() < pos + len {
            return Err(err("truncated certificate"));
        }
        let cert = SimCert::from_bytes(&payload[pos..pos + len])
            .map_err(|e| err(&format!("bad certificate: {e}")))?;
        chain.push(cert);
        pos += len;
    }
    if pos != payload.len() {
        return Err(err("trailing bytes in ServerHello"));
    }
    Ok((nonce, dh_pub, chain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbase::SimDate;
    use pkix::CertAuthority;
    use tokio::io::{AsyncReadExt, AsyncWriteExt};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn pki() -> (CertAuthority, TrustStore) {
        let nb = SimDate::ymd(2023, 1, 1).at_midnight();
        let na = SimDate::ymd(2026, 1, 1).at_midnight();
        let root = CertAuthority::new_root("Sim Root", nb, na);
        let mut store = TrustStore::empty();
        store.add_root(&root);
        (root, store)
    }

    fn now() -> SimInstant {
        SimDate::ymd(2024, 9, 29).at_midnight()
    }

    fn server_config(root: &mut CertAuthority, names: &[&str]) -> ServerConfig {
        let nb = SimDate::ymd(2023, 1, 1).at_midnight();
        let na = SimDate::ymd(2026, 1, 1).at_midnight();
        let mut identity = ServerIdentity::empty();
        for name in names {
            let dn = n(name);
            let chain = vec![root.issue_leaf(std::slice::from_ref(&dn), nb, na)];
            identity.install(dn, chain);
        }
        ServerConfig {
            identity,
            behavior: ServerBehavior::Normal,
            nonce: 7,
            dh_secret: 1111,
        }
    }

    /// Runs a full handshake over a duplex pipe, then echoes one message
    /// through the encrypted stream.
    #[tokio::test]
    async fn full_handshake_and_echo() {
        let (mut root, store) = pki();
        let sc = server_config(&mut root, &["mta-sts.example.com"]);
        let (client_io, server_io) = tokio::io::duplex(4096);

        let server = tokio::spawn(async move {
            let mut session = server_handshake(server_io, &sc).await.unwrap();
            assert_eq!(session.sni, n("mta-sts.example.com"));
            let mut buf = [0u8; 5];
            session.stream.read_exact(&mut buf).await.unwrap();
            assert_eq!(&buf, b"HELLO");
            session.stream.write_all(b"WORLD").await.unwrap();
            session.stream.flush().await.unwrap();
        });

        let config = ClientConfig {
            sni: n("mta-sts.example.com"),
            nonce: 3,
            dh_secret: 2222,
            strict: Some((store, now())),
        };
        let mut session = client_handshake(client_io, config).await.unwrap();
        assert_eq!(session.peer_chain.len(), 1);
        session.stream.write_all(b"HELLO").await.unwrap();
        session.stream.flush().await.unwrap();
        let mut buf = [0u8; 5];
        session.stream.read_exact(&mut buf).await.unwrap();
        assert_eq!(&buf, b"WORLD");
        server.await.unwrap();
    }

    #[tokio::test]
    async fn strict_client_rejects_bad_certificate() {
        let (mut root, _) = pki();
        // Trust store that does NOT contain the issuing root.
        let empty_store = TrustStore::empty();
        let sc = server_config(&mut root, &["mta-sts.example.com"]);
        let (client_io, server_io) = tokio::io::duplex(4096);
        let server = tokio::spawn(async move { server_handshake(server_io, &sc).await });
        let config = ClientConfig {
            sni: n("mta-sts.example.com"),
            nonce: 3,
            dh_secret: 2222,
            strict: Some((empty_store, now())),
        };
        let err = client_handshake(client_io, config)
            .await
            .err()
            .expect("expected handshake failure");
        assert!(matches!(
            err,
            HandshakeError::Cert(CertError::UnknownIssuer)
        ));
        // Server sees the alert.
        let server_err = server
            .await
            .unwrap()
            .err()
            .expect("expected handshake failure");
        assert!(matches!(
            server_err,
            HandshakeError::PeerAlert(Alert::BadCertificate)
        ));
    }

    #[tokio::test]
    async fn opportunistic_client_accepts_anything() {
        let (mut root, _) = pki();
        let sc = server_config(&mut root, &["mta-sts.example.com"]);
        let (client_io, server_io) = tokio::io::duplex(4096);
        tokio::spawn(async move {
            let _ = server_handshake(server_io, &sc).await;
        });
        let config = ClientConfig::opportunistic(n("mta-sts.example.com"), 3, 2222);
        let session = client_handshake(client_io, config).await.unwrap();
        // The caller can still validate the returned chain afterwards.
        assert_eq!(session.peer_chain.len(), 1);
    }

    #[tokio::test]
    async fn unknown_sni_gets_unrecognized_name() {
        let (mut root, _) = pki();
        let sc = server_config(&mut root, &["mta-sts.other.com"]);
        let (client_io, server_io) = tokio::io::duplex(4096);
        tokio::spawn(async move {
            let _ = server_handshake(server_io, &sc).await;
        });
        let config = ClientConfig::opportunistic(n("mta-sts.example.com"), 3, 2222);
        let err = client_handshake(client_io, config)
            .await
            .err()
            .expect("expected handshake failure");
        assert!(matches!(
            err,
            HandshakeError::PeerAlert(Alert::UnrecognizedName)
        ));
    }

    #[tokio::test]
    async fn wildcard_chain_serves_covered_sni() {
        let (mut root, store) = pki();
        let nb = SimDate::ymd(2023, 1, 1).at_midnight();
        let na = SimDate::ymd(2026, 1, 1).at_midnight();
        let mut identity = ServerIdentity::empty();
        identity.install(
            n("*.provider.net"),
            vec![root.issue_leaf(&[n("*.provider.net")], nb, na)],
        );
        let sc = ServerConfig {
            identity,
            behavior: ServerBehavior::Normal,
            nonce: 1,
            dh_secret: 10,
        };
        let (client_io, server_io) = tokio::io::duplex(4096);
        tokio::spawn(async move {
            let _ = server_handshake(server_io, &sc).await;
        });
        let config = ClientConfig {
            sni: n("mta-sts.provider.net"),
            nonce: 2,
            dh_secret: 20,
            strict: Some((store, now())),
        };
        assert!(client_handshake(client_io, config).await.is_ok());
    }

    #[tokio::test]
    async fn default_chain_mismatch_detected_by_strict_client() {
        let (mut root, store) = pki();
        let nb = SimDate::ymd(2023, 1, 1).at_midnight();
        let na = SimDate::ymd(2026, 1, 1).at_midnight();
        let mut identity = ServerIdentity::empty();
        // Shared host serving its own certificate for unknown SNI.
        identity.set_default(vec![root.issue_leaf(&[n("shared.hosting.net")], nb, na)]);
        let sc = ServerConfig {
            identity,
            behavior: ServerBehavior::Normal,
            nonce: 1,
            dh_secret: 10,
        };
        let (client_io, server_io) = tokio::io::duplex(4096);
        tokio::spawn(async move {
            let _ = server_handshake(server_io, &sc).await;
        });
        let config = ClientConfig {
            sni: n("mta-sts.example.com"),
            nonce: 2,
            dh_secret: 20,
            strict: Some((store, now())),
        };
        let err = client_handshake(client_io, config)
            .await
            .err()
            .expect("expected handshake failure");
        assert!(matches!(
            err,
            HandshakeError::Cert(CertError::NameMismatch { .. })
        ));
    }

    #[tokio::test]
    async fn refuse_handshake_behavior() {
        let sc = ServerConfig {
            identity: ServerIdentity::empty(),
            behavior: ServerBehavior::RefuseHandshake,
            nonce: 1,
            dh_secret: 10,
        };
        let (client_io, server_io) = tokio::io::duplex(4096);
        tokio::spawn(async move {
            let _ = server_handshake(server_io, &sc).await;
        });
        let config = ClientConfig::opportunistic(n("mta-sts.example.com"), 2, 20);
        let err = client_handshake(client_io, config)
            .await
            .err()
            .expect("expected handshake failure");
        assert!(matches!(
            err,
            HandshakeError::PeerAlert(Alert::HandshakeFailure)
        ));
    }

    #[tokio::test]
    async fn abrupt_close_surfaces_as_transport_error() {
        let sc = ServerConfig {
            identity: ServerIdentity::empty(),
            behavior: ServerBehavior::AbruptClose,
            nonce: 1,
            dh_secret: 10,
        };
        let (client_io, server_io) = tokio::io::duplex(4096);
        tokio::spawn(async move {
            let result = server_handshake(server_io, &sc).await;
            assert!(result.is_err());
            // server_io dropped here => EOF at the client
        });
        let config = ClientConfig::opportunistic(n("mta-sts.example.com"), 2, 20);
        let err = client_handshake(client_io, config)
            .await
            .err()
            .expect("expected handshake failure");
        assert!(matches!(err, HandshakeError::Frame(_)));
    }
}
