//! Toy key agreement and the record-layer keystream.
//!
//! Diffie-Hellman over a 61-bit Mersenne prime (2^61 - 1) with generator 3.
//! The shared secret seeds two xorshift-based keystreams, one per
//! direction, mixed with both handshake nonces. None of this is secure; it
//! exists so the record layer genuinely depends on the handshake (a client
//! that skipped validation still derives working keys — exactly the
//! opportunistic-TLS behaviour §6.2 measures).

/// The DH modulus: 2^61 - 1 (prime).
pub const DH_PRIME: u64 = (1 << 61) - 1;
/// The DH generator.
pub const DH_GENERATOR: u64 = 3;

/// Modular multiplication via 128-bit intermediates.
fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

/// Modular exponentiation by squaring.
pub fn powmod(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    let mut acc = 1u64;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, modulus);
        }
        base = mulmod(base, base, modulus);
        exp >>= 1;
    }
    acc
}

/// A DH key pair: secret exponent and public value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DhKeyPair {
    /// Secret exponent.
    pub secret: u64,
    /// `g^secret mod p`.
    pub public: u64,
}

impl DhKeyPair {
    /// Derives a key pair from a secret exponent.
    pub fn from_secret(secret: u64) -> DhKeyPair {
        // Clamp into [2, p-2].
        let secret = 2 + secret % (DH_PRIME - 3);
        DhKeyPair {
            secret,
            public: powmod(DH_GENERATOR, secret, DH_PRIME),
        }
    }

    /// Computes the shared secret with a peer's public value.
    pub fn shared_secret(&self, peer_public: u64) -> u64 {
        powmod(peer_public, self.secret, DH_PRIME)
    }
}

/// Per-direction key material derived from the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionKeys {
    /// Keystream seed for client→server data.
    pub client_to_server: u64,
    /// Keystream seed for server→client data.
    pub server_to_client: u64,
}

/// Derives session keys from the shared secret and both nonces.
pub fn derive_keys(shared: u64, client_nonce: u64, server_nonce: u64) -> SessionKeys {
    SessionKeys {
        client_to_server: mix(shared, client_nonce, 0x00C1_1E27_5EA7),
        server_to_client: mix(shared, server_nonce, 0x5E12_7E12_BEEF),
    }
}

fn mix(a: u64, b: u64, tag: u64) -> u64 {
    let mut z = a ^ b.rotate_left(17) ^ tag;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A byte-oriented XOR keystream (xorshift64* core).
#[derive(Debug, Clone)]
pub struct KeyStream {
    state: u64,
    /// Buffered keystream bytes not yet consumed.
    buffer: [u8; 8],
    /// Next unread index into `buffer`; 8 means empty.
    cursor: usize,
}

impl KeyStream {
    /// Creates a keystream from a seed.
    pub fn new(seed: u64) -> KeyStream {
        KeyStream {
            // Avoid the xorshift fixed point at zero.
            state: seed | 1,
            buffer: [0; 8],
            cursor: 8,
        }
    }

    fn next_block(&mut self) {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        self.buffer = x.wrapping_mul(0x2545_F491_4F6C_DD1D).to_be_bytes();
        self.cursor = 0;
    }

    /// XORs the keystream into `data` in place (encrypt == decrypt).
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data {
            if self.cursor == 8 {
                self.next_block();
            }
            *byte ^= self.buffer[self.cursor];
            self.cursor += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dh_agreement() {
        let a = DhKeyPair::from_secret(0xDEAD_BEEF_1234);
        let b = DhKeyPair::from_secret(0xFEED_FACE_5678);
        assert_eq!(a.shared_secret(b.public), b.shared_secret(a.public));
        let c = DhKeyPair::from_secret(0x1111);
        assert_ne!(a.shared_secret(b.public), a.shared_secret(c.public));
    }

    #[test]
    fn powmod_basics() {
        assert_eq!(powmod(2, 10, 1_000_000), 1024);
        assert_eq!(powmod(3, 0, 7), 1);
        assert_eq!(powmod(5, 3, 13), 125 % 13);
    }

    #[test]
    fn keystream_roundtrip() {
        let mut enc = KeyStream::new(42);
        let mut dec = KeyStream::new(42);
        let mut data = b"MTA-STS policy file contents".to_vec();
        let original = data.clone();
        enc.apply(&mut data);
        assert_ne!(data, original);
        dec.apply(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn keystream_roundtrip_across_chunk_boundaries() {
        let mut enc = KeyStream::new(7);
        let mut dec = KeyStream::new(7);
        let original: Vec<u8> = (0..=255).collect();
        let mut data = original.clone();
        // Encrypt in irregular chunks, decrypt in different chunks.
        let (head, tail) = data.split_at_mut(13);
        enc.apply(head);
        enc.apply(tail);
        let (h2, t2) = data.split_at_mut(200);
        dec.apply(h2);
        dec.apply(t2);
        assert_eq!(data, original);
    }

    #[test]
    fn directions_differ() {
        let keys = derive_keys(0xABCDEF, 1, 2);
        assert_ne!(keys.client_to_server, keys.server_to_client);
        // Different nonces give different keys for the same shared secret.
        let keys2 = derive_keys(0xABCDEF, 3, 2);
        assert_ne!(keys.client_to_server, keys2.client_to_server);
    }

    #[test]
    fn full_agreement_to_keystream() {
        let a = DhKeyPair::from_secret(101);
        let b = DhKeyPair::from_secret(202);
        let ka = derive_keys(a.shared_secret(b.public), 11, 22);
        let kb = derive_keys(b.shared_secret(a.public), 11, 22);
        assert_eq!(ka, kb);
        let mut c2s_tx = KeyStream::new(ka.client_to_server);
        let mut c2s_rx = KeyStream::new(kb.client_to_server);
        let mut msg = b"EHLO sender.example".to_vec();
        c2s_tx.apply(&mut msg);
        c2s_rx.apply(&mut msg);
        assert_eq!(msg, b"EHLO sender.example");
    }
}
