//! Handshake framing: length-delimited, typed frames.
//!
//! Only the handshake is framed; application data after the handshake is a
//! continuous XOR-enciphered byte stream (see [`crate::stream`]). Frames
//! are `u32` big-endian length (of type byte + payload), then a type byte,
//! then the payload.

use bytes::{Buf, BufMut, BytesMut};
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// Upper bound on a frame payload; certificates chains are small.
pub const MAX_FRAME_LEN: usize = 256 * 1024;

/// Frame types used during the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Client's opening message (nonce, SNI, DH public).
    ClientHello,
    /// Server's reply (nonce, DH public, certificate chain).
    ServerHello,
    /// Client's acknowledgement completing the handshake.
    Finished,
    /// Fatal handshake failure notification.
    Alert,
}

impl FrameType {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            FrameType::ClientHello => 1,
            FrameType::ServerHello => 2,
            FrameType::Finished => 3,
            FrameType::Alert => 21, // mirrors TLS's alert content type
        }
    }

    /// Decodes a wire code.
    pub fn from_code(code: u8) -> Option<FrameType> {
        match code {
            1 => Some(FrameType::ClientHello),
            2 => Some(FrameType::ServerHello),
            3 => Some(FrameType::Finished),
            21 => Some(FrameType::Alert),
            _ => None,
        }
    }
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame type.
    pub ftype: FrameType,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Frame-level I/O errors.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failed (includes clean EOF mid-frame).
    Io(std::io::Error),
    /// Frame length exceeded [`MAX_FRAME_LEN`].
    TooLarge(usize),
    /// Unknown frame type byte.
    UnknownType(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame too large: {n}"),
            FrameError::UnknownType(t) => write!(f, "unknown frame type {t}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Writes one frame.
pub async fn write_frame<S: AsyncWrite + Unpin>(
    stream: &mut S,
    ftype: FrameType,
    payload: &[u8],
) -> Result<(), FrameError> {
    let mut buf = BytesMut::with_capacity(5 + payload.len());
    buf.put_u32(1 + payload.len() as u32);
    buf.put_u8(ftype.code());
    buf.put_slice(payload);
    stream.write_all(&buf).await?;
    stream.flush().await?;
    Ok(())
}

/// Reads one frame.
pub async fn read_frame<S: AsyncRead + Unpin>(stream: &mut S) -> Result<Frame, FrameError> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).await?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).await?;
    let mut cursor = &body[..];
    let type_byte = cursor.get_u8();
    let ftype = FrameType::from_code(type_byte).ok_or(FrameError::UnknownType(type_byte))?;
    Ok(Frame {
        ftype,
        payload: cursor.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn roundtrip_over_duplex() {
        let (mut a, mut b) = tokio::io::duplex(1024);
        write_frame(&mut a, FrameType::ClientHello, b"hello-payload")
            .await
            .unwrap();
        let f = read_frame(&mut b).await.unwrap();
        assert_eq!(f.ftype, FrameType::ClientHello);
        assert_eq!(f.payload, b"hello-payload");
    }

    #[tokio::test]
    async fn empty_payload_roundtrips() {
        let (mut a, mut b) = tokio::io::duplex(64);
        write_frame(&mut a, FrameType::Finished, b"").await.unwrap();
        let f = read_frame(&mut b).await.unwrap();
        assert_eq!(f.ftype, FrameType::Finished);
        assert!(f.payload.is_empty());
    }

    #[tokio::test]
    async fn unknown_type_rejected() {
        let (mut a, mut b) = tokio::io::duplex(64);
        use tokio::io::AsyncWriteExt;
        a.write_all(&[0, 0, 0, 1, 99]).await.unwrap();
        let err = read_frame(&mut b).await.unwrap_err();
        assert!(matches!(err, FrameError::UnknownType(99)));
    }

    #[tokio::test]
    async fn oversized_frame_rejected() {
        let (mut a, mut b) = tokio::io::duplex(64);
        use tokio::io::AsyncWriteExt;
        a.write_all(&u32::to_be_bytes(64 * 1024 * 1024))
            .await
            .unwrap();
        let err = read_frame(&mut b).await.unwrap_err();
        assert!(matches!(err, FrameError::TooLarge(_)));
    }

    #[tokio::test]
    async fn eof_mid_frame_is_io_error() {
        let (mut a, mut b) = tokio::io::duplex(64);
        use tokio::io::AsyncWriteExt;
        a.write_all(&[0, 0, 0, 10, 1, 2, 3]).await.unwrap();
        drop(a);
        let err = read_frame(&mut b).await.unwrap_err();
        assert!(matches!(err, FrameError::Io(_)));
    }
}
