//! The encrypted record layer: an `AsyncRead + AsyncWrite` wrapper.
//!
//! After the handshake, application data is carried as a continuous
//! XOR-enciphered byte stream (per-direction keystreams derived from the
//! handshake). Implementing tokio's I/O traits means the HTTP and SMTP
//! layers can wrap a [`TlsStream`] in `BufReader`/`lines()` exactly as they
//! would a plain `TcpStream`.

use crate::keys::{KeyStream, SessionKeys};
use std::io;
use std::pin::Pin;
use std::task::{Context, Poll};
use tokio::io::{AsyncRead, AsyncWrite, ReadBuf};

/// An enciphered stream over any `AsyncRead + AsyncWrite` transport.
pub struct TlsStream<S> {
    inner: S,
    /// Keystream applied to incoming bytes.
    read_stream: KeyStream,
    /// Keystream applied to outgoing bytes.
    write_stream: KeyStream,
    /// Already-enciphered bytes awaiting a successful write to `inner`.
    /// Bytes enter here exactly once (the keystream cannot rewind).
    pending: Vec<u8>,
    /// Read offset into `pending`.
    pending_pos: usize,
}

impl<S> TlsStream<S> {
    /// Client-side stream: writes with the client→server key, reads with
    /// the server→client key.
    pub fn client(inner: S, keys: SessionKeys) -> TlsStream<S> {
        TlsStream {
            inner,
            read_stream: KeyStream::new(keys.server_to_client),
            write_stream: KeyStream::new(keys.client_to_server),
            pending: Vec::new(),
            pending_pos: 0,
        }
    }

    /// Server-side stream: the mirror of [`TlsStream::client`].
    pub fn server(inner: S, keys: SessionKeys) -> TlsStream<S> {
        TlsStream {
            inner,
            read_stream: KeyStream::new(keys.client_to_server),
            write_stream: KeyStream::new(keys.server_to_client),
            pending: Vec::new(),
            pending_pos: 0,
        }
    }

    /// Consumes the wrapper, returning the underlying transport.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Flushes as much of `pending` as `inner` will take.
    fn poll_flush_pending(&mut self, cx: &mut Context<'_>) -> Poll<io::Result<()>>
    where
        S: AsyncWrite + Unpin,
    {
        while self.pending_pos < self.pending.len() {
            let chunk = &self.pending[self.pending_pos..];
            match Pin::new(&mut self.inner).poll_write(cx, chunk) {
                Poll::Ready(Ok(0)) => {
                    return Poll::Ready(Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "transport closed while flushing",
                    )))
                }
                Poll::Ready(Ok(n)) => self.pending_pos += n,
                Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                Poll::Pending => return Poll::Pending,
            }
        }
        self.pending.clear();
        self.pending_pos = 0;
        Poll::Ready(Ok(()))
    }
}

impl<S: AsyncRead + Unpin> AsyncRead for TlsStream<S> {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let this = self.get_mut();
        let before = buf.filled().len();
        match Pin::new(&mut this.inner).poll_read(cx, buf) {
            Poll::Ready(Ok(())) => {
                // Decrypt in place whatever arrived.
                let filled = buf.filled_mut();
                this.read_stream.apply(&mut filled[before..]);
                Poll::Ready(Ok(()))
            }
            other => other,
        }
    }
}

impl<S: AsyncWrite + Unpin> AsyncWrite for TlsStream<S> {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        let this = self.get_mut();
        // Backpressure: drain previous ciphertext before accepting more, so
        // `pending` cannot grow without bound.
        match this.poll_flush_pending(cx) {
            Poll::Ready(Ok(())) => {}
            Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
            Poll::Pending => return Poll::Pending,
        }
        // Encipher exactly once into the pending buffer, then opportunistically
        // flush. The bytes are "accepted" regardless; poll_flush completes
        // delivery.
        let mut ciphertext = buf.to_vec();
        this.write_stream.apply(&mut ciphertext);
        this.pending = ciphertext;
        this.pending_pos = 0;
        let _ = this.poll_flush_pending(cx); // best effort; Pending is fine
        Poll::Ready(Ok(buf.len()))
    }

    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        let this = self.get_mut();
        match this.poll_flush_pending(cx) {
            Poll::Ready(Ok(())) => Pin::new(&mut this.inner).poll_flush(cx),
            other => other,
        }
    }

    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        let this = self.get_mut();
        match this.poll_flush_pending(cx) {
            Poll::Ready(Ok(())) => Pin::new(&mut this.inner).poll_shutdown(cx),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::derive_keys;
    use tokio::io::{AsyncBufReadExt, AsyncReadExt, AsyncWriteExt, BufReader};

    fn keys() -> SessionKeys {
        derive_keys(0xFEED_BEEF, 11, 22)
    }

    #[tokio::test]
    async fn duplex_echo() {
        let (a, b) = tokio::io::duplex(4096);
        let mut client = TlsStream::client(a, keys());
        let mut server = TlsStream::server(b, keys());
        client.write_all(b"ping").await.unwrap();
        client.flush().await.unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).await.unwrap();
        assert_eq!(&buf, b"ping");
        server.write_all(b"pong").await.unwrap();
        server.flush().await.unwrap();
        client.read_exact(&mut buf).await.unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[tokio::test]
    async fn bytes_on_the_wire_are_enciphered() {
        let (a, mut b) = tokio::io::duplex(4096);
        let mut client = TlsStream::client(a, keys());
        client.write_all(b"SECRET-POLICY-CONTENT").await.unwrap();
        client.flush().await.unwrap();
        let mut raw = vec![0u8; 21];
        b.read_exact(&mut raw).await.unwrap();
        assert_ne!(&raw[..], b"SECRET-POLICY-CONTENT");
    }

    #[tokio::test]
    async fn works_under_bufreader_lines() {
        let (a, b) = tokio::io::duplex(4096);
        let mut client = TlsStream::client(a, keys());
        let server = TlsStream::server(b, keys());
        client
            .write_all(b"220 mx.example.com ESMTP\r\n250 OK\r\n")
            .await
            .unwrap();
        client.flush().await.unwrap();
        drop(client);
        let mut lines = BufReader::new(server).lines();
        assert_eq!(
            lines.next_line().await.unwrap().unwrap(),
            "220 mx.example.com ESMTP"
        );
        assert_eq!(lines.next_line().await.unwrap().unwrap(), "250 OK");
    }

    #[tokio::test]
    async fn large_transfer_in_chunks() {
        let (a, b) = tokio::io::duplex(512); // small pipe forces partial writes
        let mut client = TlsStream::client(a, keys());
        let mut server = TlsStream::server(b, keys());
        let payload: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        let writer = tokio::spawn(async move {
            client.write_all(&payload).await.unwrap();
            client.flush().await.unwrap();
            client.shutdown().await.unwrap();
        });
        let mut received = Vec::new();
        server.read_to_end(&mut received).await.unwrap();
        writer.await.unwrap();
        assert_eq!(received, expected);
    }

    #[tokio::test]
    async fn mismatched_keys_produce_garbage() {
        let (a, b) = tokio::io::duplex(4096);
        let mut client = TlsStream::client(a, keys());
        let mut server = TlsStream::server(b, derive_keys(0xD1FF_EEEE_u64, 11, 22));
        client.write_all(b"plaintext").await.unwrap();
        client.flush().await.unwrap();
        let mut buf = [0u8; 9];
        server.read_exact(&mut buf).await.unwrap();
        assert_ne!(&buf, b"plaintext");
    }
}
