//! Toy TLS: a handshake + record layer with the *shape* of TLS and none of
//! its cryptographic strength.
//!
//! The study needs TLS in three places: HTTPS policy retrieval (§2.2.2),
//! STARTTLS on MX hosts (§2.2.3), and the failure taxonomy built on both
//! (§4.3.3-§4.3.4: handshake alerts, certificate errors, SNI-dependent
//! certificate selection). What it does *not* need is resistance to real
//! attackers — the adversary in every experiment is scripted. This crate
//! therefore implements:
//!
//! - a framed handshake (`ClientHello` with SNI → `ServerHello` with a
//!   certificate chain, or an `Alert`) over any `AsyncRead + AsyncWrite`;
//! - a toy Diffie-Hellman agreement (64-bit modular exponentiation) whose
//!   shared secret keys per-direction XOR keystreams;
//! - [`TlsStream`], an `AsyncRead + AsyncWrite` wrapper carrying the
//!   encrypted byte stream, so HTTP and SMTP layers compose with tokio's
//!   buffered readers unchanged;
//! - server-side certificate selection by SNI, including the
//!   "no certificate for this name" alert the paper observes from policy
//!   hosts (§4.3.3).
//!
//! Certificate *validation policy* stays with the caller: the client
//! returns the presented chain, and [`client_handshake`] takes the
//! validation verdict from a callback so opportunistic-TLS senders (§6.2)
//! can accept anything while MTA-STS/DANE validators enforce.

pub mod frame;
pub mod handshake;
pub mod keys;
pub mod stream;

pub use frame::{Frame, FrameType};
pub use handshake::{
    client_handshake, server_handshake, Alert, ClientConfig, ClientSession, HandshakeError,
    ServerBehavior, ServerConfig, ServerIdentity, ServerSession,
};
pub use stream::TlsStream;
