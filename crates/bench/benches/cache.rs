//! The sender policy cache: TOFU hits vs the always-refetch ablation
//! (DESIGN.md's design-choice list).

use criterion::{criterion_group, criterion_main, Criterion};
use mtasts::{Mode, MxPattern, Policy, PolicyCache};
use netbase::{DomainName, SimDate};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let domain: DomainName = "example.com".parse().unwrap();
    let policy = Policy::new(
        Mode::Enforce,
        604_800,
        vec![MxPattern::parse("mx.example.com").unwrap()],
    );
    let t0 = SimDate::ymd(2024, 6, 1).at_midnight();

    c.bench_function("cache/hit", |b| {
        let mut cache = PolicyCache::new();
        cache.store(domain.clone(), policy.clone(), "id1", t0);
        b.iter(|| cache.decide(black_box(&domain), Some("id1"), t0))
    });
    c.bench_function("cache/miss-id-changed", |b| {
        let mut cache = PolicyCache::new();
        cache.store(domain.clone(), policy.clone(), "id1", t0);
        b.iter(|| cache.decide(black_box(&domain), Some("id2"), t0))
    });
    // The ablation: always refetch = store + decide on every delivery.
    c.bench_function("cache/always-refetch", |b| {
        let mut cache = PolicyCache::new();
        b.iter(|| {
            cache.store(domain.clone(), policy.clone(), "id1", t0);
            cache.evict(&domain);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_cache
}
criterion_main!(benches);
