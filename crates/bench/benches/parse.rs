//! Parsing throughput: MTA-STS records, policy documents, TLSRPT records.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_parse(c: &mut Criterion) {
    let record = "v=STSv1; id=20240131000000;";
    c.bench_function("parse/sts-record", |b| {
        b.iter(|| mtasts::parse_record(black_box(record)).unwrap())
    });

    let record_set: Vec<String> = vec![
        "v=spf1 include:_spf.example.com -all".into(),
        "google-site-verification=abcdefghij".into(),
        "v=STSv1; id=20240131000000;".into(),
    ];
    c.bench_function("parse/record-set", |b| {
        b.iter(|| mtasts::evaluate_record_set(black_box(&record_set)).unwrap())
    });

    let policy = "version: STSv1\r\nmode: enforce\r\nmx: mx1.example.com\r\nmx: mx2.example.com\r\nmx: *.backup.example.net\r\nmax_age: 604800\r\n";
    c.bench_function("parse/policy", |b| {
        b.iter(|| mtasts::parse_policy(black_box(policy)).unwrap())
    });

    let tlsrpt = "v=TLSRPTv1; rua=mailto:tls@example.com,https://collector.example.com/v1";
    c.bench_function("parse/tlsrpt", |b| {
        b.iter(|| mtasts::parse_tlsrpt(black_box(tlsrpt)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_parse
}
criterion_main!(benches);
