//! Ecosystem generation scaling: spec generation and world
//! materialization at several scales.

use criterion::{criterion_group, criterion_main, Criterion};
use ecosystem::{Ecosystem, EcosystemConfig, SnapshotDetail};
use netbase::SimDate;
use std::hint::black_box;

fn bench_population(c: &mut Criterion) {
    for scale in [0.005, 0.02] {
        c.bench_function(&format!("population/generate-scale-{scale}"), |b| {
            b.iter(|| Ecosystem::generate(black_box(EcosystemConfig::paper(42, scale))))
        });
    }
    let eco = Ecosystem::generate(EcosystemConfig::paper(42, 0.02));
    let date = SimDate::ymd(2024, 9, 29);
    c.bench_function("population/world-full-scale-0.02", |b| {
        b.iter(|| eco.world_at(black_box(date), SnapshotDetail::Full))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_population
}
criterion_main!(benches);
