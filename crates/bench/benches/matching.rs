//! MX pattern matching, RFC 6125 host matching, and the bounded
//! Levenshtein used for typo classification.

use criterion::{criterion_group, criterion_main, Criterion};
use mtasts::{classify_mismatch, MxPattern};
use netbase::{levenshtein, levenshtein_within, DomainName};
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let n = |s: &str| s.parse::<DomainName>().unwrap();
    let host = n("alt1.aspmx.l.google.com");
    let wildcard = MxPattern::parse("*.aspmx.l.google.com").unwrap();
    let exact = MxPattern::parse("alt1.aspmx.l.google.com").unwrap();
    c.bench_function("match/pattern-exact", |b| {
        b.iter(|| black_box(&exact).matches(black_box(&host)))
    });
    c.bench_function("match/pattern-wildcard", |b| {
        b.iter(|| black_box(&wildcard).matches(black_box(&host)))
    });

    let cert_host = n("mta-sts.example.com");
    let identifier = n("*.example.com");
    c.bench_function("match/rfc6125", |b| {
        b.iter(|| {
            pkix::validate::host_matches_identifier(black_box(&cert_host), black_box(&identifier))
        })
    });

    let a = "mail.exampleprovider.com";
    let b2 = "mial.exampleprovider.com";
    c.bench_function("match/levenshtein", |b| {
        b.iter(|| levenshtein(black_box(a), black_box(b2)))
    });
    c.bench_function("match/levenshtein-bounded", |b| {
        b.iter(|| levenshtein_within(black_box(a), black_box(b2), 3))
    });

    let mx_hosts = vec![n("mx1.example.com"), n("mx2.example.com")];
    let mismatched = MxPattern::parse("mta-sts.example.com").unwrap();
    c.bench_function("match/classify-mismatch", |b| {
        b.iter(|| classify_mismatch(black_box(&mismatched), black_box(&mx_hosts)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_matching
}
criterion_main!(benches);
