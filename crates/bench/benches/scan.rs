//! End-to-end scanning throughput: single-domain validation against the
//! in-memory world, a full snapshot scan, and the rate-limited variant
//! (DESIGN.md's throttling ablation).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ecosystem::{Ecosystem, EcosystemConfig, SnapshotDetail};
use netbase::{DomainName, SimDate, TokenBucket};
use scanner::{scan_domain, scan_snapshot, scan_snapshot_with_threads, ScanConfig};
use std::hint::black_box;

fn bench_scan(c: &mut Criterion) {
    let eco = Ecosystem::generate(EcosystemConfig::paper(42, 0.01));
    let date = SimDate::ymd(2024, 9, 29);
    let world = eco.world_at(date, SnapshotDetail::Full);
    let domains: Vec<DomainName> = eco.domains_at(date).map(|d| d.name.clone()).collect();
    eprintln!("# scanning population: {} domains", domains.len());

    let config = ScanConfig::default();
    let one = domains[0].clone();
    c.bench_function("scan/single-domain", |b| {
        b.iter(|| {
            scan_domain(
                black_box(&world),
                black_box(&one),
                date,
                date.at_midnight(),
                &config,
            )
        })
    });

    let sample: Vec<DomainName> = domains.iter().take(100).cloned().collect();
    c.bench_function("scan/snapshot-100", |b| {
        b.iter(|| scan_snapshot(black_box(&world), black_box(&sample), date, None, &config))
    });
    c.bench_function("scan/snapshot-100-seq", |b| {
        b.iter(|| {
            scan_snapshot_with_threads(
                black_box(&world),
                black_box(&sample),
                date,
                None,
                &config,
                1,
            )
        })
    });
    c.bench_function("scan/snapshot-100-8-threads", |b| {
        b.iter(|| {
            scan_snapshot_with_threads(
                black_box(&world),
                black_box(&sample),
                date,
                None,
                &config,
                8,
            )
        })
    });
    c.bench_function("scan/snapshot-100-rate-limited", |b| {
        b.iter_batched(
            || TokenBucket::new(1000.0, 100, date.at_midnight()),
            |mut bucket| {
                scan_snapshot(
                    black_box(&world),
                    black_box(&sample),
                    date,
                    Some(&mut bucket),
                    &config,
                )
            },
            BatchSize::SmallInput,
        )
    });

    // World construction itself (per-snapshot rebuild cost).
    c.bench_function("scan/world-build-dns-only", |b| {
        b.iter(|| eco.world_at(date, SnapshotDetail::DnsOnly))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scan
}
criterion_main!(benches);
