//! DNS wire codec throughput, with the compression ablation from
//! DESIGN.md (name compression on vs off).

use criterion::{criterion_group, criterion_main, Criterion};
use dns::types::{Message, Question, Rcode, Record, RecordData, RecordType};
use netbase::DomainName;
use std::hint::black_box;

fn sample_message() -> Message {
    let n = |s: &str| s.parse::<DomainName>().unwrap();
    let q = Message::query(7, Question::new(n("example.com"), RecordType::Mx));
    let mut m = Message::response_to(&q, Rcode::NoError);
    for i in 0..4 {
        m.answers.push(Record::new(
            n("example.com"),
            3600,
            RecordData::Mx {
                preference: 10 * (i + 1),
                exchange: n(&format!("mx{i}.mail.example.com")),
            },
        ));
    }
    for i in 0..4 {
        m.additionals.push(Record::new(
            n(&format!("mx{i}.mail.example.com")),
            3600,
            RecordData::A(format!("192.0.2.{}", i + 1).parse().unwrap()),
        ));
    }
    m
}

fn bench_wire(c: &mut Criterion) {
    let msg = sample_message();
    let compressed = dns::wire::encode_with(&msg, true);
    let plain = dns::wire::encode_with(&msg, false);
    eprintln!(
        "# message size: {} bytes compressed vs {} uncompressed",
        compressed.len(),
        plain.len()
    );
    c.bench_function("wire/encode-compressed", |b| {
        b.iter(|| dns::wire::encode_with(black_box(&msg), true))
    });
    c.bench_function("wire/encode-plain", |b| {
        b.iter(|| dns::wire::encode_with(black_box(&msg), false))
    });
    c.bench_function("wire/decode", |b| {
        b.iter(|| dns::wire::decode(black_box(&compressed)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_wire
}
criterion_main!(benches);
