//! Benchmark trend gate over the committed `BENCH_*.json` trajectory.
//!
//! Each experiment binary commits a machine-readable report
//! (`BENCH_scan.json`, `BENCH_profile.json`, ...) next to the workspace
//! root. This module tracks a small set of headline metrics across those
//! reports, records them as runs in `BENCH_trend.json`, and fails when the
//! current reports regress past a configurable floor relative to the last
//! recorded run. The `trend` binary wraps it for CI:
//!
//! ```text
//! cargo run --release -p mtasts-bench --bin trend            # gate (exit 1 on regression)
//! cargo run --release -p mtasts-bench --bin trend -- record  # append current metrics
//! ```
//!
//! The floor is `TREND_FLOOR` in percent (default 25). Throughput-style
//! metrics (higher is better) regress when they fall below
//! `baseline * (1 - floor/100)`. Overhead-style metrics (lower is better)
//! regress when they drift up by more than `floor/5` percentage points —
//! relative floors are meaningless around a near-zero baseline, so the
//! default 25% floor permits +5 points of absolute drift.

use serde::Value;
use std::collections::BTreeMap;
use std::path::Path;

/// History file maintained next to the `BENCH_*.json` reports.
pub const HISTORY_FILE: &str = "BENCH_trend.json";

/// Default regression floor in percent when `TREND_FLOOR` is unset.
pub const DEFAULT_FLOOR_PCT: f64 = 25.0;

/// Whether larger values of a metric are an improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Higher,
    Lower,
}

/// One tracked metric: where it lives and which way it should move.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// Stable name used in the history file, e.g. `scan.combined_speedup`.
    pub name: &'static str,
    /// Report file relative to the workspace root.
    pub file: &'static str,
    /// Dotted path inside the report; `[field=value]` segments select the
    /// element of an array whose `field` equals `value`.
    pub path: &'static str,
    pub direction: Direction,
}

/// The headline metrics gated across the committed reports.
pub fn specs() -> Vec<MetricSpec> {
    use Direction::{Higher, Lower};
    vec![
        MetricSpec {
            name: "scan.combined_speedup",
            file: "BENCH_scan.json",
            path: "combined_speedup",
            direction: Higher,
        },
        MetricSpec {
            name: "scan.full_speedup",
            file: "BENCH_scan.json",
            path: "full.speedup",
            direction: Higher,
        },
        MetricSpec {
            name: "scan.weekly_speedup",
            file: "BENCH_scan.json",
            path: "weekly.speedup",
            direction: Higher,
        },
        MetricSpec {
            name: "profile.overhead_pct",
            file: "BENCH_profile.json",
            path: "overhead_pct",
            direction: Lower,
        },
        MetricSpec {
            name: "ecosystem.speedup_at_smallest_scale",
            file: "BENCH_ecosystem.json",
            path: "speedup_at_smallest_scale",
            direction: Higher,
        },
        MetricSpec {
            name: "resolver.cold_per_sec",
            file: "BENCH_resolver.json",
            path: "regimes.[regime=cold].resolutions_per_sec",
            direction: Higher,
        },
        MetricSpec {
            name: "resolver.warm_per_sec",
            file: "BENCH_resolver.json",
            path: "regimes.[regime=warm].resolutions_per_sec",
            direction: Higher,
        },
        MetricSpec {
            name: "resolver.outage_per_sec",
            file: "BENCH_resolver.json",
            path: "regimes.[regime=outage].resolutions_per_sec",
            direction: Higher,
        },
        MetricSpec {
            name: "delivery.baseline_msgs_per_sec",
            file: "BENCH_delivery.json",
            path: "scenarios.[scenario=baseline].msgs_per_sec",
            direction: Higher,
        },
    ]
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::I64(n) => Some(*n as f64),
        Value::U64(n) => Some(*n as f64),
        Value::F64(x) => Some(*x),
        _ => None,
    }
}

fn map_get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, val)| val),
        _ => None,
    }
}

/// Walk a dotted path through a `Value` tree. `[field=value]` segments
/// select the array element whose string field matches.
pub fn extract<'a>(root: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = root;
    for seg in path.split('.') {
        if let Some(body) = seg.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let (field, want) = body.split_once('=')?;
            let items = match cur {
                Value::Seq(items) => items,
                _ => return None,
            };
            cur = items
                .iter()
                .find(|item| matches!(map_get(item, field), Some(Value::Str(s)) if s == want))?;
        } else {
            cur = map_get(cur, seg)?;
        }
    }
    Some(cur)
}

/// Read every report under `root` and extract the tracked metrics.
/// Reports that are missing or unparsable simply contribute nothing —
/// the gate only compares metrics present on both sides.
pub fn collect(root: &Path) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for spec in specs() {
        let Ok(text) = std::fs::read_to_string(root.join(spec.file)) else {
            continue;
        };
        let Ok(tree) = serde_json::from_str::<Value>(&text) else {
            continue;
        };
        if let Some(value) = extract(&tree, spec.path).and_then(as_f64) {
            out.insert(spec.name.to_string(), value);
        }
    }
    out
}

/// One recorded run in the history file.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRun {
    pub label: String,
    pub metrics: BTreeMap<String, f64>,
}

/// Parse the history file contents. Unknown fields are ignored.
pub fn parse_history(text: &str) -> Vec<TrendRun> {
    let Ok(tree) = serde_json::from_str::<Value>(text) else {
        return Vec::new();
    };
    let Some(Value::Seq(runs)) = map_get(&tree, "runs") else {
        return Vec::new();
    };
    runs.iter()
        .filter_map(|run| {
            let label = match map_get(run, "label") {
                Some(Value::Str(s)) => s.clone(),
                _ => String::new(),
            };
            let metrics = match map_get(run, "metrics") {
                Some(Value::Map(entries)) => entries
                    .iter()
                    .filter_map(|(k, v)| as_f64(v).map(|x| (k.clone(), x)))
                    .collect(),
                _ => return None,
            };
            Some(TrendRun { label, metrics })
        })
        .collect()
}

/// Render the history file contents (pretty JSON, stable key order).
pub fn render_history(runs: &[TrendRun]) -> String {
    let runs_value = Value::Seq(
        runs.iter()
            .map(|run| {
                Value::Map(vec![
                    ("label".to_string(), Value::Str(run.label.clone())),
                    (
                        "metrics".to_string(),
                        Value::Map(
                            run.metrics
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::F64(*v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    let tree = Value::Map(vec![
        (
            "format".to_string(),
            Value::Str("mtasts-bench-trend-v1".to_string()),
        ),
        ("runs".to_string(), runs_value),
    ]);
    let mut text = serde_json::to_string_pretty(&tree).expect("trend history renders");
    text.push('\n');
    text
}

pub fn load_history(root: &Path) -> Vec<TrendRun> {
    match std::fs::read_to_string(root.join(HISTORY_FILE)) {
        Ok(text) => parse_history(&text),
        Err(_) => Vec::new(),
    }
}

pub fn save_history(root: &Path, runs: &[TrendRun]) -> std::io::Result<()> {
    std::fs::write(root.join(HISTORY_FILE), render_history(runs))
}

/// Gate outcome for one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    pub name: String,
    pub baseline: f64,
    pub current: f64,
    /// Worst acceptable value given the floor.
    pub allowed: f64,
    pub regressed: bool,
}

/// `TREND_FLOOR` in percent, defaulting to [`DEFAULT_FLOOR_PCT`].
pub fn floor_from_env() -> f64 {
    std::env::var("TREND_FLOOR")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|f| f.is_finite() && *f >= 0.0)
        .unwrap_or(DEFAULT_FLOOR_PCT)
}

fn direction_of(name: &str) -> Direction {
    specs()
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.direction)
        .unwrap_or(Direction::Higher)
}

/// Compare current metrics against a baseline run. Metrics present on only
/// one side are skipped (new metrics enter the trajectory without gating).
pub fn gate(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    floor_pct: f64,
) -> Vec<Verdict> {
    let mut out = Vec::new();
    for (name, &base) in baseline {
        let Some(&cur) = current.get(name) else {
            continue;
        };
        let (allowed, regressed) = match direction_of(name) {
            Direction::Higher => {
                let allowed = base * (1.0 - floor_pct / 100.0);
                (allowed, cur < allowed)
            }
            Direction::Lower => {
                let allowed = base + floor_pct / 5.0;
                (allowed, cur > allowed)
            }
        };
        out.push(Verdict {
            name: name.clone(),
            baseline: base,
            current: cur,
            allowed,
            regressed,
        });
    }
    out
}

/// Format verdicts as an aligned report table.
pub fn report(verdicts: &[Verdict], floor_pct: f64) -> String {
    let mut out = format!("trend gate (floor {floor_pct}%)\n");
    let width = verdicts
        .iter()
        .map(|v| v.name.len())
        .max()
        .unwrap_or(6)
        .max(6);
    for v in verdicts {
        out.push_str(&format!(
            "  {:<width$}  baseline {:>14.3}  current {:>14.3}  allowed {:>14.3}  {}\n",
            v.name,
            v.baseline,
            v.current,
            v.allowed,
            if v.regressed { "REGRESSED" } else { "ok" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    #[test]
    fn extract_walks_nested_and_array_select_paths() {
        let tree: Value =
            serde_json::from_str(r#"{"a":{"b":3.5},"rows":[{"id":"x","v":1},{"id":"y","v":2}]}"#)
                .unwrap();
        assert_eq!(extract(&tree, "a.b").and_then(as_f64), Some(3.5));
        assert_eq!(extract(&tree, "rows.[id=y].v").and_then(as_f64), Some(2.0));
        assert_eq!(extract(&tree, "rows.[id=z].v"), None);
        assert_eq!(extract(&tree, "a.missing"), None);
    }

    #[test]
    fn gate_passes_on_identical_metrics() {
        let metrics: BTreeMap<String, f64> = [("scan.combined_speedup".to_string(), 19.7)]
            .into_iter()
            .collect();
        let verdicts = gate(&metrics, &metrics, 25.0);
        assert_eq!(verdicts.len(), 1);
        assert!(!verdicts[0].regressed);
    }

    #[test]
    fn gate_fails_on_injected_synthetic_regression() {
        let baseline: BTreeMap<String, f64> = [("resolver.warm_per_sec".to_string(), 400_000.0)]
            .into_iter()
            .collect();
        let mut current = baseline.clone();
        current.insert("resolver.warm_per_sec".to_string(), 200_000.0); // -50%
        let verdicts = gate(&baseline, &current, 25.0);
        assert!(verdicts[0].regressed, "50% drop must trip a 25% floor");

        // Within the floor it must pass.
        current.insert("resolver.warm_per_sec".to_string(), 320_000.0); // -20%
        let verdicts = gate(&baseline, &current, 25.0);
        assert!(!verdicts[0].regressed);
    }

    #[test]
    fn lower_is_better_uses_absolute_point_slack() {
        let baseline: BTreeMap<String, f64> = [("profile.overhead_pct".to_string(), -1.6)]
            .into_iter()
            .collect();
        // +5 points from -1.6 is allowed at floor 25 (25/5 = 5 point slack).
        let mut current = baseline.clone();
        current.insert("profile.overhead_pct".to_string(), 3.0);
        assert!(!gate(&baseline, &current, 25.0)[0].regressed);
        current.insert("profile.overhead_pct".to_string(), 6.0);
        assert!(gate(&baseline, &current, 25.0)[0].regressed);
    }

    #[test]
    fn history_round_trips() {
        let runs = vec![TrendRun {
            label: "seed".to_string(),
            metrics: [("scan.combined_speedup".to_string(), 19.25)]
                .into_iter()
                .collect(),
        }];
        let parsed = parse_history(&render_history(&runs));
        assert_eq!(parsed, runs);
    }

    #[test]
    fn committed_reports_yield_metrics() {
        let metrics = collect(&repo_root());
        // Every committed report must surface its headline metric; if a
        // report file is renamed this catches the silent gate no-op.
        for name in [
            "scan.combined_speedup",
            "profile.overhead_pct",
            "ecosystem.speedup_at_smallest_scale",
            "resolver.warm_per_sec",
            "delivery.baseline_msgs_per_sec",
        ] {
            assert!(metrics.contains_key(name), "missing {name}: {metrics:?}");
        }
    }

    #[test]
    fn committed_trajectory_passes_the_gate() {
        let root = repo_root();
        let history = load_history(&root);
        let Some(last) = history.last() else {
            // History not recorded yet; the gate treats this as vacuous.
            return;
        };
        let current = collect(&root);
        let verdicts = gate(&last.metrics, &current, DEFAULT_FLOOR_PCT);
        let regressed: Vec<_> = verdicts.iter().filter(|v| v.regressed).collect();
        assert!(
            regressed.is_empty(),
            "committed trajectory regressed: {regressed:?}"
        );
    }
}
