//! Shared plumbing for the experiment binaries (`src/bin/exp_*.rs`).
//!
//! Every binary reads the same environment knobs so whole-suite runs are
//! coherent:
//!
//! - `MTASTS_SEED` (default 42): the ecosystem seed;
//! - `MTASTS_SCALE` (default 0.25): population scale. 1.0 reproduces the
//!   paper's absolute counts (~68k MTA-STS domains) at higher runtime;
//!   0.25 preserves every percentage and is the default recorded in
//!   EXPERIMENTS.md.

pub mod downgrade;
pub mod trend;

use ecosystem::{Ecosystem, EcosystemConfig};
use scanner::longitudinal::{LongitudinalRun, Study};

/// Reads the shared experiment configuration from the environment.
pub fn config_from_env() -> EcosystemConfig {
    let seed = std::env::var("MTASTS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let scale = std::env::var("MTASTS_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    EcosystemConfig::paper(seed, scale)
}

/// Generates the ecosystem for the shared configuration.
pub fn ecosystem() -> Ecosystem {
    let config = config_from_env();
    eprintln!(
        "# ecosystem: seed={} scale={} ({} domains at the final snapshot)",
        config.seed,
        config.scale,
        (68_030.0 * config.scale) as u64
    );
    Ecosystem::generate(config)
}

/// Runs the complete longitudinal study (weekly + monthly scans).
pub fn full_study() -> (Study, LongitudinalRun) {
    let study = Study::new(ecosystem());
    eprintln!("# running weekly record scans and monthly full scans...");
    let run = study.run();
    (study, run)
}

/// Runs only the monthly full-component scans.
pub fn full_scans_only() -> (Study, LongitudinalRun) {
    let study = Study::new(ecosystem());
    eprintln!("# running monthly full scans...");
    let full = study.run_full();
    let run = LongitudinalRun {
        weekly: Vec::new(),
        full,
        mx_history: Default::default(),
    };
    (study, run)
}

/// Runs only the weekly record scans.
pub fn weekly_only() -> (Study, LongitudinalRun) {
    let study = Study::new(ecosystem());
    eprintln!("# running weekly record scans...");
    let (weekly, mx_history) = study.run_weekly();
    let run = LongitudinalRun {
        weekly,
        full: Vec::new(),
        mx_history,
    };
    (study, run)
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_config() {
        // Environment knobs default sensibly.
        let c = super::config_from_env();
        assert!(c.scale > 0.0 && c.scale <= 1.0);
    }
}
