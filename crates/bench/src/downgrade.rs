//! The downgrade-attack sweep behind `exp_downgrade`.
//!
//! The claim under test is the paper's §2.4 security argument: MTA-STS's
//! TOFU cache turns a *stripping* attacker (who can blank the `_mta-sts`
//! record and redirect MX resolution for a bounded window) into a noisy
//! failure instead of a silent interception — but only while a previously
//! fetched policy is still within `max_age`. The harness stands up a set
//! of victim domains, runs a warm-cache sender and an always-refetch
//! ablation through an attack window on an hourly delivery cadence, and
//! counts the attacker's wins on each side. Sweeping window length against
//! `max_age` reproduces the boundary: the warm sender loses nothing while
//! `max_age` covers the window (plus the priming gap), the cache-less
//! sender loses every in-window message.

use mtasts::{Mode, ResultType};
use netbase::{DomainName, Duration, SimDate, SimInstant};
use sender::{DeliveryConfig, DeliveryEngine, DeliveryStats};
use serde::Serialize;
use simnet::endpoint::Reachability;
use simnet::{AttackKind, AttackSchedule, MxEndpoint, WebEndpoint, World};
use std::collections::BTreeMap;

/// One downgrade-scenario configuration.
#[derive(Debug, Clone)]
pub struct DowngradeConfig {
    /// Scenario seed (names the victim domains; the run itself is fully
    /// deterministic).
    pub seed: u64,
    /// Number of victim domains.
    pub victims: usize,
    /// Policy mode the victims publish.
    pub mode: Mode,
    /// Policy `max_age` in seconds.
    pub max_age: u64,
    /// Attack-window length.
    pub window: Duration,
    /// Whether the sender keeps a TOFU cache (`false` = always-refetch
    /// ablation).
    pub use_cache: bool,
}

impl DowngradeConfig {
    /// The default enforce-mode scenario.
    pub fn new(seed: u64, max_age: u64, window: Duration) -> DowngradeConfig {
        DowngradeConfig {
            seed,
            victims: 3,
            mode: Mode::Enforce,
            max_age,
            window,
            use_cache: true,
        }
    }
}

/// Aggregated result of one scenario run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DowngradeOutcome {
    /// Sender-side delivery totals.
    pub stats: DeliveryStats,
    /// Deliveries attempted while the attack window was open.
    pub in_window_attempts: u64,
    /// TLSRPT failure counts by result type, summed over victims.
    pub tlsrpt_failures: BTreeMap<ResultType, u64>,
}

/// The priming-to-attack gap: the cache is warmed one delivery step
/// before the window opens, so the warm sender survives exactly when
/// `max_age >= window + ATTACK_LEAD`.
pub const ATTACK_LEAD: Duration = Duration::hours(1);

/// Delivery cadence.
pub const STEP: Duration = Duration::hours(1);

/// Scenario start.
pub fn t0() -> SimInstant {
    SimDate::ymd(2024, 6, 1).at_midnight()
}

fn victim_name(seed: u64, i: usize) -> DomainName {
    format!("victim{i}-s{seed}.test")
        .parse()
        .expect("generated victim names are valid")
}

/// Installs one healthy MTA-STS victim (record, policy host, MX) into the
/// world.
fn install_victim(world: &World, domain: &DomainName, mode: Mode, max_age: u64, now: SimInstant) {
    world.ensure_zone(domain);
    let policy_host = domain.prefixed("mta-sts").expect("static label");
    let mx_host = domain.prefixed("mx").expect("static label");
    let mode_str = match mode {
        Mode::Enforce => "enforce",
        Mode::Testing => "testing",
        Mode::None => "none",
    };

    let mut web = WebEndpoint::up();
    web.install_chain(
        policy_host.clone(),
        world
            .pki
            .issue_valid(std::slice::from_ref(&policy_host), now),
    );
    web.install_policy(
        policy_host.clone(),
        &format!("version: STSv1\r\nmode: {mode_str}\r\nmx: {mx_host}\r\nmax_age: {max_age}\r\n"),
    );
    let web_ip = world.add_web_endpoint(web);
    let mx_chain = world.pki.issue_valid(std::slice::from_ref(&mx_host), now);
    let mx_ip = world.add_mx_endpoint(MxEndpoint::healthy(mx_host.clone(), mx_chain));

    world.with_zone(domain, |z| {
        use dns::RecordData;
        z.add_rr(&policy_host, 300, RecordData::A(web_ip));
        z.add_rr(&mx_host, 300, RecordData::A(mx_ip));
        z.add_rr(
            domain,
            300,
            RecordData::Mx {
                preference: 10,
                exchange: mx_host.clone(),
            },
        );
        z.add_rr(
            &domain.prefixed("_mta-sts").expect("static label"),
            300,
            RecordData::Txt(vec!["v=STSv1; id=20240601;".into()]),
        );
    });
}

/// Builds the victim world and the stripping-attack schedule for `cfg`.
pub fn build_world(cfg: &DowngradeConfig) -> (World, Vec<DomainName>) {
    let world = World::new();
    let start = t0();
    let victims: Vec<DomainName> = (0..cfg.victims).map(|i| victim_name(cfg.seed, i)).collect();
    for v in &victims {
        install_victim(&world, v, cfg.mode, cfg.max_age, start);
    }
    let attack_start = start + ATTACK_LEAD;
    let attack_end = attack_start + cfg.window;
    let mut schedule = AttackSchedule::new();
    for v in &victims {
        schedule = schedule
            .with_window(
                AttackKind::DnsTxtStrip,
                Some(v.clone()),
                attack_start,
                attack_end,
            )
            .with_window(
                AttackKind::MxRedirect,
                Some(v.clone()),
                attack_start,
                attack_end,
            );
    }
    world.set_attacker(schedule);
    (world, victims)
}

/// Runs one scenario: prime at `t0`, then deliver to every victim each
/// [`STEP`] through the attack window and a six-hour tail.
pub fn run_downgrade(cfg: &DowngradeConfig) -> DowngradeOutcome {
    let (world, victims) = build_world(cfg);
    let delivery_cfg = if cfg.use_cache {
        DeliveryConfig::default()
    } else {
        DeliveryConfig::without_cache()
    };
    let mut engine = DeliveryEngine::new(delivery_cfg);

    let start = t0();
    let attack_start = start + ATTACK_LEAD;
    let attack_end = attack_start + cfg.window;
    let horizon = attack_end + Duration::hours(6);

    // Prime: one delivery per victim before the attack begins.
    for v in &victims {
        engine.deliver(&world, v, start);
    }

    let mut in_window_attempts = 0;
    let mut now = start + STEP;
    while now < horizon {
        // DNS answers carry a 300 s TTL; flushing between hourly rounds
        // keeps the resolver honest about the attacker's spoofed answers.
        world.flush_dns_cache();
        for v in &victims {
            if attack_start <= now && now < attack_end {
                in_window_attempts += 1;
            }
            engine.deliver(&world, v, now);
        }
        now += STEP;
    }

    let report = engine.tls_report(start.date());
    let mut tlsrpt_failures: BTreeMap<ResultType, u64> = BTreeMap::new();
    for policy in &report.policies {
        for detail in &policy.failure_details {
            *tlsrpt_failures.entry(detail.result_type).or_default() += detail.failed_session_count;
        }
    }

    DowngradeOutcome {
        stats: engine.stats(),
        in_window_attempts,
        tlsrpt_failures,
    }
}

/// One sweep cell: a (window, max_age) pair run both with and without the
/// cache.
#[derive(Debug, Clone, Serialize)]
pub struct SweepCell {
    /// Attack-window length in hours.
    pub window_hours: i64,
    /// Policy `max_age` in seconds.
    pub max_age: u64,
    /// Whether `max_age` covers the window plus the priming gap — the
    /// regime in which the warm sender must lose nothing.
    pub cache_covers_window: bool,
    /// Warm-cache sender outcome.
    pub warm: DowngradeOutcome,
    /// Always-refetch ablation outcome.
    pub cacheless: DowngradeOutcome,
}

/// Sweeps window length x `max_age` for enforce-mode victims.
pub fn sweep(seed: u64, windows: &[Duration], max_ages: &[u64]) -> Vec<SweepCell> {
    let mut cells = Vec::with_capacity(windows.len() * max_ages.len());
    for &window in windows {
        for &max_age in max_ages {
            let warm = run_downgrade(&DowngradeConfig::new(seed, max_age, window));
            let cacheless = run_downgrade(&DowngradeConfig {
                use_cache: false,
                ..DowngradeConfig::new(seed, max_age, window)
            });
            cells.push(SweepCell {
                window_hours: window.as_secs() / 3600,
                max_age,
                cache_covers_window: max_age as i64 >= (window + ATTACK_LEAD).as_secs(),
                warm,
                cacheless,
            });
        }
    }
    cells
}

/// TLSRPT failure-type coverage: three scenarios producing the three
/// failure types the downgrade story hinges on.
///
/// - `validation-failure`: MX redirection against a cached policy
///   (`testing` mode, so the failure is soft and reported);
/// - `sts-webpki-invalid`: HTTPS policy-fetch MITM with an attacker
///   certificate against a cache-less sender;
/// - `sts-policy-fetch-error`: policy host unreachable (attacker DoS)
///   against a cache-less sender.
pub fn tlsrpt_failure_coverage(seed: u64) -> BTreeMap<ResultType, u64> {
    let start = t0();
    let attack_start = start + ATTACK_LEAD;
    let attack_end = attack_start + Duration::hours(6);
    let mut totals: BTreeMap<ResultType, u64> = BTreeMap::new();
    let mut merge = |outcome: &DowngradeOutcome| {
        for (ty, n) in &outcome.tlsrpt_failures {
            *totals.entry(*ty).or_default() += n;
        }
    };

    // validation-failure via soft-failing MX redirection.
    merge(&run_downgrade(&DowngradeConfig {
        mode: Mode::Testing,
        ..DowngradeConfig::new(seed, 604_800, Duration::hours(6))
    }));

    // sts-webpki-invalid via an HTTPS MITM on the policy host.
    {
        let cfg = DowngradeConfig {
            use_cache: false,
            ..DowngradeConfig::new(seed, 604_800, Duration::hours(6))
        };
        let world = World::new();
        let victim = victim_name(cfg.seed, 0);
        install_victim(&world, &victim, cfg.mode, cfg.max_age, start);
        world.set_attacker(AttackSchedule::new().with_window(
            AttackKind::HttpsMitm,
            Some(victim.clone()),
            attack_start,
            attack_end,
        ));
        let mut engine = DeliveryEngine::new(DeliveryConfig::without_cache());
        engine.deliver(&world, &victim, attack_start + STEP);
        let report = engine.tls_report(start.date());
        for policy in &report.policies {
            for detail in &policy.failure_details {
                *totals.entry(detail.result_type).or_default() += detail.failed_session_count;
            }
        }
    }

    // sts-policy-fetch-error via an unreachable policy host.
    {
        let world = World::new();
        let victim = victim_name(seed, 0);
        install_victim(&world, &victim, Mode::Enforce, 604_800, start);
        for ip in world.web_ips() {
            world.with_web(ip, |ep| ep.reachability = Reachability::Refused);
        }
        let mut engine = DeliveryEngine::new(DeliveryConfig::without_cache());
        engine.deliver(&world, &victim, attack_start);
        let report = engine.tls_report(start.date());
        for policy in &report.policies {
            for detail in &policy.failure_details {
                *totals.entry(detail.result_type).or_default() += detail.failed_session_count;
            }
        }
    }

    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covered_cache_shuts_the_attacker_out() {
        // max_age one week, window one day: the warm sender refuses
        // in-window deliveries instead of losing them.
        let cfg = DowngradeConfig::new(7, 604_800, Duration::days(1));
        let out = run_downgrade(&cfg);
        assert_eq!(out.stats.intercepted, 0);
        assert_eq!(out.stats.refused, out.in_window_attempts);
        assert!(out.stats.delivered_validated > 0);
    }

    #[test]
    fn short_max_age_loses_the_tail_of_the_window() {
        // max_age two hours, window one day: once the cache expires
        // mid-window the domain is released and messages flow to the
        // attacker.
        let cfg = DowngradeConfig::new(7, 7_200, Duration::days(1));
        let out = run_downgrade(&cfg);
        assert!(out.stats.intercepted > 0);
        assert!(out.stats.intercepted < out.in_window_attempts);
    }

    #[test]
    fn sweep_is_deterministic() {
        let windows = [Duration::hours(6)];
        let ages = [3_600, 604_800];
        let a = sweep(42, &windows, &ages);
        let b = sweep(42, &windows, &ages);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.warm, y.warm);
            assert_eq!(x.cacheless, y.cacheless);
        }
    }
}
