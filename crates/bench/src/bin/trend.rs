//! CI trend gate over the committed `BENCH_*.json` reports.
//!
//! ```text
//! trend           # compare current reports against the last recorded run; exit 1 on regression
//! trend record    # append the current metrics as a new run in BENCH_trend.json
//! ```
//!
//! `TREND_ROOT` overrides the workspace root (default: current directory).
//! `TREND_FLOOR` sets the regression floor in percent (default 25).
//! `TREND_LABEL` labels the run when recording.

use mtasts_bench::trend;
use std::path::PathBuf;

fn main() {
    let root = std::env::var("TREND_ROOT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."));
    let record = std::env::args().nth(1).is_some_and(|a| a == "record");
    let current = trend::collect(&root);
    if current.is_empty() {
        eprintln!(
            "trend: no BENCH_*.json reports found under {}",
            root.display()
        );
        std::process::exit(2);
    }

    if record {
        let mut history = trend::load_history(&root);
        let label =
            std::env::var("TREND_LABEL").unwrap_or_else(|_| format!("run-{}", history.len() + 1));
        history.push(trend::TrendRun {
            label: label.clone(),
            metrics: current,
        });
        trend::save_history(&root, &history).expect("write BENCH_trend.json");
        println!("trend: recorded run '{label}' ({} total)", history.len());
        return;
    }

    let history = trend::load_history(&root);
    let Some(last) = history.last() else {
        println!(
            "trend: no recorded history in {}; nothing to gate",
            trend::HISTORY_FILE
        );
        return;
    };
    let floor = trend::floor_from_env();
    let verdicts = trend::gate(&last.metrics, &current, floor);
    print!("{}", trend::report(&verdicts, floor));
    if verdicts.iter().any(|v| v.regressed) {
        eprintln!(
            "trend: regression past the {floor}% floor (baseline run '{}')",
            last.label
        );
        std::process::exit(1);
    }
    println!("trend: ok against baseline run '{}'", last.label);
}
