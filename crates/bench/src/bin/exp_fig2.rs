//! Figure 2: % of domains with MTA-STS records over time, per TLD —
//! including the Jan-2-2024 .org organizational spike.

use ecosystem::TldId;
use report::AsciiChart;
use scanner::analysis::fig2_series;

fn main() {
    let (study, run) = mtasts_bench::weekly_only();
    let series = fig2_series(&run, study.eco.config.scale);
    let mut chart = AsciiChart::new(
        "Figure 2: MTA-STS record deployment (% of MX domains, weekly)",
        12,
    );
    for tld in [TldId::Com, TldId::Net, TldId::Org, TldId::Se] {
        chart.series(
            &tld.to_string(),
            series.iter().map(|(_, m)| m[&tld]).collect(),
        );
    }
    chart.x_label(0, &series.first().unwrap().0.to_string());
    chart.x_label(series.len() - 8, &series.last().unwrap().0.to_string());
    println!("{}", chart.render());
    let last = series.last().unwrap();
    for tld in [TldId::Com, TldId::Net, TldId::Org, TldId::Se] {
        println!("latest {tld}: {:.3}%", last.1[&tld]);
    }
    println!("paper latest: .com 0.07%  .net 0.09%  .org 0.12-0.13%  .se 0.08%");
    // The .org spike (461 domains on 2024-01-02).
    let spike_idx = series
        .iter()
        .position(|(d, _)| *d >= netbase::SimDate::ymd(2024, 1, 2))
        .unwrap();
    println!(
        ".org around the Jan 2 2024 spike: {:.3}% -> {:.3}%",
        series[spike_idx - 1].1[&TldId::Org],
        series[spike_idx].1[&TldId::Org]
    );
}
