//! Outbound delivery pipeline under the degraded-MX chaos matrix
//! (EXPERIMENTS.md, DESIGN.md "Delivery pipeline").
//!
//! Drains the same queue load through five failure shapes — healthy
//! baseline, one hard-down primary, a flapping primary, a full
//! preference-tier outage, and probabilistic greylisting — and records
//! sustained throughput (messages/second of simulated queue drained,
//! wall clock) plus the typed bounce/retry accounting for each. Two
//! invariants are asserted on every run, not just measured:
//!
//! - **fail-over completeness**: with any single MX down (and with the
//!   whole primary tier down) every message still delivers via a
//!   surviving rung, with bounded retry amplification;
//! - **determinism**: the per-recipient ledger digest is byte-identical
//!   at 1 and 8 worker threads.
//!
//! Results land in `BENCH_delivery.json` at the repo root.
//!
//! ```sh
//! cargo run --release -p mtasts-bench --bin exp_delivery
//! ```

use netbase::SimInstant;
use sender::scenario::{build, Degradation, Scenario, ScenarioSpec};
use sender::{ledger_digest, DeliveryQueue, FastTransport, QueueConfig, QueueStats};
use serde::Serialize;
use std::time::Instant;

fn spec(seed: u64, scale: f64, degradation: Degradation) -> ScenarioSpec {
    ScenarioSpec {
        seed,
        domains: ((64.0 * scale) as usize).max(2),
        messages_per_domain: ((256.0 * scale) as usize).max(4),
        degradation,
        epoch: SimInstant::from_unix_secs(1_717_200_000),
    }
}

fn queue_cfg(seed: u64, threads: usize) -> QueueConfig {
    QueueConfig {
        seed,
        threads,
        ..QueueConfig::default()
    }
}

#[derive(Serialize)]
struct ScenarioReport {
    scenario: &'static str,
    messages: usize,
    wall_secs: f64,
    msgs_per_sec: f64,
    delivered_pct: f64,
    digest: String,
    digest_match_across_threads: bool,
    stats: QueueStats,
}

#[derive(Serialize)]
struct BenchReport {
    experiment: &'static str,
    seed: u64,
    scale: f64,
    threads: usize,
    scenarios: Vec<ScenarioReport>,
    notes: &'static str,
}

fn run_one(seed: u64, threads: usize, s: &Scenario) -> (ScenarioReport, QueueStats) {
    let key = s.spec.degradation.key();
    let transport = FastTransport::new(&s.world);

    // Timed run at the requested thread count.
    let start = Instant::now();
    let outcome = DeliveryQueue::new(queue_cfg(seed, threads)).run(&transport, &s.messages);
    let wall_secs = start.elapsed().as_secs_f64();
    let digest = ledger_digest(&outcome.records);

    // Determinism witness: 1 and 8 workers must produce the same ledger.
    let single = DeliveryQueue::new(queue_cfg(seed, 1)).run(&transport, &s.messages);
    let eight = DeliveryQueue::new(queue_cfg(seed, 8)).run(&transport, &s.messages);
    let digest_match =
        ledger_digest(&single.records) == digest && ledger_digest(&eight.records) == digest;
    assert!(
        digest_match,
        "{key}: ledger digest diverges across thread counts"
    );

    let delivered_pct = 100.0 * outcome.stats.delivered as f64 / s.messages.len() as f64;
    let report = ScenarioReport {
        scenario: key,
        messages: s.messages.len(),
        wall_secs,
        msgs_per_sec: s.messages.len() as f64 / wall_secs.max(1e-9),
        delivered_pct,
        digest,
        digest_match_across_threads: digest_match,
        stats: outcome.stats,
    };
    (report, outcome.stats)
}

fn main() {
    let config = mtasts_bench::config_from_env();
    let threads = scanner::default_scan_threads();
    eprintln!("# threads: {threads}");

    let matrix = [
        Degradation::None,
        Degradation::OneMxDown,
        Degradation::FlappingMx {
            down_secs: 600,
            up_secs: 600,
            cycles: 4,
        },
        Degradation::TierOutage,
        Degradation::Greylist { rate: 0.3 },
    ];

    let mut scenarios = Vec::new();
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>9} {:>9} {:>9} {:>8}",
        "scenario", "msgs", "wall", "msgs/sec", "deliv%", "failover", "requeue", "bounced"
    );
    for degradation in matrix {
        let s = build(spec(config.seed, config.scale, degradation));
        let (report, stats) = run_one(config.seed, threads, &s);
        let n = s.messages.len() as u64;

        // Acceptance asserts, per scenario class.
        match degradation {
            Degradation::None | Degradation::OneMxDown | Degradation::TierOutage => {
                assert_eq!(
                    stats.delivered,
                    n,
                    "{}: reachability degradation must not lose mail",
                    degradation.key()
                );
            }
            Degradation::FlappingMx { .. } => {
                assert_eq!(
                    stats.delivered, n,
                    "flapping primary must drain via the healthy peers"
                );
            }
            Degradation::Greylist { .. } => {
                // Probabilistic deferrals may exhaust the retry cap for a
                // small tail; everything else must land, and every bounce
                // must be the typed exhausted class.
                assert_eq!(stats.bounced_permanent, 0, "greylist never 5xx-bounces");
                assert_eq!(stats.delivered + stats.bounced_exhausted, n);
            }
        }
        // Bounded amplification: never more attempts than the retry cap
        // allows, per message.
        let cap = QueueConfig::default().retry.max_attempts as u64;
        assert!(
            stats.attempts <= n * cap,
            "{}: retry amplification exceeds the per-message cap",
            degradation.key()
        );

        println!(
            "{:<12} {:>8} {:>9.3}s {:>12.0} {:>8.1}% {:>9} {:>9} {:>8}",
            report.scenario,
            report.messages,
            report.wall_secs,
            report.msgs_per_sec,
            report.delivered_pct,
            stats.failovers,
            stats.requeues,
            stats.bounced_permanent + stats.bounced_exhausted + stats.bounced_unroutable,
        );
        scenarios.push(report);
    }

    let out = BenchReport {
        experiment: "exp_delivery",
        seed: config.seed,
        scale: config.scale,
        threads,
        scenarios,
        notes: "fast-path queue over the simulated world; ledgers asserted \
                byte-identical at 1 and 8 workers before timing is reported",
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_delivery.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("bench json"),
    )
    .expect("write BENCH_delivery.json");
    eprintln!("# wrote BENCH_delivery.json");
}
