//! Outbound delivery pipeline under the degraded-MX chaos matrix
//! (EXPERIMENTS.md, DESIGN.md "Delivery pipeline" / "Policy enforcement
//! in the queue").
//!
//! Drains the same queue load through five failure shapes — healthy
//! baseline, one hard-down primary, a flapping primary, a full
//! preference-tier outage, and probabilistic greylisting — and records
//! sustained throughput (messages/second of simulated queue drained,
//! wall clock) plus the typed bounce/retry accounting for each. On top
//! of that, an **attack matrix** runs the window-based adversaries
//! (STARTTLS stripping, forged-MX redirection, policy-host outage)
//! against domains publishing MTA-STS in `enforce`, `testing` and
//! `none` modes with queue-side enforcement switched on, and *asserts*
//! the containment the protocol promises:
//!
//! - **fail-over completeness**: with any single MX down (and with the
//!   whole primary tier down) every message still delivers via a
//!   surviving rung, with bounded retry amplification;
//! - **enforce-mode containment**: zero intercepted deliveries for
//!   covered domains under stripping and redirection — attacked
//!   attempts are refused and recover via post-window retries;
//! - **testing-mode accounting**: mail still flows during the attack,
//!   but every downgraded session lands in the RFC 8460 TLSRPT ledger;
//! - **stale-cache resilience**: a policy-host outage with a warm TOFU
//!   cache causes zero policy bounces (RFC 8461 §3.3);
//! - **determinism**: the per-recipient ledger digest is byte-identical
//!   at 1 and 8 worker threads, enforcement included.
//!
//! Results land in `BENCH_delivery.json` at the repo root.
//!
//! ```sh
//! cargo run --release -p mtasts-bench --bin exp_delivery
//! ```

use mtasts::Mode;
use netbase::SimInstant;
use sender::scenario::{build, Degradation, Scenario, ScenarioSpec, StsDeployment};
use sender::{
    ledger_digest, DeliveryQueue, EnforcementConfig, FastTransport, QueueConfig, QueueOutcome,
    QueueStats,
};
use serde::Serialize;
use std::time::Instant;

fn spec(seed: u64, scale: f64, degradation: Degradation) -> ScenarioSpec {
    ScenarioSpec {
        seed,
        domains: ((64.0 * scale) as usize).max(2),
        messages_per_domain: ((256.0 * scale) as usize).max(4),
        degradation,
        sts: StsDeployment::None,
        epoch: SimInstant::from_unix_secs(1_717_200_000),
    }
}

fn queue_cfg(seed: u64, threads: usize, enforce: bool) -> QueueConfig {
    QueueConfig {
        seed,
        threads,
        enforcement: enforce.then(EnforcementConfig::default),
        ..QueueConfig::default()
    }
}

#[derive(Serialize)]
struct ScenarioReport {
    scenario: String,
    messages: usize,
    wall_secs: f64,
    msgs_per_sec: f64,
    delivered_pct: f64,
    digest: String,
    digest_match_across_threads: bool,
    stats: QueueStats,
}

#[derive(Serialize)]
struct BenchReport {
    experiment: &'static str,
    seed: u64,
    scale: f64,
    threads: usize,
    scenarios: Vec<ScenarioReport>,
    notes: &'static str,
}

/// Scenario key: degradation, suffixed with the STS deployment shape
/// when one is published (`starttls_strip_enforce`, …).
fn scenario_key(s: &Scenario) -> String {
    match s.spec.sts {
        StsDeployment::None => s.spec.degradation.key().to_string(),
        StsDeployment::Published { .. } => {
            format!("{}_{}", s.spec.degradation.key(), s.spec.sts.key())
        }
    }
}

fn run_one(
    seed: u64,
    threads: usize,
    s: &Scenario,
    enforce: bool,
) -> (ScenarioReport, QueueOutcome) {
    let key = scenario_key(s);
    let transport = FastTransport::new(&s.world);

    // Timed run at the requested thread count.
    let start = Instant::now();
    let outcome =
        DeliveryQueue::new(queue_cfg(seed, threads, enforce)).run(&transport, &s.messages);
    let wall_secs = start.elapsed().as_secs_f64();
    let digest = ledger_digest(&outcome.records);

    // Determinism witness: 1 and 8 workers must produce the same ledger
    // (with enforcement on, this also pins the per-wave policy
    // resolution order and the TOFU cache evolution).
    let single = DeliveryQueue::new(queue_cfg(seed, 1, enforce)).run(&transport, &s.messages);
    let eight = DeliveryQueue::new(queue_cfg(seed, 8, enforce)).run(&transport, &s.messages);
    let digest_match =
        ledger_digest(&single.records) == digest && ledger_digest(&eight.records) == digest;
    assert!(
        digest_match,
        "{key}: ledger digest diverges across thread counts"
    );

    let delivered_pct = 100.0 * outcome.stats.delivered as f64 / s.messages.len() as f64;
    let report = ScenarioReport {
        scenario: key,
        messages: s.messages.len(),
        wall_secs,
        msgs_per_sec: s.messages.len() as f64 / wall_secs.max(1e-9),
        delivered_pct,
        digest,
        digest_match_across_threads: digest_match,
        stats: outcome.stats,
    };
    (report, outcome)
}

/// Total TLSRPT failure sessions across every recipient domain.
fn tlsrpt_failures(outcome: &QueueOutcome) -> u64 {
    let day = netbase::SimDate::ymd(2024, 6, 1);
    outcome
        .tlsrpt
        .build("bench", "tlsrpt@sender.test", day)
        .policies
        .iter()
        .map(|p| p.total_failure)
        .sum()
}

fn main() {
    let config = mtasts_bench::config_from_env();
    let threads = scanner::default_scan_threads();
    eprintln!("# threads: {threads}");

    let baseline_matrix = [
        Degradation::None,
        Degradation::OneMxDown,
        Degradation::FlappingMx {
            down_secs: 600,
            up_secs: 600,
            cycles: 4,
        },
        Degradation::TierOutage,
        Degradation::Greylist { rate: 0.3 },
    ];

    let mut scenarios = Vec::new();
    println!(
        "{:<28} {:>8} {:>10} {:>12} {:>9} {:>9} {:>9} {:>8}",
        "scenario", "msgs", "wall", "msgs/sec", "deliv%", "failover", "requeue", "bounced"
    );
    for degradation in baseline_matrix {
        let s = build(spec(config.seed, config.scale, degradation));
        let (report, outcome) = run_one(config.seed, threads, &s, false);
        let stats = &outcome.stats;
        let n = s.messages.len() as u64;

        // Acceptance asserts, per scenario class.
        match degradation {
            Degradation::None | Degradation::OneMxDown | Degradation::TierOutage => {
                assert_eq!(
                    stats.delivered,
                    n,
                    "{}: reachability degradation must not lose mail",
                    degradation.key()
                );
            }
            Degradation::FlappingMx { .. } => {
                assert_eq!(
                    stats.delivered, n,
                    "flapping primary must drain via the healthy peers"
                );
            }
            Degradation::Greylist { .. } => {
                // Probabilistic deferrals may exhaust the retry cap for a
                // small tail; everything else must land, and every bounce
                // must be the typed exhausted class.
                assert_eq!(stats.bounced_permanent, 0, "greylist never 5xx-bounces");
                assert_eq!(stats.delivered + stats.bounced_exhausted, n);
            }
            _ => unreachable!("attack degradations run in the attack matrix"),
        }
        finish_row(&mut scenarios, report, stats, n);
    }

    // ---- Attack matrix: window adversaries vs published policy modes.
    //
    // Windows open at +300 s and last 600 s: early waves resolve every
    // domain's policy first (warm covered TOFU cache), the window bites
    // mid-drain, and the retry ladder (+60/+300/+1260 s) outlasts it, so
    // enforce-mode refusals recover instead of bouncing.
    let strip = Degradation::StartTlsStrip {
        delay_secs: 300,
        duration_secs: 600,
    };
    let redirect = Degradation::MxRedirect {
        delay_secs: 300,
        duration_secs: 600,
    };
    // The outage window opens only after every domain's first message has
    // been admitted (first-touch resolution warms the cache), scaling
    // with the domain count.
    let base = spec(config.seed, config.scale, Degradation::None);
    let outage = Degradation::PolicyHostOutage {
        delay_secs: base.domains as i64 * QueueConfig::default().admission_spacing_secs + 60,
        duration_secs: 3_600,
    };

    let attack_matrix = [
        (strip, Some(Mode::Enforce)),
        (strip, Some(Mode::Testing)),
        (strip, Some(Mode::None)),
        (redirect, Some(Mode::Enforce)),
        (redirect, Some(Mode::Testing)),
        (redirect, None),
        (outage, Some(Mode::Enforce)),
    ];

    for (degradation, mode) in attack_matrix {
        let mut sp = spec(config.seed, config.scale, degradation);
        if let Some(mode) = mode {
            sp = sp.with_sts(mode);
        }
        let s = build(sp);
        let (report, outcome) = run_one(config.seed, threads, &s, true);
        let stats = &outcome.stats;
        let n = s.messages.len() as u64;
        let key = scenario_key(&s);

        match (degradation, mode) {
            // Containment: covered enforce-mode domains lose *nothing* to
            // the attacker — no interception, no policy bounce, and every
            // message eventually lands once the window closes.
            (Degradation::StartTlsStrip { .. }, Some(Mode::Enforce))
            | (Degradation::MxRedirect { .. }, Some(Mode::Enforce)) => {
                assert_eq!(
                    stats.delivered, n,
                    "{key}: enforce must recover post-window"
                );
                assert_eq!(
                    stats.intercepted, 0,
                    "{key}: enforce leaked to the attacker"
                );
                assert_eq!(
                    stats.bounced_policy, 0,
                    "{key}: window shorter than retry span"
                );
            }
            // Testing mode keeps delivering through the attack (that is
            // the point of the mode) but every downgraded session must be
            // visible: soft-fail accounting plus TLSRPT failure sessions.
            (_, Some(Mode::Testing)) => {
                assert_eq!(stats.delivered, n, "{key}: testing never blocks mail");
                assert!(
                    stats.intercepted > 0,
                    "{key}: window saw no attacked delivery"
                );
                assert!(stats.soft_fails > 0, "{key}: soft failures unaccounted");
                assert!(
                    tlsrpt_failures(&outcome) > 0,
                    "{key}: downgrades missing from TLSRPT"
                );
            }
            // Mode `none` / no policy: the attack succeeds silently —
            // the undefended baseline the enforce rows are measured
            // against.
            (Degradation::StartTlsStrip { .. }, Some(Mode::None))
            | (Degradation::MxRedirect { .. }, None) => {
                assert_eq!(stats.delivered, n, "{key}: undefended mail still flows");
                assert!(stats.intercepted > 0, "{key}: attack window had no effect");
            }
            // Policy-host outage with a warm cache: RFC 8461 §3.3 keeps
            // enforcement alive on cached policies — zero policy bounces
            // and nothing for an attacker to exploit.
            (Degradation::PolicyHostOutage { .. }, _) => {
                assert_eq!(stats.delivered, n, "{key}: outage must not lose mail");
                assert_eq!(stats.bounced_policy, 0, "{key}: stale fallback failed");
                assert_eq!(stats.intercepted, 0, "{key}");
            }
            _ => unreachable!("unexpected attack-matrix row {key}"),
        }
        finish_row(&mut scenarios, report, stats, n);
    }

    let out = BenchReport {
        experiment: "exp_delivery",
        seed: config.seed,
        scale: config.scale,
        threads,
        scenarios,
        notes: "fast-path queue over the simulated world; ledgers asserted \
                byte-identical at 1 and 8 workers before timing is reported; \
                attack rows run with queue-side MTA-STS enforcement on and \
                assert containment (see module docs)",
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_delivery.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("bench json"),
    )
    .expect("write BENCH_delivery.json");
    eprintln!("# wrote BENCH_delivery.json");
}

/// Shared per-row epilogue: bounded-amplification assert + table line.
fn finish_row(
    scenarios: &mut Vec<ScenarioReport>,
    report: ScenarioReport,
    stats: &QueueStats,
    n: u64,
) {
    let cap = QueueConfig::default().retry.max_attempts as u64;
    assert!(
        stats.attempts <= n * cap,
        "{}: retry amplification exceeds the per-message cap",
        report.scenario
    );
    println!(
        "{:<28} {:>8} {:>9.3}s {:>12.0} {:>8.1}% {:>9} {:>9} {:>8}",
        report.scenario,
        report.messages,
        report.wall_secs,
        report.msgs_per_sec,
        report.delivered_pct,
        stats.failovers,
        stats.requeues,
        stats.bounced_permanent
            + stats.bounced_exhausted
            + stats.bounced_unroutable
            + stats.bounced_policy,
    );
    scenarios.push(report);
}
