//! Table 1: dataset overview — domains with MX records and the share
//! publishing MTA-STS records, per TLD, at the latest snapshot.
//!
//! Paper values (2024-09-29): .com 73,939,004 / 53,800 (0.07%);
//! .net 6,248,969 / 6,183 (0.09%); .org 5,781,423 / 7,355 (0.13%);
//! .se 822,449 / 692 (0.08%).

use report::Table;
use scanner::analysis::table1;

fn main() {
    let (study, run) = mtasts_bench::weekly_only();
    let rows = table1(&run, study.eco.config.scale);
    let mut table = Table::new(&["TLD", "MX domains (scaled)", "with MTA-STS", "percent"])
        .with_title("Table 1: overview of the dataset (latest snapshot)");
    for r in &rows {
        table.row(vec![
            r.tld.to_string(),
            r.mx_domains.to_string(),
            r.mtasts_domains.to_string(),
            mtasts_bench::pct(r.percent),
        ]);
    }
    println!("{}", table.render());
    println!("paper: .com 0.07%  .net 0.09%  .org 0.13%  .se 0.08%");
}
