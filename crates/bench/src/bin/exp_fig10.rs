//! Figure 10: inconsistency among domains outsourcing both policy hosting
//! and email, split by whether one provider manages both. Paper latest:
//! 1 of 7,492 same-provider vs 640 of 18,922 (3.4%) different-provider.

use report::Table;
use scanner::analysis::fig10_series;

fn main() {
    let (_, run) = mtasts_bench::full_scans_only();
    let series = fig10_series(&run);
    let mut table = Table::new(&[
        "date",
        "same-prov",
        "inconsistent",
        "%",
        "diff-prov",
        "inconsistent",
        "%",
    ])
    .with_title("Figure 10: both services outsourced");
    for p in &series {
        table.row(vec![
            p.date.to_string(),
            p.same_total.to_string(),
            p.same_inconsistent.to_string(),
            mtasts_bench::pct(100.0 * p.same_inconsistent as f64 / p.same_total.max(1) as f64),
            p.diff_total.to_string(),
            p.diff_inconsistent.to_string(),
            mtasts_bench::pct(100.0 * p.diff_inconsistent as f64 / p.diff_total.max(1) as f64),
        ]);
    }
    println!("{}", table.render());
    println!("paper latest: same-provider 1 domain; different providers 640 (3.4%)");
}
