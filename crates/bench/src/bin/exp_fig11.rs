//! Figure 11: survey demographics — accounts managed per respondent,
//! with the MTA-STS deployment overlay. Paper: 92 respondents, from 22
//! managing fewer than 10 accounts to 36 managing more than 500.

use report::Table;
use survey::{compute, synthesize};

fn main() {
    let stats = compute(&synthesize(42));
    let mut table = Table::new(&["accounts", "respondents", "deployed MTA-STS"])
        .with_title("Figure 11: respondents by managed email accounts");
    for (bucket, total, deployed) in &stats.accounts_histogram {
        table.row(vec![
            bucket.label().to_string(),
            total.to_string(),
            deployed.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper: 92 respondents answered; 22 under 10 accounts, 36 over 500");
}
