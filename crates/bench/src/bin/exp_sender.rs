//! §6.2: sender-side validation statistics from the deliverability-test
//! platform. Paper: 94.6% TLS, 93.2% opportunistic, 1.3% PKIX-always,
//! 19.6% MTA-STS validators, 29.8% DANE, 8.5% both, 2.6% preferring
//! MTA-STS over DANE (the milter bug); top-10 operators: 60.7% of
//! interactions.

use report::Table;
use sender::profile::calib;
use sender::{analyze, Platform, SenderPopulation};

fn main() {
    let platform = Platform::new(netbase::SimDate::ymd(2024, 6, 1));
    let pop = SenderPopulation::generate(42, calib::SENDER_DOMAINS);
    eprintln!("# running {} senders x 5 receiver cases...", pop.len());
    let records = platform.run_all(&pop.profiles);
    let stats = analyze(&records);

    let mut table = Table::new(&["metric", "measured", "paper"])
        .with_title("Sender-side MTA-STS/DANE validation (§6.2)");
    let n = stats.senders as f64;
    let row = |t: &mut Table, name: &str, count: u64, paper: &str| {
        t.row(vec![
            name.to_string(),
            format!("{count} ({:.1}%)", 100.0 * count as f64 / n),
            paper.to_string(),
        ]);
    };
    row(&mut table, "sender domains", stats.senders, "2,394");
    row(
        &mut table,
        "TLS-capable",
        stats.tls_senders,
        "2,264 (94.6%)",
    );
    row(
        &mut table,
        "opportunistic TLS",
        stats.opportunistic,
        "2,232 (93.2%)",
    );
    row(&mut table, "PKIX always", stats.pkix_always, "31 (1.3%)");
    row(
        &mut table,
        "validate MTA-STS",
        stats.mtasts_validators,
        "469 (19.6%)",
    );
    row(
        &mut table,
        "validate DANE",
        stats.dane_validators,
        "714 (29.8%)",
    );
    row(
        &mut table,
        "validate both",
        stats.both_validators,
        "203 (8.5%)",
    );
    row(
        &mut table,
        "prefer MTA-STS over DANE",
        stats.prefer_mtasts,
        "62 (2.6%)",
    );
    println!("{}", table.render());
    println!(
        "top-10 operator share of interactions: {:.1}% (paper: 60.7%)",
        100.0 * stats.top10_share()
    );
}
