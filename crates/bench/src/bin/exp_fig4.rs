//! Figure 4: % of MTA-STS domains with errors per category over the
//! monthly scans. Paper latest: 29.6% misconfigured overall; policy
//! retrieval dominates; the Porkbun wave lifts the tail from Aug 2024.

use report::{AsciiChart, Table};
use scanner::analysis::fig4_series;
use scanner::taxonomy::MisconfigCategory;

fn main() {
    let (_, run) = mtasts_bench::full_scans_only();
    let series = fig4_series(&run);
    let mut chart = AsciiChart::new(
        "Figure 4: misconfigured MTA-STS domains by category (% of domains)",
        12,
    );
    for cat in MisconfigCategory::ALL {
        chart.series(
            cat.label(),
            series.iter().map(|p| p.category_pct[&cat]).collect(),
        );
    }
    println!("{}", chart.render());
    let mut table =
        Table::new(&["date", "total", "misconfigured", "%"]).with_title("per-scan totals");
    for p in &series {
        table.row(vec![
            p.date.to_string(),
            p.total.to_string(),
            p.misconfigured.to_string(),
            mtasts_bench::pct(100.0 * p.misconfigured as f64 / p.total.max(1) as f64),
        ]);
    }
    println!("{}", table.render());
    println!("paper latest: 20,144 of 68,030 (29.6%) misconfigured");
}
