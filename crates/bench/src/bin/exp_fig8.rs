//! Figure 8: mx-pattern mismatch classes over time. Paper latest:
//! complete-domain 1,023, 3LD+ 730 (597 with a stray mta-sts label),
//! typos 63; 406 enforce-mode domains facing delivery failure; the
//! lucidgrow incident spikes the Jan 23 2024 scan.

use report::Table;
use scanner::analysis::fig8_series;

fn main() {
    let (_, run) = mtasts_bench::full_scans_only();
    let series = fig8_series(&run);
    let mut table = Table::new(&[
        "date",
        "total",
        "Domain",
        "3LD+",
        "Typos",
        "TLD",
        "stray label",
        "enforce fail",
    ])
    .with_title("Figure 8: mx pattern mismatch classes (domain counts)");
    for p in &series {
        let get = |k: &str| p.kind_counts.get(k).copied().unwrap_or(0).to_string();
        table.row(vec![
            p.date.to_string(),
            p.total.to_string(),
            get("Domain"),
            get("3LD+"),
            get("Typos"),
            get("TLD"),
            p.stray_mta_sts_label.to_string(),
            p.enforce_failures.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper latest: Domain 1,023; 3LD+ 730 (597 stray); Typos 63; enforce 406");
    println!("(watch the 2024-01-23 row for the lucidgrow spike)");
}
