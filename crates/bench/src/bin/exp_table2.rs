//! Table 2: the top policy-hosting providers — delegated-domain counts,
//! CNAME patterns, and the opt-out behaviour audit (§5).
//!
//! The audit exercises each provider's documented deprovisioning: three
//! return NXDOMAIN, four keep re-issuing certificates, DMARCReport
//! empties the policy file, PowerDMARC/Mailhardener flip the mode to
//! `none` — none follow RFC 8461 §8.3.

use ecosystem::providers::{policy_providers, PolicyUpdateOnOptOut};
use report::Table;
use scanner::analysis::table2_rows;

fn main() {
    let (_, run) = mtasts_bench::full_scans_only();
    let latest = run.latest();
    let rows = table2_rows(latest, 8);
    let mut table = Table::new(&["provider (eSLD)", "# domains", "example CNAME target"])
        .with_title("Table 2: top policy hosting providers (measured)");
    for r in &rows {
        table.row(vec![
            r.provider.to_string(),
            r.domains.to_string(),
            r.example_target.to_string(),
        ]);
    }
    println!("{}", table.render());

    let mut audit = Table::new(&[
        "provider",
        "email hosting",
        "NXDOMAIN on opt-out",
        "reissues cert",
        "policy update",
    ])
    .with_title("Opt-out behaviour (provider audit, Table 2 right-hand columns)");
    for p in policy_providers() {
        audit.row(vec![
            p.key.to_string(),
            if p.email_hosting { "yes" } else { "no" }.to_string(),
            if p.opt_out.returns_nxdomain {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            if p.opt_out.reissues_cert { "yes" } else { "no" }.to_string(),
            match p.opt_out.policy_update {
                PolicyUpdateOnOptOut::Unchanged => "unchanged (stale)",
                PolicyUpdateOnOptOut::EmptiedFile => "emptied file",
                PolicyUpdateOnOptOut::ModeToNone => "mode -> none",
            }
            .to_string(),
        ]);
    }
    println!("{}", audit.render());
    println!("paper: Tutanota 7,614; DMARCReport 7,293; PowerDMARC 3,753; EasyDMARC 2,222;");
    println!("       Mailhardener 1,558; URIports 1,100; Sendmarc 805; OnDMARC 451");
}
