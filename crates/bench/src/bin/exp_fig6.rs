//! Figure 6: PKIX-invalid MX certificates by kind and managing entity.
//! Paper latest: 1,046 (4.4%) self-managed vs 397 (1%) third-party; CN
//! mismatch dominates; 270 self-hosted domains fixed it by the last scan.

use report::Table;
use scanner::analysis::fig6_series;
use scanner::classify::EntityClass;

fn main() {
    let (_, run) = mtasts_bench::full_scans_only();
    for class in [EntityClass::SelfManaged, EntityClass::ThirdParty] {
        let series = fig6_series(&run, class);
        let mut table = Table::new(&[
            "date",
            "domains",
            "invalid",
            "%",
            "CN mism.",
            "Self-signed",
            "Expired",
        ])
        .with_title(&format!("Figure 6 ({} MX hosts)", class.label()));
        for p in &series {
            table.row(vec![
                p.date.to_string(),
                p.class_total.to_string(),
                p.invalid.to_string(),
                mtasts_bench::pct(100.0 * p.invalid as f64 / p.class_total.max(1) as f64),
                mtasts_bench::pct(p.kind_pct[&"CN mismatch"]),
                mtasts_bench::pct(p.kind_pct[&"Self-signed"]),
                mtasts_bench::pct(p.kind_pct[&"Expired"]),
            ]);
        }
        println!("{}", table.render());
    }
    println!("paper latest: self-managed 4.4%, third-party 1%; 270 CN fixes at the end");
}
