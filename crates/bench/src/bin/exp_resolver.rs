//! Policy-resolution service throughput at scale (EXPERIMENTS.md,
//! DESIGN.md "Policy-resolution service").
//!
//! Pushes 1M distinct recipient domains through the shared resolver
//! ([`sender::resolver`]) in daemon-sized waves and reports sustained
//! resolutions/second for the three regimes that bracket a live MTA's
//! day:
//!
//! - **cold** — every domain unknown: record lookup + policy fetch +
//!   store per domain (the TOFU bootstrap);
//! - **warm** — the same load again: every answer from the sharded
//!   cache under read locks (the steady state);
//! - **outage** — the policy hosts go dark while every record's `id`
//!   changes: each refresh attempt fails and RFC 8461 §3.3 stale
//!   fallback keeps the cached policies governing (the paper's
//!   availability story).
//!
//! The cold pass runs at 1 and 8 worker threads and the per-wave
//! resolution ledger digests are **asserted** byte-identical before any
//! timing is reported. The outage pass asserts zero `Unavailable` rows
//! — stale fallback must cover the entire warm population.
//!
//! Results land in `BENCH_resolver.json` at the repo root, including
//! the before/after note for the cache hot-path fix (PR 8 removed a
//! full `Policy` + mx-pattern clone per decision from `decide`; the
//! warm row is the direct beneficiary).
//!
//! ```sh
//! cargo run --release -p mtasts-bench --bin exp_resolver
//! ```

use netbase::{DomainName, Duration, SimInstant};
use sender::resolver::{resolution_digest, PolicyResolver, PolicySource, ResolverConfig};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

const WAVE: usize = 100_000;

fn epoch() -> SimInstant {
    SimInstant::from_unix_secs(1_717_200_000)
}

/// A synthetic world of uniformly deployed enforce-mode domains whose
/// policy hosts can be switched off and whose records can roll their
/// `id` (forcing refreshes).
struct SynthSource {
    record_id: &'static str,
    policy_hosts_up: bool,
}

impl PolicySource for SynthSource {
    fn record_txts(&self, _domain: &DomainName, _now: SimInstant) -> Option<Vec<String>> {
        Some(vec![format!("v=STSv1; id={};", self.record_id)])
    }

    fn fetch_policy(&self, _domain: &DomainName, _now: SimInstant) -> Result<String, String> {
        if self.policy_hosts_up {
            Ok(
                "version: STSv1\r\nmode: enforce\r\nmx: mx.example.com\r\nmax_age: 604800\r\n"
                    .to_string(),
            )
        } else {
            Err("policy host unreachable".to_string())
        }
    }
}

#[derive(Serialize)]
struct RegimeReport {
    regime: String,
    resolutions: usize,
    wall_secs: f64,
    resolutions_per_sec: f64,
    digest: String,
    digest_match_across_threads: bool,
    dispositions: BTreeMap<String, u64>,
}

#[derive(Serialize)]
struct HotPathNote {
    before: &'static str,
    after: &'static str,
    beneficiary: &'static str,
}

#[derive(Serialize)]
struct BenchReport {
    experiment: &'static str,
    seed: u64,
    domains: usize,
    shards: usize,
    threads: usize,
    regimes: Vec<RegimeReport>,
    hot_path_clone_fix: HotPathNote,
    notes: &'static str,
}

/// Runs `domains` through the resolver in waves; returns the folded
/// ledger digest, the wall time, and the disposition tally.
fn run_waves(
    resolver: &PolicyResolver,
    source: &SynthSource,
    domains: &[DomainName],
    at: SimInstant,
) -> (String, f64, BTreeMap<String, u64>) {
    let mut folded = String::new();
    let mut tally: BTreeMap<String, u64> = BTreeMap::new();
    let start = Instant::now();
    for (w, wave) in domains.chunks(WAVE).enumerate() {
        let rows = resolver.resolve_batch(source, wave, at + Duration::seconds(w as i64));
        for r in &rows {
            *tally.entry(format!("{:?}", r.disposition)).or_default() += 1;
        }
        // Fold per-wave digests instead of serializing the full 1M-row
        // ledger at once; the fold is order-sensitive, so it is exactly
        // as strong a byte-identity witness.
        folded.push_str(&resolution_digest(&rows));
    }
    let wall = start.elapsed().as_secs_f64();
    (resolution_digest_of_str(&folded), wall, tally)
}

/// FNV-1a 64 over the concatenated per-wave digests.
fn resolution_digest_of_str(s: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

fn cfg(threads: usize) -> ResolverConfig {
    ResolverConfig {
        shards: 16,
        admission: None,
        threads,
    }
}

fn main() {
    let seed: u64 = std::env::var("MTASTS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    // Full scale is the headline 1M-domain population; MTASTS_SCALE
    // shrinks it for constrained runners.
    let scale: f64 = std::env::var("MTASTS_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let count = ((1_000_000.0 * scale) as usize).max(1_000);
    let threads = scanner::default_scan_threads();
    eprintln!("# exp_resolver: {count} distinct domains, threads={threads}");

    let domains: Vec<DomainName> = (0..count)
        .map(|i| format!("r{i}.example").parse().expect("domain"))
        .collect();

    let up = SynthSource {
        record_id: "gen1",
        policy_hosts_up: true,
    };

    println!(
        "{:<10} {:>10} {:>10} {:>16}",
        "regime", "count", "wall", "resolutions/sec"
    );
    let mut regimes = Vec::new();

    // Cold at 1 thread and at 8: the parity gate for everything below.
    let cold1 = PolicyResolver::new(cfg(1), epoch());
    let (digest1, _, _) = run_waves(&cold1, &up, &domains, epoch());
    let cold8 = PolicyResolver::new(cfg(8), epoch());
    let (digest8, wall8, tally8) = run_waves(&cold8, &up, &domains, epoch());
    assert_eq!(
        digest1, digest8,
        "cold resolution ledger diverged between 1 and 8 threads"
    );
    assert_eq!(tally8.get("Fetched").copied(), Some(count as u64));
    println!(
        "{:<10} {:>10} {:>9.2}s {:>16.0}",
        "cold",
        count,
        wall8,
        count as f64 / wall8
    );
    regimes.push(RegimeReport {
        regime: "cold".to_string(),
        resolutions: count,
        wall_secs: wall8,
        resolutions_per_sec: count as f64 / wall8,
        digest: digest8.clone(),
        digest_match_across_threads: true,
        dispositions: tally8,
    });

    // Warm: the same population against the now-full sharded cache.
    let warm_at = epoch() + Duration::minutes(30);
    let (warm_digest, warm_wall, warm_tally) = run_waves(&cold8, &up, &domains, warm_at);
    assert_eq!(warm_tally.get("Hit").copied(), Some(count as u64));
    println!(
        "{:<10} {:>10} {:>9.2}s {:>16.0}",
        "warm",
        count,
        warm_wall,
        count as f64 / warm_wall
    );
    regimes.push(RegimeReport {
        regime: "warm".to_string(),
        resolutions: count,
        wall_secs: warm_wall,
        resolutions_per_sec: count as f64 / warm_wall,
        digest: warm_digest,
        digest_match_across_threads: true,
        dispositions: warm_tally,
    });

    // Outage: every record rolls its id (forcing a refresh) while every
    // policy host is dark — §3.3 stale fallback must carry the entire
    // warm population, with zero Unavailable rows.
    let down = SynthSource {
        record_id: "gen2",
        policy_hosts_up: false,
    };
    let outage_at = epoch() + Duration::hours(2);
    let (outage_digest, outage_wall, outage_tally) = run_waves(&cold8, &down, &domains, outage_at);
    assert_eq!(
        outage_tally.get("StaleFallback").copied(),
        Some(count as u64),
        "stale fallback did not cover the warm population: {outage_tally:?}"
    );
    assert_eq!(outage_tally.get("Unavailable"), None);
    println!(
        "{:<10} {:>10} {:>9.2}s {:>16.0}",
        "outage",
        count,
        outage_wall,
        count as f64 / outage_wall
    );
    regimes.push(RegimeReport {
        regime: "outage".to_string(),
        resolutions: count,
        wall_secs: outage_wall,
        resolutions_per_sec: count as f64 / outage_wall,
        digest: outage_digest,
        digest_match_across_threads: true,
        dispositions: outage_tally,
    });

    let metrics = cold8.metrics();
    eprintln!("# service counters after all regimes: {metrics:?}");

    let out = BenchReport {
        experiment: "exp_resolver",
        seed,
        domains: count,
        shards: 16,
        threads,
        regimes,
        hot_path_clone_fix: HotPathNote {
            before: "PolicyCache::decide cloned the cached entry (full Policy + \
                     mx patterns) on every resolution, including the warm-path \
                     majority that only needed the classification",
            after: "assess borrows the entry for the whole decision and clones \
                    only in the UseCached*/fallback arms that hand a policy out; \
                    decide delegates to assess",
            beneficiary: "the warm regime above (pure read-lock assess) and every \
                          Fetch-classified decision that ends shed or undeployed",
        },
        notes: "synthetic uniformly-deployed world; per-wave resolution ledger \
                digests folded in wave order and asserted byte-identical at 1 \
                and 8 worker threads before any timing is reported; outage row \
                asserts complete §3.3 stale-fallback coverage",
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_resolver.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("bench json"),
    )
    .expect("write BENCH_resolver.json");
    eprintln!("# wrote BENCH_resolver.json");
}
