//! Convert an `obsv::trace` JSONL capture (RUN_TRACE output) into Chrome
//! `trace_event` JSON loadable in Perfetto / `chrome://tracing`.
//!
//! ```text
//! trace_chrome run.trace.jsonl > run.trace.json
//! trace_chrome run.trace.jsonl run.trace.json
//! ```

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(input) = args.next() else {
        eprintln!("usage: trace_chrome <trace.jsonl> [out.json]");
        std::process::exit(2);
    };
    let jsonl = match std::fs::read_to_string(&input) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("trace_chrome: cannot read {input}: {err}");
            std::process::exit(2);
        }
    };
    let chrome = obsv::trace::chrome_trace(&jsonl);
    match args.next() {
        Some(out) => {
            std::fs::write(&out, chrome).expect("write chrome trace");
            eprintln!("trace_chrome: wrote {out}");
        }
        None => print!("{chrome}"),
    }
}
