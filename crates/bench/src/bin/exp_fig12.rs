//! Figure 12: TLSRPT adoption — % of MX domains with TLSRPT per TLD
//! (top), and % of MTA-STS domains that also publish TLSRPT (bottom).
//! Events: the Dec-2021 .se revocation (82 domains) and the Jun-Aug 2024
//! .net additions (1,411 domains, mostly without MTA-STS).

use ecosystem::TldId;
use report::AsciiChart;
use scanner::analysis::{fig12_mtasts_series, fig12_tld_series};

fn main() {
    let (_, run) = mtasts_bench::weekly_only();
    let top = fig12_tld_series(&run);
    let mut chart = AsciiChart::new("Figure 12 (top): % of MX domains with TLSRPT", 10);
    for tld in [TldId::Com, TldId::Net, TldId::Org, TldId::Se] {
        chart.series(&tld.to_string(), top.iter().map(|(_, m)| m[&tld]).collect());
    }
    println!("{}", chart.render());
    let bottom = fig12_mtasts_series(&run);
    let mut chart2 = AsciiChart::new(
        "Figure 12 (bottom): % of MTA-STS domains also publishing TLSRPT",
        10,
    );
    chart2.series("TLSRPT|MTA-STS", bottom.iter().map(|(_, p)| *p).collect());
    println!("{}", chart2.render());
    println!(
        "latest: {:.1}% of MTA-STS domains publish TLSRPT (paper: rising toward ~70%)",
        bottom.last().unwrap().1
    );
}
