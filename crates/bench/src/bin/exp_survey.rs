//! §7.2: every reported survey statistic, computed from the synthesized
//! 117-respondent dataset (quota synthesis reproduces the paper's
//! marginals exactly; the seed only permutes respondent order).

use report::Table;
use survey::{compute, synthesize};

fn main() {
    let stats = compute(&synthesize(42));
    let mut t =
        Table::new(&["statistic", "measured", "paper"]).with_title("Survey findings (§7.2)");
    let mut row = |name: &str, share: survey::stats::Share, paper: &str| {
        t.row(vec![
            name.to_string(),
            format!("{}/{} ({:.1}%)", share.count, share.answered, share.pct()),
            paper.to_string(),
        ]);
    };
    row("heard of MTA-STS", stats.awareness, "89/94 (94.7%)");
    row("deployed MTA-STS", stats.deployment, "50/88 (56.8%)");
    row(
        "motivation: prevent downgrade",
        stats.motivation_downgrade,
        "34/42 (80.9%)",
    );
    row(
        "adoption: customer demand",
        stats.customer_demand,
        "13/41 (31.7%)",
    );
    row("adoption: regulation", stats.regulation, "14/41 (34.1%)");
    row(
        "bottleneck: operational complexity",
        stats.bottleneck_complexity,
        "21/43 (48.8%)",
    );
    row(
        "bottleneck: DANE more secure",
        stats.bottleneck_dane_better,
        "17/43 (39.5%)",
    );
    row(
        "not deployed: uses DANE",
        stats.not_deployed_uses_dane,
        "15/33 (45.4%)",
    );
    row(
        "not deployed: too complicated",
        stats.not_deployed_too_complicated,
        "9/33 (27.2%)",
    );
    row(
        "hardest: HTTPS policy file",
        stats.difficulty_https,
        "8/41 (19.5%)",
    );
    row(
        "hardest: policy updates",
        stats.difficulty_updates,
        "11/41 (26.8%)",
    );
    row("never updated policy", stats.never_updated, "15/42 (35.7%)");
    row("updates TXT record first", stats.txt_first, "10/42 (23.8%)");
    row(
        "familiar with DANE",
        stats.dane_familiarity,
        "78/79 (98.7%)",
    );
    row("serves no TLSA record", stats.no_tlsa, "26/78 (33.3%)");
    row("DANE judged superior", stats.dane_superior, "51/70 (72.8%)");
    println!("{}", t.render());
}
