//! Scale sweep of the streaming ecosystem engine (DESIGN.md "Streaming
//! ecosystem engine", EXPERIMENTS.md `exp_scale`): wall-clock and peak
//! RSS of the weekly longitudinal series at scale ∈ {0.05, 0.1, 0.25,
//! 0.5, 1.0}, stepping toward the paper's 87M-domain zone files. The
//! 1.0 step reproduces the paper's absolute population (~68k MTA-STS
//! domains).
//!
//! Every child step runs with the flight recorder on
//! (`obsv::timeseries`) and reports its [`obsv::health::RunManifest`]
//! identity digest plus window counts, so BENCH_ecosystem.json carries
//! a verifiable fingerprint of each recorded row.
//!
//! Each step runs in a fresh child process (re-exec of this binary with
//! `MTASTS_SCALE_STEP` set) because `VmHWM` — the peak-RSS high-water
//! mark in `/proc/self/status` — is cumulative per process and would
//! otherwise carry the largest scale's footprint into every smaller
//! step's reading.
//!
//! Asserted acceptance criteria:
//!
//! - the weekly digest at scale 0.05 is identical for 1 and 8 scan
//!   threads (thread count is unobservable);
//! - streamed chunked generation digests byte-identical to monolithic
//!   at scale 0.05;
//! - `snapshot.weekly` mean self-time at scale 0.05 is ≥3× below the
//!   pre-streaming baseline of 7590.769 µs/call (BENCH_profile.json,
//!   PR 8);
//! - peak RSS stays sub-linear in scale: per step, total RSS may grow
//!   at most as fast as the domain population (a super-linear jump
//!   means an O(population × dates) regression), and the per-domain
//!   peak RSS must not increase as the fixed process floor amortizes.
//!   (Measured marginal cost is flat at ~6 kB/domain — the population
//!   itself is resident, so total RSS is inherently linear in scale and
//!   a 1.5×-per-doubling bound on the total is unsatisfiable.)
//!
//! ```sh
//! cargo run --release -p mtasts-bench --bin exp_scale
//! ```
//!
//! `MTASTS_SCALE_MAX` caps the sweep (CI uses 0.25 to stay inside its
//! timeout; the recorded EXPERIMENTS.md run uses the full 1.0).

use ecosystem::{DomainSpec, EcosystemConfig};
use scanner::longitudinal::{MxHistory, Study, WeeklyPoint};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Pre-streaming `snapshot.weekly` mean at scale 0.05 (µs/call), from
/// the PR-8 BENCH_profile.json run on the O(population) driver.
const BASELINE_WEEKLY_MEAN_US: f64 = 7590.769;

/// Required speedup over the baseline at scale 0.05.
const REQUIRED_SPEEDUP: f64 = 3.0;

/// Slack on the linear-in-scale peak-RSS ceiling (VmHWM granularity,
/// allocator noise).
const RSS_LINEAR_SLACK: f64 = 1.10;

/// Slack on the per-domain peak-RSS monotonicity check.
const RSS_PER_DOMAIN_SLACK: f64 = 1.05;

const SWEEP: [f64; 5] = [0.05, 0.1, 0.25, 0.5, 1.0];

/// One step's measurements, as serialized by the child process.
#[derive(Debug, Serialize, Deserialize)]
struct StepReport {
    scale: f64,
    threads: usize,
    domains: usize,
    generate_secs: f64,
    weekly_secs: f64,
    snapshot_weekly_calls: u64,
    snapshot_weekly_mean_us: f64,
    peak_rss_kb: u64,
    weekly_digest: String,
    chunked_parity: Option<bool>,
    /// Identity digest of the step's [`obsv::health::RunManifest`] —
    /// a pure function of seed, config, and outputs, so a re-run of the
    /// same row must reproduce it bit-for-bit.
    manifest_identity_digest: String,
    /// Flight-recorder window counts for the step (execution detail).
    sim_windows: u64,
    wall_windows: u64,
}

#[derive(Serialize)]
struct BenchReport {
    experiment: &'static str,
    seed: u64,
    baseline_snapshot_weekly_mean_us: f64,
    required_speedup: f64,
    speedup_at_smallest_scale: f64,
    digest_parity_threads_1_8: bool,
    chunked_parity: bool,
    rss_linear_slack: f64,
    rss_per_domain_slack: f64,
    steps: Vec<StepReport>,
    notes: &'static str,
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Canonical weekly digest (sorted maps, sorted history), FNV-hashed.
fn weekly_digest(points: &[WeeklyPoint], history: &MxHistory) -> String {
    let mut out = String::new();
    for p in points {
        let sorted = |m: &std::collections::HashMap<ecosystem::TldId, u64>| {
            let mut v: Vec<_> = m.iter().map(|(t, c)| (format!("{t:?}"), *c)).collect();
            v.sort();
            v
        };
        out.push_str(&format!(
            "{:?} {:?} {:?}\n",
            p.date,
            sorted(&p.mtasts_per_tld),
            sorted(&p.tlsrpt_among_mtasts_per_tld)
        ));
    }
    let mut hist: Vec<String> = history.iter().map(|(d, v)| format!("{d} {v:?}")).collect();
    hist.sort();
    for line in hist {
        out.push_str(&line);
        out.push('\n');
    }
    format!("{:016x}", fnv64(out.as_bytes()))
}

/// `VmHWM` (peak resident set, kB) of this process.
fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Streams chunked generation and digests the specs exactly like a walk
/// over the monolithic population would.
fn spec_stream_digest<'a>(specs: impl Iterator<Item = &'a DomainSpec>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in specs {
        for b in format!("{d:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Child mode: one scale step in a fresh process, JSON report on stdout.
fn run_step(seed: u64, scale: f64, threads: usize, chunk_check: bool) -> ! {
    let config = EcosystemConfig::paper(seed, scale);
    let t0 = Instant::now();
    let eco = ecosystem::Ecosystem::generate(config.clone());
    let generate_secs = t0.elapsed().as_secs_f64();
    let domains = eco.population.domains.len();

    let chunked_parity = chunk_check.then(|| {
        let mono = spec_stream_digest(eco.population.domains.iter());
        let mut streamed: u64 = 0;
        for chunk_size in [1usize, 7, 1024] {
            let chunks = ecosystem::spec::generate_chunked(&config, chunk_size);
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for chunk in chunks {
                for d in &chunk {
                    for b in format!("{d:?}").bytes() {
                        h ^= u64::from(b);
                        h = h.wrapping_mul(0x100_0000_01b3);
                    }
                }
            }
            streamed = h;
            if streamed != mono {
                break;
            }
        }
        streamed == mono
    });

    let study = Study::new(eco);
    // Flight recorder on: per-date windows accumulate alongside the
    // base collector without touching the scan path.
    obsv::timeseries::set_flight(true);
    obsv::reset();
    let t1 = Instant::now();
    let (points, history, _stats) = study.run_weekly_incremental_with_threads(threads);
    let weekly_secs = t1.elapsed().as_secs_f64();
    let collected = obsv::snapshot();

    let rows = obsv::export::profile_rows(&collected);
    let weekly_row = rows
        .iter()
        .find(|r| r.name == "snapshot.weekly")
        .expect("the weekly driver emits snapshot.weekly spans");

    let digest = weekly_digest(&points, &history);
    let mut manifest = obsv::health::RunManifest {
        experiment: "exp_scale.step".to_string(),
        seed,
        config_digest: obsv::health::fnv64(format!("{config:?}").as_bytes()),
        output_digest: obsv::health::fnv64(digest.as_bytes()),
        threads: threads as u64,
        wall_ms: (weekly_secs * 1e3) as u64,
        ..Default::default()
    };
    manifest
        .totals
        .insert("domains".to_string(), domains as u64);
    manifest
        .totals
        .insert("weekly_points".to_string(), points.len() as u64);
    manifest.capture_execution();
    // CI artifact hook: children run sequentially, so the last sweep
    // child (the largest scale) leaves the manifest that gets uploaded.
    if let Ok(path) = std::env::var("MTASTS_SCALE_MANIFEST") {
        if !path.is_empty() {
            manifest
                .write(std::path::Path::new(&path))
                .expect("write step manifest");
        }
    }
    let (sim_windows, wall_windows) = (
        manifest
            .sim_windows
            .as_ref()
            .map_or(0, |s| s.iter().count() as u64),
        manifest
            .wall_windows
            .as_ref()
            .map_or(0, |s| s.iter().count() as u64),
    );
    obsv::set_enabled(false);

    let report = StepReport {
        scale,
        threads,
        domains,
        generate_secs,
        weekly_secs,
        snapshot_weekly_calls: weekly_row.count,
        snapshot_weekly_mean_us: weekly_row.mean_ns as f64 / 1e3,
        peak_rss_kb: peak_rss_kb(),
        weekly_digest: digest,
        chunked_parity,
        manifest_identity_digest: format!("{:016x}", manifest.identity_digest()),
        sim_windows,
        wall_windows,
    };
    println!("{}", serde_json::to_string(&report).expect("step json"));
    std::process::exit(0);
}

/// Spawns a child step and parses its report.
fn spawn_step(seed: u64, scale: f64, threads: usize, chunk_check: bool) -> StepReport {
    let exe = std::env::current_exe().expect("own path");
    let out = std::process::Command::new(exe)
        .env("MTASTS_SEED", seed.to_string())
        .env("MTASTS_SCALE_STEP", scale.to_string())
        .env("MTASTS_SCALE_THREADS", threads.to_string())
        .env(
            "MTASTS_SCALE_CHUNK_CHECK",
            if chunk_check { "1" } else { "0" },
        )
        .output()
        .expect("spawn step child");
    assert!(
        out.status.success(),
        "step scale={scale} threads={threads} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 step output");
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .expect("step child prints a JSON report");
    serde_json::from_str(line).expect("step report parses")
}

fn main() {
    // Child mode: run exactly one scale step and exit.
    if let Ok(step) = std::env::var("MTASTS_SCALE_STEP") {
        let seed = std::env::var("MTASTS_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(42);
        let scale: f64 = step.parse().expect("MTASTS_SCALE_STEP is a scale");
        let threads: usize = std::env::var("MTASTS_SCALE_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8);
        let chunk_check = std::env::var("MTASTS_SCALE_CHUNK_CHECK").as_deref() == Ok("1");
        run_step(seed, scale, threads, chunk_check);
    }

    let seed: u64 = std::env::var("MTASTS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let scale_max: f64 = std::env::var("MTASTS_SCALE_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);

    // Thread-parity gate at the smallest scale: 1 vs 8 scan threads
    // must digest identically (the chunked-generation parity check
    // rides along in the 8-thread child).
    let smallest = SWEEP[0];
    eprintln!("# scale {smallest}: threads=1 (parity reference)...");
    let one_thread = spawn_step(seed, smallest, 1, false);
    eprintln!("# scale {smallest}: threads=8 (+ chunked parity)...");
    let first = spawn_step(seed, smallest, 8, true);
    let digest_parity = one_thread.weekly_digest == first.weekly_digest;
    assert!(
        digest_parity,
        "weekly digest diverges across scan threads at scale {smallest}: \
         {} (1 thread) vs {} (8 threads)",
        one_thread.weekly_digest, first.weekly_digest
    );
    let chunked_parity = first.chunked_parity == Some(true);
    assert!(
        chunked_parity,
        "chunked generation diverged from monolithic at scale {smallest}"
    );

    let speedup = BASELINE_WEEKLY_MEAN_US / first.snapshot_weekly_mean_us;
    eprintln!(
        "# snapshot.weekly at {smallest}: {:.1} µs/call ({speedup:.1}x over the \
         {BASELINE_WEEKLY_MEAN_US} µs baseline; acceptance >= {REQUIRED_SPEEDUP}x)",
        first.snapshot_weekly_mean_us
    );
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "snapshot.weekly mean {:.1} µs at scale {smallest} misses the required \
         {REQUIRED_SPEEDUP}x speedup over the {BASELINE_WEEKLY_MEAN_US} µs baseline",
        first.snapshot_weekly_mean_us
    );

    let mut steps = vec![first];
    for &scale in &SWEEP[1..] {
        if scale > scale_max + 1e-9 {
            eprintln!("# scale {scale}: skipped (MTASTS_SCALE_MAX={scale_max})");
            continue;
        }
        eprintln!("# scale {scale}: threads=8...");
        steps.push(spawn_step(seed, scale, 8, false));
    }

    // Peak-RSS growth: the resident population makes total RSS linear
    // in scale (~6 kB/domain marginal), so the gate is two-sided:
    // total growth per step must not exceed the population ratio
    // (super-linear ⇒ an O(population × dates) regression), and the
    // per-domain peak must not rise — the fixed process floor can only
    // amortize as scale grows.
    for pair in steps.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let ratio = b.domains as f64 / a.domains as f64;
        let allowed = ratio * RSS_LINEAR_SLACK;
        let growth = b.peak_rss_kb as f64 / a.peak_rss_kb as f64;
        let per_a = a.peak_rss_kb as f64 / a.domains as f64;
        let per_b = b.peak_rss_kb as f64 / b.domains as f64;
        eprintln!(
            "# rss {}kB @{} -> {}kB @{}: {growth:.2}x (allowed {allowed:.2}x), \
             {per_a:.2} -> {per_b:.2} kB/domain",
            a.peak_rss_kb, a.scale, b.peak_rss_kb, b.scale
        );
        assert!(
            growth <= allowed,
            "peak RSS grew {growth:.2}x from scale {} to {} (allowed {allowed:.2}x): \
             super-linear memory",
            a.scale,
            b.scale
        );
        assert!(
            per_b <= per_a * RSS_PER_DOMAIN_SLACK,
            "per-domain peak RSS rose from {per_a:.2} to {per_b:.2} kB/domain \
             between scale {} and {}: the fixed floor must amortize",
            a.scale,
            b.scale
        );
    }

    for s in &steps {
        eprintln!(
            "# scale {}: {} domains, generate {:.2}s, weekly {:.2}s, \
             snapshot.weekly {:.1} µs/call x{}, peak RSS {} kB, digest {}",
            s.scale,
            s.domains,
            s.generate_secs,
            s.weekly_secs,
            s.snapshot_weekly_mean_us,
            s.snapshot_weekly_calls,
            s.peak_rss_kb,
            s.weekly_digest
        );
    }

    let out = BenchReport {
        experiment: "exp_scale",
        seed,
        baseline_snapshot_weekly_mean_us: BASELINE_WEEKLY_MEAN_US,
        required_speedup: REQUIRED_SPEEDUP,
        speedup_at_smallest_scale: speedup,
        digest_parity_threads_1_8: digest_parity,
        chunked_parity,
        rss_linear_slack: RSS_LINEAR_SLACK,
        rss_per_domain_slack: RSS_PER_DOMAIN_SLACK,
        steps,
        notes: "each step runs in a fresh child process so VmHWM isolates that \
                scale's peak; weekly digests are canonical (sorted maps/history) \
                and thread-count invariant; the 1-thread step is the parity \
                reference and is not part of the sweep; every step runs with \
                the flight recorder on and reports its RunManifest identity \
                digest (seed + config + outputs, execution-independent)",
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ecosystem.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("bench json"),
    )
    .expect("write BENCH_ecosystem.json");
    eprintln!("# wrote {path}");
}
