//! Figure 9: the share of completely mismatched mx patterns explained by
//! *historical* MX records — stale policies after mail migrations.
//! Paper: rising to 644/1,023 (63%) in the latest snapshot.

use report::Table;
use scanner::analysis::fig9_series;

fn main() {
    // Needs both weekly MX history and the full scans.
    let (_, run) = mtasts_bench::full_study();
    let series = fig9_series(&run);
    let mut table = Table::new(&["date", "% of complete mismatches matching historical MX"])
        .with_title("Figure 9: outdated policies");
    for (date, pct) in &series {
        table.row(vec![date.to_string(), mtasts_bench::pct(*pct)]);
    }
    println!("{}", table.render());
    println!("paper: rising trend, 63% at the latest snapshot");
}
