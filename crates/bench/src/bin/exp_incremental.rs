//! Incremental-vs-scratch cost of the longitudinal study (EXPERIMENTS.md,
//! DESIGN.md "Incremental engine").
//!
//! The from-scratch drivers pay `O(dates × domains)`: every weekly and
//! monthly date rebuilds a world and re-scans every domain. The
//! incremental engine pays `O(changes)`: one persistent delta-built
//! world ([`ecosystem::IncrementalWorld`]) plus the change-driven rescan
//! cache ([`scanner::incremental`]), with byte-identity to the scratch
//! output asserted here on every run — the speedup is only admissible
//! because the answer is *exactly* the same.
//!
//! Results land in `BENCH_scan.json` at the repo root. Acceptance: ≥5×
//! combined wall-clock speedup at `MTASTS_SCALE=0.05` (this binary's
//! default scale; the digest assertions hold at any scale).
//!
//! ```sh
//! cargo run --release -p mtasts-bench --bin exp_incremental
//! ```

use scanner::longitudinal::{MxHistory, Study, WeeklyPoint};
use scanner::{default_scan_threads, CacheStats, Snapshot};
use serde::Serialize;
use std::time::Instant;

fn full_digest(snapshots: &[Snapshot]) -> String {
    let digest: Vec<_> = snapshots
        .iter()
        .map(|s| {
            let mut ips: Vec<_> = s
                .policy_ips
                .iter()
                .map(|(d, ip)| (d.to_string(), ip.to_string()))
                .collect();
            ips.sort();
            (s.date, &s.scans, ips)
        })
        .collect();
    serde_json::to_string(&digest).expect("snapshots serialize")
}

fn weekly_digest(weekly: &[WeeklyPoint], history: &MxHistory) -> String {
    let sorted = |m: &std::collections::HashMap<ecosystem::TldId, u64>| {
        let mut v: Vec<_> = m.iter().map(|(t, c)| (format!("{t:?}"), *c)).collect();
        v.sort();
        v
    };
    let points: Vec<_> = weekly
        .iter()
        .map(|p| {
            (
                p.date,
                sorted(&p.mtasts_per_tld),
                sorted(&p.tlsrpt_among_mtasts_per_tld),
            )
        })
        .collect();
    let mut hist: Vec<_> = history
        .iter()
        .map(|(d, v)| (d.to_string(), format!("{v:?}")))
        .collect();
    hist.sort();
    serde_json::to_string(&(points, hist)).expect("weekly serializes")
}

struct Measured {
    scratch_secs: f64,
    incremental_secs: f64,
    stats: CacheStats,
}

impl Measured {
    fn speedup(&self) -> f64 {
        self.scratch_secs / self.incremental_secs
    }

    fn report(&self, dates: usize) -> SeriesReport {
        SeriesReport {
            dates,
            scratch_secs: self.scratch_secs,
            incremental_secs: self.incremental_secs,
            speedup: self.speedup(),
            cache: self.stats,
        }
    }
}

#[derive(Serialize)]
struct SeriesReport {
    dates: usize,
    scratch_secs: f64,
    incremental_secs: f64,
    speedup: f64,
    cache: CacheStats,
}

/// The `BENCH_scan.json` payload.
#[derive(Serialize)]
struct BenchReport {
    experiment: &'static str,
    seed: u64,
    scale: f64,
    threads: usize,
    digests_match: bool,
    full: SeriesReport,
    weekly: SeriesReport,
    combined_speedup: f64,
    notes: &'static str,
}

fn main() {
    // Default scale for this experiment: large enough that the scratch
    // drivers' O(dates × domains) cost is visible, small enough for CI.
    if std::env::var("MTASTS_SCALE").is_err() {
        std::env::set_var("MTASTS_SCALE", "0.05");
    }
    let config = mtasts_bench::config_from_env();
    let study = Study::new(mtasts_bench::ecosystem());
    let threads = default_scan_threads();
    eprintln!("# threads: {threads}");

    // Monthly full-component scans: 11 snapshot dates.
    eprintln!("# full scans, from scratch...");
    let start = Instant::now();
    let scratch_full = study.run_full_scratch_with_threads(threads);
    let scratch_full_secs = start.elapsed().as_secs_f64();
    eprintln!("# full scans, incremental...");
    let start = Instant::now();
    let (inc_full, full_stats) = study.run_full_incremental_with_threads(threads);
    let inc_full_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        full_digest(&scratch_full),
        full_digest(&inc_full),
        "incremental full scans must be byte-identical to scratch"
    );
    let full = Measured {
        scratch_secs: scratch_full_secs,
        incremental_secs: inc_full_secs,
        stats: full_stats,
    };

    // Weekly record scans: 160 snapshot dates.
    eprintln!("# weekly series, from scratch...");
    let start = Instant::now();
    let (scratch_weekly, scratch_hist) = study.run_weekly_scratch_with_threads(threads);
    let scratch_weekly_secs = start.elapsed().as_secs_f64();
    eprintln!("# weekly series, incremental...");
    let start = Instant::now();
    let (inc_weekly, inc_hist, weekly_stats) = study.run_weekly_incremental_with_threads(threads);
    let inc_weekly_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        weekly_digest(&scratch_weekly, &scratch_hist),
        weekly_digest(&inc_weekly, &inc_hist),
        "incremental weekly series must be byte-identical to scratch"
    );
    let weekly = Measured {
        scratch_secs: scratch_weekly_secs,
        incremental_secs: inc_weekly_secs,
        stats: weekly_stats,
    };

    let combined = (full.scratch_secs + weekly.scratch_secs)
        / (full.incremental_secs + weekly.incremental_secs);

    println!("series   scratch  incremental  speedup  full-hits  partial  misses");
    for (name, m) in [("full", &full), ("weekly", &weekly)] {
        println!(
            "{name:<7} {:>7.2}s  {:>10.2}s  {:>6.2}x  {:>9}  {:>7}  {:>6}",
            m.scratch_secs,
            m.incremental_secs,
            m.speedup(),
            m.stats.full_hits,
            m.stats.partial_hits,
            m.stats.misses,
        );
    }
    println!("\ncombined speedup: {combined:.2}x (acceptance: >=5x at scale 0.05)");
    println!(
        "note: domain names are Arc-backed ({} weekly observations reuse \
         cached name handles instead of reallocating label vectors per date)",
        weekly.stats.full_hits
    );

    let out = BenchReport {
        experiment: "exp_incremental",
        seed: config.seed,
        scale: config.scale,
        threads,
        digests_match: true,
        full: full.report(inc_full.len()),
        weekly: weekly.report(inc_weekly.len()),
        combined_speedup: combined,
        notes: "domain names share Arc-backed label storage; snapshot clones and \
                cache reuse are refcount bumps, not per-date Vec<String> reallocation",
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("bench json"),
    )
    .expect("write BENCH_scan.json");
    eprintln!("# wrote {path}");

    assert!(
        combined >= 5.0,
        "combined incremental speedup {combined:.2}x below the 5x acceptance floor"
    );
}
