//! Figure 7: domains with all-invalid vs partially-invalid MX hosts, and
//! the enforce-mode overlay. Paper latest: 1,326 (1.9%) all-invalid; 269
//! enforce-mode domains subject to delivery failure.

use report::Table;
use scanner::analysis::fig7_series;

fn main() {
    let (_, run) = mtasts_bench::full_scans_only();
    let series = fig7_series(&run);
    let mut table = Table::new(&[
        "date",
        "total",
        "all invalid",
        "%",
        "partial",
        "%",
        "enforce@risk",
    ])
    .with_title("Figure 7: invalid MX host sets");
    for p in &series {
        table.row(vec![
            p.date.to_string(),
            p.total.to_string(),
            p.all_invalid.to_string(),
            mtasts_bench::pct(100.0 * p.all_invalid as f64 / p.total.max(1) as f64),
            p.partially_invalid.to_string(),
            mtasts_bench::pct(100.0 * p.partially_invalid as f64 / p.total.max(1) as f64),
            p.enforce_at_risk.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper latest: all-invalid 1,326 (1.9%); 269 enforce-mode at risk");
}
