//! Runs the complete longitudinal study once and prints a compact summary
//! of every table and figure — the one-shot reproduction driver used to
//! fill EXPERIMENTS.md.

use scanner::analysis::*;
use scanner::classify::EntityClass;
use scanner::notify::run_campaign;
use scanner::taxonomy::MisconfigCategory;

fn main() {
    let (study, run) = mtasts_bench::full_study();
    let scale = study.eco.config.scale;
    println!("== Table 1 ==");
    for r in table1(&run, scale) {
        println!(
            "{}: {} MX domains, {} MTA-STS ({:.3}%)",
            r.tld, r.mx_domains, r.mtasts_domains, r.percent
        );
    }
    println!("\n== Figure 2 (first/last) ==");
    let f2 = fig2_series(&run, scale);
    for (d, m) in [f2.first().unwrap(), f2.last().unwrap()] {
        println!("{d}: {m:?}");
    }
    println!("\n== Figure 3 ==");
    let bins = fig3_bins(&study.eco, study.eco.config.end);
    let top: f64 = bins[..10].iter().map(|(_, p)| p).sum::<f64>() / 10.0;
    let bottom: f64 = bins[90..].iter().map(|(_, p)| p).sum::<f64>() / 10.0;
    println!("top-100k {top:.2}%  bottom-100k {bottom:.2}%  (paper 1.2% / 0.4%)");
    println!("\n== Figure 4 (latest) ==");
    let f4 = fig4_series(&run);
    let l4 = f4.last().unwrap();
    println!(
        "{}: {}/{} misconfigured ({:.1}%), categories {:?}",
        l4.date,
        l4.misconfigured,
        l4.total,
        100.0 * l4.misconfigured as f64 / l4.total as f64,
        MisconfigCategory::ALL
            .iter()
            .map(|c| format!("{}={:.1}%", c.label(), l4.category_pct[c]))
            .collect::<Vec<_>>()
    );
    println!("\n== Figure 5 (latest) ==");
    for class in [EntityClass::SelfManaged, EntityClass::ThirdParty] {
        let s = fig5_series(&run, class);
        let l = s.last().unwrap();
        println!(
            "{}: {}/{} faulty ({:.1}%)",
            class.label(),
            l.faulty,
            l.class_total,
            100.0 * l.faulty as f64 / l.class_total.max(1) as f64
        );
    }
    println!("\n== Figure 6 (latest) ==");
    for class in [EntityClass::SelfManaged, EntityClass::ThirdParty] {
        let s = fig6_series(&run, class);
        let l = s.last().unwrap();
        println!(
            "{}: {}/{} invalid ({:.1}%)",
            class.label(),
            l.invalid,
            l.class_total,
            100.0 * l.invalid as f64 / l.class_total.max(1) as f64
        );
    }
    println!("\n== Figure 7 (latest) ==");
    let f7 = fig7_series(&run);
    let l7 = f7.last().unwrap();
    println!(
        "all-invalid {} ({:.1}%), partial {}, enforce-at-risk {}",
        l7.all_invalid,
        100.0 * l7.all_invalid as f64 / l7.total as f64,
        l7.partially_invalid,
        l7.enforce_at_risk
    );
    println!("\n== Figure 8 (latest) ==");
    let f8 = fig8_series(&run);
    let l8 = f8.last().unwrap();
    println!(
        "{:?}, stray-label {}, enforce-failures {}",
        l8.kind_counts, l8.stray_mta_sts_label, l8.enforce_failures
    );
    println!("\n== Figure 9 ==");
    for (d, p) in fig9_series(&run) {
        println!("{d}: {p:.1}%");
    }
    println!("\n== Figure 10 (latest) ==");
    let f10 = fig10_series(&run);
    let l10 = f10.last().unwrap();
    println!(
        "same-provider {}/{}; different {}/{}",
        l10.same_inconsistent, l10.same_total, l10.diff_inconsistent, l10.diff_total
    );
    println!("\n== Table 2 ==");
    for r in table2_rows(run.latest(), 8) {
        println!(
            "{}: {} domains (e.g. {})",
            r.provider, r.domains, r.example_target
        );
    }
    println!("\n== Figure 12 ==");
    let f12 = fig12_mtasts_series(&run);
    println!(
        "TLSRPT among MTA-STS domains: {:.1}% -> {:.1}%",
        f12.first().unwrap().1,
        f12.last().unwrap().1
    );
    println!("\n== Notification campaign ==");
    let campaign = run_campaign(run.latest(), study.eco.config.seed);
    println!(
        "notified {}, bounced {}, remediated {} ({:.1}%)",
        campaign.notified,
        campaign.bounced,
        campaign.remediated,
        100.0 * campaign.remediation_share()
    );
}
