//! §4.7: the responsible-disclosure campaign — notify every misconfigured
//! domain's postmaster, count bounces, feedback, and later remediation.
//! Paper: 20,144 notified; >5,000 bounced; 497 feedback (341 helpful,
//! 45 thanks); 2,064 (10%) remediated.

use report::Table;
use scanner::notify::run_campaign;
use scanner::scan_snapshot;

fn main() {
    let eco = mtasts_bench::ecosystem();
    let date = eco.config.end;
    eprintln!("# scanning the latest snapshot...");
    let world = eco.world_at(date, ecosystem::SnapshotDetail::Full);
    let domains: Vec<netbase::DomainName> = eco.domains_at(date).map(|d| d.name.clone()).collect();
    let snapshot = scan_snapshot(
        &world,
        &domains,
        date,
        None,
        &scanner::ScanConfig::default(),
    );
    let outcome = run_campaign(&snapshot, eco.config.seed);

    let mut table =
        Table::new(&["metric", "measured", "paper"]).with_title("Notification campaign (§4.7)");
    let mut row = |name: &str, v: String, paper: &str| {
        table.row(vec![name.to_string(), v, paper.to_string()]);
    };
    row("notified", outcome.notified.to_string(), "20,144");
    row("bounced", outcome.bounced.to_string(), ">5,000");
    row("delivered", outcome.delivered.to_string(), "~15,000");
    row("feedback", outcome.feedback.to_string(), "497");
    row(
        "  of which helpful",
        outcome.feedback_helpful.to_string(),
        "341",
    );
    row("acknowledgements", outcome.acks.to_string(), "45");
    row(
        "remediated",
        format!(
            "{} ({:.1}%)",
            outcome.remediated,
            100.0 * outcome.remediation_share()
        ),
        "2,064 (10%)",
    );
    println!("{}", table.render());
}
