//! Figure 5: policy-server errors by layer and managing entity.
//! Paper latest: 9,588 (37.8%) of self-managed and 1,393 (4.9%) of
//! third-party policy servers misconfigured; TLS dominates; the June 8
//! self-signed incident spikes the third-party series.

use report::Table;
use scanner::analysis::fig5_series;
use scanner::classify::EntityClass;
use scanner::taxonomy::PolicyLayer;

fn main() {
    let (_, run) = mtasts_bench::full_scans_only();
    for class in [EntityClass::SelfManaged, EntityClass::ThirdParty] {
        let series = fig5_series(&run, class);
        let mut table = Table::new(&[
            "date", "domains", "faulty", "%", "DNS", "TCP", "TLS", "HTTP", "Syntax",
        ])
        .with_title(&format!("Figure 5 ({})", class.label()));
        for p in &series {
            table.row(vec![
                p.date.to_string(),
                p.class_total.to_string(),
                p.faulty.to_string(),
                mtasts_bench::pct(100.0 * p.faulty as f64 / p.class_total.max(1) as f64),
                mtasts_bench::pct(p.layer_pct[&PolicyLayer::Dns]),
                mtasts_bench::pct(p.layer_pct[&PolicyLayer::Tcp]),
                mtasts_bench::pct(p.layer_pct[&PolicyLayer::Tls]),
                mtasts_bench::pct(p.layer_pct[&PolicyLayer::Http]),
                mtasts_bench::pct(p.layer_pct[&PolicyLayer::Syntax]),
            ]);
        }
        println!("{}", table.render());
    }
    println!("paper latest: self-managed 37.8% (TLS-heavy), third-party 4.9%;");
    println!("June 8 2024: 1,385 domains hit by a provider's self-signed certs");
}
