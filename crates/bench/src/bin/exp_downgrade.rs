//! Downgrade-attack sweep (§2.4): how long a `max_age` does a sender need
//! before a record-stripping/MX-redirecting attacker stops winning?
//!
//! A warm-cache RFC 8461 sender and an always-refetch ablation deliver
//! hourly to a set of victim domains while the attacker strips the
//! `_mta-sts` record and redirects MX resolution for a bounded window.
//! The table reports the attacker's wins per (window, max_age) cell; the
//! chart shows the warm sender's win boundary. A final section checks the
//! TLSRPT failure types the degraded modes emit.

use mtasts_bench::downgrade::{self, ATTACK_LEAD};
use netbase::Duration;
use report::{AsciiChart, Table};

fn main() {
    let seed = std::env::var("MTASTS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);

    let windows = [
        Duration::hours(1),
        Duration::hours(6),
        Duration::days(1),
        Duration::days(3),
    ];
    let max_ages: [u64; 5] = [3_600, 21_600, 86_400, 604_800, 1_209_600];

    eprintln!(
        "# sweeping {} attack windows x {} max_age values (seed={seed})...",
        windows.len(),
        max_ages.len()
    );
    let cells = downgrade::sweep(seed, &windows, &max_ages);

    let mut table = Table::new(&[
        "window",
        "max_age",
        "covered",
        "warm: lost",
        "warm: refused",
        "cacheless: lost",
        "in-window",
    ])
    .with_title("Downgrade-attack sweep: attacker wins by window length x max_age");
    for cell in &cells {
        table.row(vec![
            format!("{}h", cell.window_hours),
            format!("{}s", cell.max_age),
            if cell.cache_covers_window {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            cell.warm.stats.intercepted.to_string(),
            cell.warm.stats.refused.to_string(),
            cell.cacheless.stats.intercepted.to_string(),
            cell.warm.in_window_attempts.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Boundary chart: attacker win rate vs max_age for the one-day window.
    let day_cells: Vec<_> = cells.iter().filter(|c| c.window_hours == 24).collect();
    let rate = |lost: u64, total: u64| {
        if total == 0 {
            0.0
        } else {
            100.0 * lost as f64 / total as f64
        }
    };
    let mut chart = AsciiChart::new("Attacker win rate (%) vs max_age, 24h stripping window", 10);
    chart.series(
        "warm cache",
        day_cells
            .iter()
            .map(|c| rate(c.warm.stats.intercepted, c.warm.in_window_attempts))
            .collect(),
    );
    chart.series(
        "cache-less",
        day_cells
            .iter()
            .map(|c| {
                rate(
                    c.cacheless.stats.intercepted,
                    c.cacheless.in_window_attempts,
                )
            })
            .collect(),
    );
    for (i, cell) in day_cells.iter().enumerate() {
        chart.x_label(i, &format!("{}h", cell.max_age / 3600));
    }
    println!("{}", chart.render());

    // The headline claim, stated explicitly.
    let covered_losses: u64 = cells
        .iter()
        .filter(|c| c.cache_covers_window)
        .map(|c| c.warm.stats.intercepted)
        .sum();
    let cacheless_losses: u64 = cells.iter().map(|c| c.cacheless.stats.intercepted).sum();
    println!(
        "warm-cache losses with max_age >= window + {}h lead: {covered_losses} (expected 0)",
        ATTACK_LEAD.as_secs() / 3600,
    );
    println!("cache-less losses across the sweep: {cacheless_losses} (expected > 0)");

    // TLSRPT failure-type coverage under degraded modes.
    let coverage = downgrade::tlsrpt_failure_coverage(seed);
    let mut tlsrpt = Table::new(&["result-type", "failed sessions"])
        .with_title("TLSRPT failure types emitted by the degraded modes");
    for (ty, count) in &coverage {
        tlsrpt.row(vec![
            serde_json::to_string(ty)
                .expect("result types serialize")
                .trim_matches('"')
                .to_string(),
            count.to_string(),
        ]);
    }
    println!("{}", tlsrpt.render());
}
