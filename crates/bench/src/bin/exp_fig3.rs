//! Figure 3: MTA-STS adoption as a function of Tranco rank (bins of
//! 10,000). Paper: ~1.2% in the top bins declining to ~0.4% at the tail.

use report::AsciiChart;
use scanner::analysis::fig3_bins;

fn main() {
    let eco = mtasts_bench::ecosystem();
    let bins = fig3_bins(&eco, eco.config.end);
    let mut chart = AsciiChart::new(
        "Figure 3: % of domains with MTA-STS by Tranco rank (bins of 10k)",
        10,
    );
    chart.series("adoption %", bins.iter().map(|(_, p)| *p).collect());
    chart.x_label(0, "rank 0");
    chart.x_label(bins.len() - 6, "1M");
    println!("{}", chart.render());
    let top10: f64 = bins[..10].iter().map(|(_, p)| p).sum::<f64>() / 10.0;
    let bottom10: f64 = bins[90..].iter().map(|(_, p)| p).sum::<f64>() / 10.0;
    println!("top-100k average: {top10:.2}%   bottom-100k average: {bottom10:.2}%");
    println!("paper: top 10k ≈ 1.2%, bottom 10k ≈ 0.4%");
}
