//! Scaling curve for the deterministic parallel scan engine
//! (EXPERIMENTS.md): one full-component snapshot of a paper-scale
//! population (`MTASTS_SCALE` defaults to 1.0 here — ~68k domains, the
//! acceptance floor is 50k) scanned at 1, 2, 4 and 8 threads.
//!
//! Two things are on display:
//!
//! 1. **Speedup**: per-domain scans dominate, shards are balanced to ±1
//!    domain, and workers share no mutable state, so the curve should be
//!    near-linear until the machine runs out of cores.
//! 2. **Determinism**: every run's digest must equal the sequential
//!    digest — thread count is unobservable in the output.
//!
//! ```sh
//! cargo run --release -p mtasts-bench --bin exp_parallel
//! MTASTS_SCALE=0.25 SCAN_THREAD_CURVE=1,2,4,8,16 \
//!     cargo run --release -p mtasts-bench --bin exp_parallel
//! ```

use ecosystem::SnapshotDetail;
use netbase::DomainName;
use scanner::{scan_snapshot_with_threads, ScanConfig, Snapshot};
use std::time::Instant;

fn digest(snap: &Snapshot) -> String {
    let mut ips: Vec<(String, String)> = snap
        .policy_ips
        .iter()
        .map(|(d, ip)| (d.to_string(), ip.to_string()))
        .collect();
    ips.sort();
    serde_json::to_string(&(&snap.scans, ips)).unwrap()
}

fn main() {
    // This experiment defaults to the paper's full scale: the scaling
    // claim is only interesting on a ≥50k-domain population.
    if std::env::var("MTASTS_SCALE").is_err() {
        std::env::set_var("MTASTS_SCALE", "1.0");
    }
    let curve: Vec<usize> = std::env::var("SCAN_THREAD_CURVE")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .map(|t| t.trim().parse().expect("SCAN_THREAD_CURVE: integers"))
        .collect();

    let eco = mtasts_bench::ecosystem();
    let date = *eco.config.full_scan_dates().last().unwrap();
    let world = eco.world_at(date, SnapshotDetail::Full);
    let domains: Vec<DomainName> = eco.domains_at(date).map(|d| d.name.clone()).collect();
    let config = ScanConfig::default();
    eprintln!(
        "# snapshot {date}: {} domains, {} cores available",
        domains.len(),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    println!("threads  wall-clock  speedup  efficiency  deterministic");
    let mut baseline: Option<(f64, String)> = None;
    for &threads in &curve {
        let start = Instant::now();
        let snap = scan_snapshot_with_threads(&world, &domains, date, None, &config, threads);
        let secs = start.elapsed().as_secs_f64();
        let d = digest(&snap);
        let (base_secs, base_digest) = baseline.get_or_insert_with(|| (secs, d.clone()));
        let speedup = *base_secs / secs;
        assert_eq!(
            *base_digest, d,
            "digest diverges at {threads} threads — determinism broken"
        );
        println!(
            "{threads:>7}  {secs:>9.2}s  {speedup:>6.2}x  {:>9.1}%  {:>13}",
            100.0 * speedup / threads as f64,
            "yes"
        );
    }
    println!(
        "\nall {} runs byte-identical; acceptance: >=3x at 8 threads on an 8-core host",
        curve.len()
    );
}
