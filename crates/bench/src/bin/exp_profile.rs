//! Per-stage self-time profile of the longitudinal study, and the cost
//! of observing it (EXPERIMENTS.md, DESIGN.md "Observability").
//!
//! Runs the incremental study (monthly full scans + weekly series) at
//! scale 0.05 twice — telemetry off, then telemetry *and the flight
//! recorder* on — and:
//!
//! - asserts the outputs are byte-identical (the observability layer's
//!   determinism contract, also pinned by
//!   `scanner/tests/telemetry_identity.rs` and
//!   `scanner/tests/flight_identity.rs`);
//! - asserts the enabled-telemetry overhead on the combined run is ≤ 5%
//!   (plus a small absolute slack so sub-second runs don't flake on
//!   scheduler noise) — the flight recorder's per-date window folding
//!   is inside that budget;
//! - emits the per-stage self-time profile table (span counts, real
//!   time, sim time) and the run's counters into `BENCH_profile.json`.
//!
//! ```sh
//! cargo run --release -p mtasts-bench --bin exp_profile
//! ```
//!
//! Set `RUN_TRACE=/path/to/trace.jsonl` to also stream every span and
//! event as JSON lines while the profiled (telemetry-on) pass runs.

use scanner::longitudinal::Study;
use scanner::Snapshot;
use serde::Serialize;
use std::time::Instant;

fn full_digest(snapshots: &[Snapshot]) -> String {
    let digest: Vec<_> = snapshots
        .iter()
        .map(|s| {
            let mut ips: Vec<_> = s
                .policy_ips
                .iter()
                .map(|(d, ip)| (d.to_string(), ip.to_string()))
                .collect();
            ips.sort();
            (s.date, &s.scans, ips)
        })
        .collect();
    serde_json::to_string(&digest).expect("snapshots serialize")
}

/// One combined study pass (the same work `exp_incremental` measures on
/// its incremental side): monthly full scans + weekly record series.
fn combined_run(study: &Study, threads: usize) -> (String, f64) {
    let start = Instant::now();
    let (full, _) = study.run_full_incremental_with_threads(threads);
    let _ = study.run_weekly_incremental_with_threads(threads);
    let secs = start.elapsed().as_secs_f64();
    (full_digest(&full), secs)
}

/// Best-of-2 timing: the second pass of each mode reuses warm page
/// caches and allocator state, so the minimum is the fair comparison.
fn timed_runs(study: &Study, threads: usize) -> (String, f64) {
    let (digest, first) = combined_run(study, threads);
    let (digest2, second) = combined_run(study, threads);
    assert_eq!(digest, digest2, "a repeated run must reproduce itself");
    (digest, first.min(second))
}

#[derive(Serialize)]
struct ProfileRowOut {
    stage: String,
    count: u64,
    real_ms: f64,
    mean_us: f64,
    sim_secs: u64,
}

#[derive(Serialize)]
struct BenchReport {
    experiment: &'static str,
    seed: u64,
    scale: f64,
    threads: usize,
    digests_match: bool,
    telemetry_off_secs: f64,
    telemetry_on_secs: f64,
    overhead_pct: f64,
    /// Flight-recorder window counts from the telemetry-on pass — the
    /// overhead number above includes maintaining them.
    flight_sim_windows: u64,
    flight_wall_windows: u64,
    profile: Vec<ProfileRowOut>,
    counters: std::collections::BTreeMap<String, u64>,
    notes: &'static str,
}

fn main() {
    if std::env::var("MTASTS_SCALE").is_err() {
        std::env::set_var("MTASTS_SCALE", "0.05");
    }
    let config = mtasts_bench::config_from_env();
    let study = Study::new(mtasts_bench::ecosystem());
    let threads = scanner::default_scan_threads();
    eprintln!("# threads: {threads}");

    // Baseline: telemetry fully disabled (one atomic load per site).
    obsv::set_enabled(false);
    eprintln!("# combined run, telemetry off...");
    let (off_digest, off_secs) = timed_runs(&study, threads);

    // Profiled: collectors live, worker harvest/absorb active, the
    // flight recorder folding per-date windows, trace streaming if
    // RUN_TRACE is set.
    obsv::timeseries::set_flight(true);
    obsv::reset();
    eprintln!("# combined run, telemetry + flight recorder on...");
    let (on_digest, on_secs) = timed_runs(&study, threads);
    let collected = obsv::snapshot();
    let recorder = obsv::timeseries::take();
    obsv::trace::flush();
    obsv::set_enabled(false);
    let (flight_sim_windows, flight_wall_windows) = recorder
        .as_ref()
        .map(|r| (r.sim.iter().count() as u64, r.wall.iter().count() as u64))
        .unwrap_or((0, 0));

    assert_eq!(
        off_digest, on_digest,
        "telemetry must never change scan output"
    );

    let overhead_pct = (on_secs / off_secs - 1.0) * 100.0;
    let rows = obsv::export::profile_rows(&collected);
    println!("{}", obsv::export::profile_table(&rows));
    let quantiles = obsv::export::quantile_rows(&collected);
    if !quantiles.is_empty() {
        println!("{}", obsv::export::quantile_table(&quantiles));
    }
    println!(
        "telemetry off: {off_secs:.3}s  on: {on_secs:.3}s  overhead: {overhead_pct:+.2}%  \
         (acceptance: <=5%)"
    );

    let out = BenchReport {
        experiment: "exp_profile",
        seed: config.seed,
        scale: config.scale,
        threads,
        digests_match: true,
        telemetry_off_secs: off_secs,
        telemetry_on_secs: on_secs,
        overhead_pct,
        flight_sim_windows,
        flight_wall_windows,
        profile: rows
            .iter()
            .map(|r| ProfileRowOut {
                stage: r.name.clone(),
                count: r.count,
                real_ms: r.real_ns as f64 / 1e6,
                mean_us: r.mean_ns as f64 / 1e3,
                sim_secs: r.sim_secs,
            })
            .collect(),
        counters: collected
            .counters
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect(),
        notes: "profile covers the telemetry-on combined run (2 passes merged) \
                with the flight recorder folding per-date windows; span \
                aggregates merge from worker collectors in shard order, so \
                the count/sim columns are deterministic — only real-time varies",
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_profile.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&out).expect("bench json"),
    )
    .expect("write BENCH_profile.json");
    eprintln!("# wrote {path}");

    // Noise guard: sub-second runs flake on scheduler jitter, so allow a
    // quarter second of absolute slack on top of the 5% criterion.
    assert!(
        on_secs <= off_secs * 1.05 + 0.25,
        "telemetry overhead {overhead_pct:.2}% exceeds the 5% acceptance ceiling \
         (off {off_secs:.3}s, on {on_secs:.3}s)"
    );
}
