//! The parallel-engine acceptance gate: determinism always, the ≥3×
//! 8-thread speedup whenever the host actually has 8 cores to offer.
//! (`exp_parallel` is the full scaling-curve experiment; this is the
//! slice of it cheap enough for the test suite.)

use ecosystem::{Ecosystem, EcosystemConfig, SnapshotDetail};
use netbase::DomainName;
use scanner::{scan_snapshot_with_threads, ScanConfig, Snapshot};
use std::time::Instant;

fn digest(snap: &Snapshot) -> String {
    let mut ips: Vec<(String, String)> = snap
        .policy_ips
        .iter()
        .map(|(d, ip)| (d.to_string(), ip.to_string()))
        .collect();
    ips.sort();
    serde_json::to_string(&(&snap.scans, ips)).unwrap()
}

fn population(scale: f64) -> (simnet::World, Vec<DomainName>, netbase::SimDate) {
    let eco = Ecosystem::generate(EcosystemConfig::paper(42, scale));
    let date = *eco.config.full_scan_dates().last().unwrap();
    let world = eco.world_at(date, SnapshotDetail::Full);
    let domains = eco.domains_at(date).map(|d| d.name.clone()).collect();
    (world, domains, date)
}

#[test]
fn thread_counts_are_unobservable() {
    let (world, domains, date) = population(0.02);
    let config = ScanConfig::default();
    let run = |threads| {
        digest(&scan_snapshot_with_threads(
            &world, &domains, date, None, &config, threads,
        ))
    };
    let sequential = run(1);
    assert_eq!(sequential, run(2), "2-thread scan diverges");
    assert_eq!(sequential, run(8), "8-thread scan diverges");
}

#[test]
fn eight_threads_give_3x_on_8_cores() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 8 {
        eprintln!("skipping speedup assertion: host has {cores} cores (need 8)");
        return;
    }

    // ~17k domains: large enough that shard imbalance and spawn overhead
    // are noise, small enough for a test.
    let (world, domains, date) = population(0.25);
    let config = ScanConfig::default();
    // Warm the resolver caches once so both timed runs see the same world.
    scan_snapshot_with_threads(&world, &domains, date, None, &config, 8);

    let start = Instant::now();
    let seq = scan_snapshot_with_threads(&world, &domains, date, None, &config, 1);
    let seq_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let par = scan_snapshot_with_threads(&world, &domains, date, None, &config, 8);
    let par_secs = start.elapsed().as_secs_f64();

    assert_eq!(digest(&seq), digest(&par));
    let speedup = seq_secs / par_secs;
    eprintln!("sequential {seq_secs:.2}s, 8 threads {par_secs:.2}s: {speedup:.2}x");
    assert!(
        speedup >= 3.0,
        "8-thread speedup {speedup:.2}x below the 3x acceptance floor \
         (sequential {seq_secs:.2}s, parallel {par_secs:.2}s)"
    );
}
