//! Acceptance tests for the downgrade-attack simulator: the deterministic
//! claims `exp_downgrade` prints must hold exactly.

use mtasts::{Mode, ResultType};
use mtasts_bench::downgrade::{run_downgrade, sweep, tlsrpt_failure_coverage, DowngradeConfig};
use netbase::Duration;

#[test]
fn warm_cache_with_covering_max_age_loses_nothing() {
    // max_age (1 week) >= attack window (1 day) + priming lead: the
    // enforce-mode sender delivers zero messages to the attacker, turning
    // the whole window into visible refusals instead.
    let out = run_downgrade(&DowngradeConfig::new(42, 604_800, Duration::days(1)));
    assert_eq!(out.stats.intercepted, 0);
    assert_eq!(out.stats.refused, out.in_window_attempts);
    assert!(out.stats.refused > 0);
    // Outside the window the sender goes right back to validated delivery.
    assert!(out.stats.delivered_validated > 0);
    assert_eq!(out.stats.delivered_unvalidated, 0);
}

#[test]
fn cacheless_sender_loses_the_whole_window() {
    // The always-refetch ablation sees no record during the stripping
    // window, so MTA-STS silently stops applying and every in-window
    // message goes to the attacker's relay.
    let out = run_downgrade(&DowngradeConfig {
        use_cache: false,
        ..DowngradeConfig::new(42, 604_800, Duration::days(1))
    });
    assert_eq!(out.stats.intercepted, out.in_window_attempts);
    assert!(out.stats.intercepted > 0);
    assert_eq!(out.stats.refused, 0);
}

#[test]
fn short_max_age_reopens_the_attack() {
    // Once the cached policy expires mid-window the domain is released
    // and the tail of the window is lost — the paper's argument for long
    // max_age values.
    let out = run_downgrade(&DowngradeConfig::new(42, 7_200, Duration::days(1)));
    assert!(out.stats.intercepted > 0);
    assert!(
        out.stats.intercepted < out.in_window_attempts,
        "the fresh-cache head of the window must still be protected"
    );
}

#[test]
fn testing_mode_soft_fails_match_enforce_refusals() {
    // Same scenario, testing mode: every delivery enforce would refuse is
    // instead delivered unprotected and surfaces in TLSRPT with the same
    // per-type counts.
    let enforce = run_downgrade(&DowngradeConfig::new(42, 604_800, Duration::days(1)));
    let testing = run_downgrade(&DowngradeConfig {
        mode: Mode::Testing,
        ..DowngradeConfig::new(42, 604_800, Duration::days(1))
    });
    assert_eq!(testing.stats.soft_fails, enforce.stats.refused);
    assert_eq!(testing.stats.refused, 0);
    // Soft-failing hands the attacker exactly the messages enforce held.
    assert_eq!(testing.stats.intercepted, enforce.stats.refused);
    // TLSRPT failure counts agree between the two modes.
    assert_eq!(testing.tlsrpt_failures, enforce.tlsrpt_failures);
    assert_eq!(
        testing
            .tlsrpt_failures
            .get(&ResultType::ValidationFailure)
            .copied(),
        Some(enforce.stats.refused)
    );
}

#[test]
fn sweep_reproduces_the_max_age_boundary_deterministically() {
    let windows = [Duration::hours(6), Duration::days(1)];
    let max_ages = [3_600, 86_400, 604_800];
    let cells = sweep(42, &windows, &max_ages);
    assert_eq!(cells.len(), windows.len() * max_ages.len());
    for cell in &cells {
        if cell.cache_covers_window {
            assert_eq!(
                cell.warm.stats.intercepted, 0,
                "covering max_age must shut the attacker out (window={}h max_age={}s)",
                cell.window_hours, cell.max_age
            );
        } else {
            assert!(
                cell.warm.stats.intercepted > 0,
                "non-covering max_age must leak (window={}h max_age={}s)",
                cell.window_hours,
                cell.max_age
            );
        }
        // The ablation always loses the entire window.
        assert_eq!(
            cell.cacheless.stats.intercepted,
            cell.cacheless.in_window_attempts
        );
    }
    // Fixed seed, repeated run: byte-for-byte identical outcomes.
    let again = sweep(42, &windows, &max_ages);
    for (a, b) in cells.iter().zip(&again) {
        assert_eq!(a.warm, b.warm);
        assert_eq!(a.cacheless, b.cacheless);
    }
}

#[test]
fn degraded_modes_cover_the_three_tlsrpt_failure_types() {
    let coverage = tlsrpt_failure_coverage(42);
    for ty in [
        ResultType::ValidationFailure,
        ResultType::StsWebpkiInvalid,
        ResultType::StsPolicyFetchError,
    ] {
        assert!(
            coverage.get(&ty).copied().unwrap_or(0) > 0,
            "missing TLSRPT coverage for {ty:?}: {coverage:?}"
        );
    }
}
