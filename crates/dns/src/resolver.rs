//! Stub resolver with pluggable transport, CNAME chasing and a TTL cache.
//!
//! The paper's scanner issues all queries through public resolvers (§A.1);
//! here the equivalent abstraction is [`DnsTransport`]: the resolver asks
//! *something* to answer a question and post-processes the result. Two
//! transports are provided:
//!
//! - [`UdpTransport`]: real RFC 1035 datagrams against an address, used by
//!   the live-wire examples together with [`crate::server::AuthServer`];
//! - [`InMemoryAuthorities`]: a registry of [`Zone`]s consulted directly,
//!   used at simulation scale (tens of thousands of domains × weekly
//!   snapshots) where socket round-trips would dominate.
//!
//! Both yield identical results by construction; the `scan` benchmark
//! compares their throughput (a design-choice ablation from DESIGN.md).

use crate::types::{Message, Question, Rcode, Record, RecordData, RecordType};
use crate::wire;
use crate::zone::{Zone, ZoneLookup};
use netbase::{DomainName, SimInstant};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration as StdDuration;

/// Resolution errors, mirroring the failure classes the paper's pipeline
/// distinguishes (§4.3.3 "DNS errors").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsError {
    /// The name does not exist (authenticated NXDOMAIN).
    NxDomain,
    /// The server answered with SERVFAIL or another error code.
    ServFail(Rcode),
    /// No response within the timeout.
    Timeout,
    /// The response could not be parsed.
    Malformed(String),
    /// A CNAME chain exceeded the resolver's limit.
    CnameChainTooLong,
    /// Transport-level failure (socket error, no route).
    Transport(String),
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::NxDomain => write!(f, "NXDOMAIN"),
            DnsError::ServFail(rc) => write!(f, "server failure ({rc:?})"),
            DnsError::Timeout => write!(f, "query timed out"),
            DnsError::Malformed(e) => write!(f, "malformed response: {e}"),
            DnsError::CnameChainTooLong => write!(f, "CNAME chain too long"),
            DnsError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for DnsError {}

/// The result of a successful lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lookup {
    /// The records answering the final question (post CNAME chasing). Empty
    /// means NODATA: the name exists but has no records of this type.
    pub records: Vec<Record>,
    /// The CNAME chain traversed, in order (`mta-sts.example.com` →
    /// `mta-sts.provider.net` → ...). Policy-delegation analysis (§5) reads
    /// this.
    pub cname_chain: Vec<DomainName>,
}

impl Lookup {
    /// True if the lookup produced no records (NODATA).
    pub fn is_nodata(&self) -> bool {
        self.records.is_empty()
    }

    /// Extracts TXT payloads (joined character-strings).
    pub fn txt_strings(&self) -> Vec<String> {
        self.records
            .iter()
            .filter_map(|r| r.data.txt_joined())
            .collect()
    }

    /// Extracts MX (preference, exchange) pairs sorted by preference.
    pub fn mx_hosts(&self) -> Vec<(u16, DomainName)> {
        let mut out: Vec<(u16, DomainName)> = self
            .records
            .iter()
            .filter_map(|r| match &r.data {
                RecordData::Mx {
                    preference,
                    exchange,
                } => Some((*preference, exchange.clone())),
                _ => None,
            })
            .collect();
        out.sort();
        out
    }

    /// Extracts IPv4 addresses.
    pub fn a_addrs(&self) -> Vec<std::net::Ipv4Addr> {
        self.records
            .iter()
            .filter_map(|r| match r.data {
                RecordData::A(a) => Some(a),
                _ => None,
            })
            .collect()
    }
}

/// A transport that can answer a single DNS question with a full message.
pub trait DnsTransport: Send + Sync {
    /// Answers `question`, returning a complete response message.
    fn query(&self, question: &Question) -> Result<Message, DnsError>;
}

/// In-memory authority registry: zones consulted by longest-suffix match.
///
/// This is the simulation-scale transport. It is cheap to clone (`Arc`
/// inside) and safe to share across scanner worker threads.
#[derive(Clone, Default)]
pub struct InMemoryAuthorities {
    inner: Arc<Mutex<AuthoritiesInner>>,
}

#[derive(Default)]
struct AuthoritiesInner {
    /// Zones keyed by apex.
    zones: HashMap<DomainName, Zone>,
    /// Apexes that answer SERVFAIL (fault injection: broken authoritative
    /// servers).
    servfail: HashMap<DomainName, ()>,
    /// Apexes that never answer (fault injection: timeouts).
    blackhole: HashMap<DomainName, ()>,
    /// Total queries served (instrumentation).
    queries: u64,
}

impl InMemoryAuthorities {
    /// Creates an empty registry.
    pub fn new() -> InMemoryAuthorities {
        InMemoryAuthorities::default()
    }

    /// Installs (or replaces) a zone.
    pub fn upsert_zone(&self, zone: Zone) {
        self.inner.lock().zones.insert(zone.apex().clone(), zone);
    }

    /// Removes a zone entirely; returns whether it existed.
    pub fn remove_zone(&self, apex: &DomainName) -> bool {
        self.inner.lock().zones.remove(apex).is_some()
    }

    /// Runs `f` against the zone with the given apex, if present.
    pub fn with_zone<R>(&self, apex: &DomainName, f: impl FnOnce(&mut Zone) -> R) -> Option<R> {
        self.inner.lock().zones.get_mut(apex).map(f)
    }

    /// Marks a zone's servers as failing (SERVFAIL to everything).
    pub fn set_servfail(&self, apex: &DomainName, broken: bool) {
        let mut g = self.inner.lock();
        if broken {
            g.servfail.insert(apex.clone(), ());
        } else {
            g.servfail.remove(apex);
        }
    }

    /// Marks a zone's servers as unreachable (timeout to everything).
    pub fn set_blackhole(&self, apex: &DomainName, dark: bool) {
        let mut g = self.inner.lock();
        if dark {
            g.blackhole.insert(apex.clone(), ());
        } else {
            g.blackhole.remove(apex);
        }
    }

    /// Number of queries served so far.
    pub fn query_count(&self) -> u64 {
        self.inner.lock().queries
    }

    /// Number of installed zones.
    pub fn zone_count(&self) -> usize {
        self.inner.lock().zones.len()
    }

    /// Finds the apex of the zone authoritative for `name` (longest match).
    fn find_apex(g: &AuthoritiesInner, name: &DomainName) -> Option<DomainName> {
        let mut candidate = Some(name.clone());
        while let Some(c) = candidate {
            if g.zones.contains_key(&c) {
                return Some(c);
            }
            candidate = c.parent();
        }
        None
    }
}

impl DnsTransport for InMemoryAuthorities {
    fn query(&self, question: &Question) -> Result<Message, DnsError> {
        let mut g = self.inner.lock();
        g.queries += 1;
        let Some(apex) = Self::find_apex(&g, &question.name) else {
            // No authority at all: the public resolver would get a
            // referral failure; the paper's pipeline sees NXDOMAIN from the
            // TLD for unregistered names.
            return Err(DnsError::NxDomain);
        };
        if g.blackhole.contains_key(&apex) {
            return Err(DnsError::Timeout);
        }
        if g.servfail.contains_key(&apex) {
            return Err(DnsError::ServFail(Rcode::ServFail));
        }
        let zone = &g.zones[&apex];
        let query = Message::query(0, question.clone());
        let mut resp = Message::response_to(&query, Rcode::NoError);
        match zone.lookup(question) {
            ZoneLookup::Answer(records) => {
                resp.answers = records;
            }
            ZoneLookup::NoData(chain) => {
                resp.answers = chain;
                resp.authorities.push(zone.soa_record());
            }
            ZoneLookup::NxDomain => {
                resp.rcode = Rcode::NxDomain;
                resp.authorities.push(zone.soa_record());
            }
            ZoneLookup::NotAuthoritative => {
                resp.rcode = Rcode::Refused;
                resp.flags.aa = false;
            }
        }
        Ok(resp)
    }
}

/// Blocking UDP transport: encodes the question, sends it to `server`, and
/// decodes the response. Used from synchronous scanner contexts; the async
/// server side lives in [`crate::server`].
pub struct UdpTransport {
    /// Authoritative/recursive server address.
    server: SocketAddr,
    /// Per-query timeout.
    timeout: StdDuration,
}

impl UdpTransport {
    /// Creates a transport querying `server` with the given timeout.
    pub fn new(server: SocketAddr, timeout: StdDuration) -> UdpTransport {
        UdpTransport { server, timeout }
    }
}

impl DnsTransport for UdpTransport {
    fn query(&self, question: &Question) -> Result<Message, DnsError> {
        use std::net::UdpSocket;
        let sock =
            UdpSocket::bind(("127.0.0.1", 0)).map_err(|e| DnsError::Transport(e.to_string()))?;
        sock.set_read_timeout(Some(self.timeout))
            .map_err(|e| DnsError::Transport(e.to_string()))?;
        // Derive a transaction ID from the question so retries are stable
        // but concurrent queries rarely collide.
        let id = {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut h = DefaultHasher::new();
            question.hash(&mut h);
            std::process::id().hash(&mut h);
            h.finish() as u16
        };
        let msg = Message::query(id, question.clone());
        sock.send_to(&wire::encode(&msg), self.server)
            .map_err(|e| DnsError::Transport(e.to_string()))?;
        let mut buf = [0u8; wire::MAX_UDP_PAYLOAD];
        let (n, _) = sock.recv_from(&mut buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
            {
                DnsError::Timeout
            } else {
                DnsError::Transport(e.to_string())
            }
        })?;
        let resp = wire::decode(&buf[..n]).map_err(|e| DnsError::Malformed(e.to_string()))?;
        if resp.id != id {
            return Err(DnsError::Malformed("transaction id mismatch".to_string()));
        }
        Ok(resp)
    }
}

/// Cache entry: what we learned and when it expires.
#[derive(Debug, Clone)]
enum CacheEntry {
    Positive {
        lookup: Lookup,
        expires: SimInstant,
    },
    Negative {
        error: DnsError,
        expires: SimInstant,
    },
}

/// A caching, CNAME-chasing stub resolver over any [`DnsTransport`].
pub struct Resolver<T> {
    transport: T,
    cache: Mutex<HashMap<Question, CacheEntry>>,
    /// Maximum CNAME links to follow across authorities.
    max_cname_links: usize,
    /// Negative-cache TTL in seconds (used when no SOA minimum is present).
    negative_ttl: u32,
    /// Cache hit/miss counters (instrumentation).
    hits: Mutex<(u64, u64)>,
}

impl<T: DnsTransport> Resolver<T> {
    /// Creates a resolver with the default CNAME limit (8 links).
    pub fn new(transport: T) -> Resolver<T> {
        Resolver {
            transport,
            cache: Mutex::new(HashMap::new()),
            max_cname_links: 8,
            negative_ttl: 300,
            hits: Mutex::new((0, 0)),
        }
    }

    /// Access to the underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// (cache hits, cache misses) so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        *self.hits.lock()
    }

    /// Drops all cached entries (the scanner does this between snapshots —
    /// each weekly pass must observe fresh state).
    pub fn flush_cache(&self) {
        self.cache.lock().clear();
    }

    /// Resolves `name`/`rtype` at simulated time `now`, consulting and
    /// populating the TTL cache, and chasing CNAMEs across authorities.
    pub fn lookup(
        &self,
        name: &DomainName,
        rtype: RecordType,
        now: SimInstant,
    ) -> Result<Lookup, DnsError> {
        let question = Question::new(name.clone(), rtype);
        if let Some(entry) = self.cache_get(&question, now) {
            return entry;
        }
        let result = self.lookup_uncached(&question, now);
        self.cache_put(&question, &result, now);
        result
    }

    fn cache_get(&self, q: &Question, now: SimInstant) -> Option<Result<Lookup, DnsError>> {
        let mut cache = self.cache.lock();
        let hit = match cache.get(q) {
            Some(CacheEntry::Positive { lookup, expires }) if *expires > now => {
                Some(Ok(lookup.clone()))
            }
            Some(CacheEntry::Negative { error, expires }) if *expires > now => {
                Some(Err(error.clone()))
            }
            Some(_) => {
                cache.remove(q);
                None
            }
            None => None,
        };
        let mut stats = self.hits.lock();
        if hit.is_some() {
            stats.0 += 1;
        } else {
            stats.1 += 1;
        }
        hit
    }

    fn cache_put(&self, q: &Question, result: &Result<Lookup, DnsError>, now: SimInstant) {
        let entry = match result {
            Ok(lookup) => {
                let ttl = lookup
                    .records
                    .iter()
                    .map(|r| r.ttl)
                    .min()
                    .unwrap_or(self.negative_ttl);
                CacheEntry::Positive {
                    lookup: lookup.clone(),
                    expires: now + netbase::Duration::seconds(i64::from(ttl)),
                }
            }
            Err(DnsError::NxDomain) => CacheEntry::Negative {
                error: DnsError::NxDomain,
                expires: now + netbase::Duration::seconds(i64::from(self.negative_ttl)),
            },
            // Transient failures are not cached.
            Err(_) => return,
        };
        self.cache.lock().insert(q.clone(), entry);
    }

    fn lookup_uncached(&self, question: &Question, _now: SimInstant) -> Result<Lookup, DnsError> {
        let mut chain: Vec<DomainName> = Vec::new();
        let mut current = question.name.clone();
        for _ in 0..=self.max_cname_links {
            let q = Question::new(current.clone(), question.rtype);
            let resp = self.transport.query(&q)?;
            match resp.rcode {
                Rcode::NoError => {}
                Rcode::NxDomain => return Err(DnsError::NxDomain),
                other => return Err(DnsError::ServFail(other)),
            }
            // Partition the answer section: records of the target type at
            // any name (post-CNAME owners differ from the query name), and
            // CNAMEs to chase.
            let hits: Vec<Record> = resp
                .answers
                .iter()
                .filter(|r| r.rtype() == question.rtype)
                .cloned()
                .collect();
            // Collect the CNAME links present in the answer.
            let mut links: HashMap<DomainName, DomainName> = HashMap::new();
            for r in &resp.answers {
                if let RecordData::Cname(target) = &r.data {
                    links.insert(r.name.clone(), target.clone());
                }
            }
            // Follow links from `current` as far as the answer takes us.
            while let Some(target) = links.get(&current) {
                chain.push(target.clone());
                if chain.len() > self.max_cname_links {
                    return Err(DnsError::CnameChainTooLong);
                }
                current = target.clone();
            }
            if !hits.is_empty() {
                return Ok(Lookup {
                    records: hits,
                    cname_chain: chain,
                });
            }
            if chain.last() == Some(&current) && !resp.answers.is_empty() {
                // The answer ended on a CNAME whose target this authority
                // does not serve: restart the query at the target.
                continue;
            }
            // NODATA: name exists, no records of this type, no further
            // aliases to chase.
            return Ok(Lookup {
                records: Vec::new(),
                cname_chain: chain,
            });
        }
        Err(DnsError::CnameChainTooLong)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RecordData;
    use netbase::SimDate;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn t0() -> SimInstant {
        SimDate::ymd(2024, 9, 29).at_midnight()
    }

    fn world() -> InMemoryAuthorities {
        let auth = InMemoryAuthorities::new();
        let mut example = Zone::new(n("example.com"));
        example.add_rr(
            &n("example.com"),
            300,
            RecordData::Mx {
                preference: 10,
                exchange: n("mx.example.com"),
            },
        );
        example.add_rr(
            &n("mx.example.com"),
            300,
            RecordData::A("192.0.2.25".parse().unwrap()),
        );
        example.add_rr(
            &n("_mta-sts.example.com"),
            300,
            RecordData::Txt(vec!["v=STSv1; id=20240929;".into()]),
        );
        example.add_rr(
            &n("mta-sts.example.com"),
            300,
            RecordData::Cname(n("mta-sts.provider.net")),
        );
        auth.upsert_zone(example);

        let mut provider = Zone::new(n("provider.net"));
        provider.add_rr(
            &n("mta-sts.provider.net"),
            300,
            RecordData::A("198.51.100.7".parse().unwrap()),
        );
        auth.upsert_zone(provider);
        auth
    }

    #[test]
    fn resolves_mx() {
        let r = Resolver::new(world());
        let got = r.lookup(&n("example.com"), RecordType::Mx, t0()).unwrap();
        assert_eq!(got.mx_hosts(), vec![(10, n("mx.example.com"))]);
        assert!(got.cname_chain.is_empty());
    }

    #[test]
    fn resolves_txt() {
        let r = Resolver::new(world());
        let got = r
            .lookup(&n("_mta-sts.example.com"), RecordType::Txt, t0())
            .unwrap();
        assert_eq!(got.txt_strings(), vec!["v=STSv1; id=20240929;".to_string()]);
    }

    #[test]
    fn chases_cname_across_authorities() {
        let r = Resolver::new(world());
        let got = r
            .lookup(&n("mta-sts.example.com"), RecordType::A, t0())
            .unwrap();
        assert_eq!(got.cname_chain, vec![n("mta-sts.provider.net")]);
        assert_eq!(
            got.a_addrs(),
            vec!["198.51.100.7".parse::<std::net::Ipv4Addr>().unwrap()]
        );
    }

    #[test]
    fn nxdomain_for_unregistered() {
        let r = Resolver::new(world());
        assert_eq!(
            r.lookup(&n("nosuch.example.com"), RecordType::A, t0()),
            Err(DnsError::NxDomain)
        );
        assert_eq!(
            r.lookup(&n("unregistered.org"), RecordType::A, t0()),
            Err(DnsError::NxDomain)
        );
    }

    #[test]
    fn nodata_for_missing_type() {
        let r = Resolver::new(world());
        let got = r
            .lookup(&n("mx.example.com"), RecordType::Txt, t0())
            .unwrap();
        assert!(got.is_nodata());
    }

    #[test]
    fn dangling_cname_is_nxdomain() {
        let auth = world();
        auth.with_zone(&n("provider.net"), |z| {
            z.remove_all(&n("mta-sts.provider.net"));
        });
        let r = Resolver::new(auth);
        let got = r.lookup(&n("mta-sts.example.com"), RecordType::A, t0());
        assert_eq!(got, Err(DnsError::NxDomain));
    }

    #[test]
    fn fault_injection_servfail_and_timeout() {
        let auth = world();
        auth.set_servfail(&n("example.com"), true);
        let r = Resolver::new(auth);
        assert!(matches!(
            r.lookup(&n("example.com"), RecordType::Mx, t0()),
            Err(DnsError::ServFail(_))
        ));
        r.transport().set_servfail(&n("example.com"), false);
        r.transport().set_blackhole(&n("example.com"), true);
        assert_eq!(
            r.lookup(&n("example.com"), RecordType::Ns, t0()),
            Err(DnsError::Timeout)
        );
    }

    #[test]
    fn cache_hits_within_ttl_and_expires_after() {
        let r = Resolver::new(world());
        let before = r.transport().query_count();
        let _ = r.lookup(&n("example.com"), RecordType::Mx, t0()).unwrap();
        let _ = r.lookup(&n("example.com"), RecordType::Mx, t0()).unwrap();
        // Second lookup is served from cache: no new transport query.
        assert_eq!(r.transport().query_count(), before + 1);
        // After the 300s TTL the transport is consulted again.
        let later = t0() + netbase::Duration::seconds(301);
        let _ = r.lookup(&n("example.com"), RecordType::Mx, later).unwrap();
        assert_eq!(r.transport().query_count(), before + 2);
        let (hits, misses) = r.cache_stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 2);
    }

    #[test]
    fn negative_cache_applies_to_nxdomain() {
        let r = Resolver::new(world());
        let q0 = r.transport().query_count();
        let _ = r.lookup(&n("missing.example.com"), RecordType::A, t0());
        let _ = r.lookup(&n("missing.example.com"), RecordType::A, t0());
        assert_eq!(r.transport().query_count(), q0 + 1);
    }

    #[test]
    fn transient_errors_are_not_cached() {
        let auth = world();
        auth.set_blackhole(&n("example.com"), true);
        let r = Resolver::new(auth);
        let _ = r.lookup(&n("example.com"), RecordType::Mx, t0());
        r.transport().set_blackhole(&n("example.com"), false);
        // Recovers immediately: the timeout was not cached.
        assert!(r.lookup(&n("example.com"), RecordType::Mx, t0()).is_ok());
    }

    #[test]
    fn flush_cache_forces_requery() {
        let r = Resolver::new(world());
        let q0 = r.transport().query_count();
        let _ = r.lookup(&n("example.com"), RecordType::Mx, t0()).unwrap();
        r.flush_cache();
        let _ = r.lookup(&n("example.com"), RecordType::Mx, t0()).unwrap();
        assert_eq!(r.transport().query_count(), q0 + 2);
    }

    #[test]
    fn cname_loop_detected() {
        let auth = InMemoryAuthorities::new();
        let mut a = Zone::new(n("a.test"));
        a.add_rr(&n("x.a.test"), 60, RecordData::Cname(n("y.b.test")));
        auth.upsert_zone(a);
        let mut b = Zone::new(n("b.test"));
        b.add_rr(&n("y.b.test"), 60, RecordData::Cname(n("x.a.test")));
        auth.upsert_zone(b);
        let r = Resolver::new(auth);
        assert_eq!(
            r.lookup(&n("x.a.test"), RecordType::A, t0()),
            Err(DnsError::CnameChainTooLong)
        );
    }
}
