//! RFC 1035 wire codec.
//!
//! Encodes and decodes [`Message`]s to/from the DNS wire format, including
//! name compression on encode (owner names and names embedded in NS, CNAME,
//! PTR, MX, SOA RDATA — the types RFC 1035 allows compression for) and
//! pointer chasing with loop protection on decode.
//!
//! The codec is exercised over real UDP sockets by [`crate::server`] and the
//! live-wire examples, and benchmarked (encode/decode throughput, with and
//! without compression) by the `wire` bench.

use crate::types::{
    Flags, Message, Question, Rcode, Record, RecordData, RecordType, SoaRecord, TlsaRecord,
    CLASS_IN,
};
use bytes::{BufMut, BytesMut};
use netbase::DomainName;
use std::collections::HashMap;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Maximum UDP payload the codec will emit without setting TC.
pub const MAX_UDP_PAYLOAD: usize = 4096;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of input while a field was expected.
    Truncated,
    /// A compression pointer pointed forward or formed a loop.
    BadPointer,
    /// A label exceeded 63 octets or a name exceeded 255 octets.
    BadName,
    /// A label contained bytes we do not accept (the study's namespace is
    /// LDH + underscore).
    BadLabel,
    /// RDATA length did not match its content.
    BadRdata(RecordType),
    /// Unsupported class (only IN is handled).
    BadClass(u16),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::BadPointer => write!(f, "invalid compression pointer"),
            WireError::BadName => write!(f, "malformed domain name"),
            WireError::BadLabel => write!(f, "label contains unsupported bytes"),
            WireError::BadRdata(t) => write!(f, "malformed RDATA for {t}"),
            WireError::BadClass(c) => write!(f, "unsupported class {c}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encoder state: output buffer plus the compression offset table.
struct Encoder {
    buf: BytesMut,
    /// Maps a name suffix (as its canonical string) to the offset of its
    /// first occurrence, for compression pointers.
    offsets: HashMap<String, u16>,
    /// Whether compression pointers are emitted (ablation knob; always on
    /// in production use).
    compress: bool,
}

impl Encoder {
    fn new(compress: bool) -> Encoder {
        Encoder {
            buf: BytesMut::with_capacity(512),
            offsets: HashMap::new(),
            compress,
        }
    }

    /// Writes `name` in wire format, emitting a compression pointer for the
    /// longest previously-seen suffix.
    fn put_name(&mut self, name: &DomainName) {
        let labels = name.labels();
        for i in 0..labels.len() {
            let suffix = labels[i..].join(".");
            if self.compress {
                if let Some(&off) = self.offsets.get(&suffix) {
                    self.buf.put_u16(0xC000 | off);
                    return;
                }
                if self.buf.len() <= 0x3FFF {
                    self.offsets.insert(suffix, self.buf.len() as u16);
                }
            }
            let label = labels[i].as_bytes();
            debug_assert!(label.len() <= 63);
            self.buf.put_u8(label.len() as u8);
            self.buf.put_slice(label);
        }
        self.buf.put_u8(0); // root
    }

    fn put_question(&mut self, q: &Question) {
        self.put_name(&q.name);
        self.buf.put_u16(q.rtype.code());
        self.buf.put_u16(CLASS_IN);
    }

    fn put_record(&mut self, r: &Record) {
        self.put_name(&r.name);
        self.buf.put_u16(r.rtype().code());
        self.buf.put_u16(CLASS_IN);
        self.buf.put_u32(r.ttl);
        // Reserve RDLENGTH, fill after writing RDATA.
        let len_pos = self.buf.len();
        self.buf.put_u16(0);
        let start = self.buf.len();
        match &r.data {
            RecordData::A(a) => self.buf.put_slice(&a.octets()),
            RecordData::Aaaa(a) => self.buf.put_slice(&a.octets()),
            RecordData::Ns(n) | RecordData::Cname(n) | RecordData::Ptr(n) => self.put_name(n),
            RecordData::Mx {
                preference,
                exchange,
            } => {
                self.buf.put_u16(*preference);
                self.put_name(exchange);
            }
            RecordData::Txt(strings) => {
                for s in strings {
                    // Character-strings are at most 255 octets; the zone
                    // layer splits longer text before it reaches the codec.
                    debug_assert!(s.len() <= 255);
                    self.buf.put_u8(s.len() as u8);
                    self.buf.put_slice(s.as_bytes());
                }
            }
            RecordData::Soa(soa) => {
                self.put_name(&soa.mname);
                self.put_name(&soa.rname);
                self.buf.put_u32(soa.serial);
                self.buf.put_u32(soa.refresh);
                self.buf.put_u32(soa.retry);
                self.buf.put_u32(soa.expire);
                self.buf.put_u32(soa.minimum);
            }
            RecordData::Tlsa(t) => {
                self.buf.put_u8(t.usage);
                self.buf.put_u8(t.selector);
                self.buf.put_u8(t.matching_type);
                self.buf.put_slice(&t.data);
            }
            RecordData::Opaque { data, .. } => self.buf.put_slice(data),
        }
        let rdlen = (self.buf.len() - start) as u16;
        self.buf[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
    }
}

/// Encodes a message to wire format with name compression.
pub fn encode(msg: &Message) -> Vec<u8> {
    encode_with(msg, true)
}

/// Encodes with compression on or off (the `wire` bench ablates this).
pub fn encode_with(msg: &Message, compress: bool) -> Vec<u8> {
    let mut e = Encoder::new(compress);
    e.buf.put_u16(msg.id);
    let mut hi = 0u8;
    if msg.flags.qr {
        hi |= 0x80;
    }
    // Opcode 0 (QUERY) always.
    if msg.flags.aa {
        hi |= 0x04;
    }
    if msg.flags.tc {
        hi |= 0x02;
    }
    if msg.flags.rd {
        hi |= 0x01;
    }
    let mut lo = msg.rcode.code() & 0x0F;
    if msg.flags.ra {
        lo |= 0x80;
    }
    e.buf.put_u8(hi);
    e.buf.put_u8(lo);
    e.buf.put_u16(msg.questions.len() as u16);
    e.buf.put_u16(msg.answers.len() as u16);
    e.buf.put_u16(msg.authorities.len() as u16);
    e.buf.put_u16(msg.additionals.len() as u16);
    for q in &msg.questions {
        e.put_question(q);
    }
    for r in &msg.answers {
        e.put_record(r);
    }
    for r in &msg.authorities {
        e.put_record(r);
    }
    for r in &msg.additionals {
        e.put_record(r);
    }
    e.buf.to_vec()
}

/// Decoder over the full message bytes (pointers may reference any earlier
/// offset, so decoding needs random access to the whole datagram).
struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn remaining(&self) -> usize {
        self.data.len().saturating_sub(self.pos)
    }

    fn get_u8(&mut self) -> Result<u8, WireError> {
        if self.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let v = self.data[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn get_u16(&mut self) -> Result<u16, WireError> {
        if self.remaining() < 2 {
            return Err(WireError::Truncated);
        }
        let v = u16::from_be_bytes([self.data[self.pos], self.data[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }

    fn get_u32(&mut self) -> Result<u32, WireError> {
        if self.remaining() < 4 {
            return Err(WireError::Truncated);
        }
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.data[self.pos..self.pos + 4]);
        self.pos += 4;
        Ok(u32::from_be_bytes(b))
    }

    fn get_slice(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a (possibly compressed) name starting at the current position.
    fn get_name(&mut self) -> Result<DomainName, WireError> {
        let mut labels: Vec<String> = Vec::new();
        let mut pos = self.pos;
        let mut jumped = false;
        let mut jumps = 0usize;
        let mut total_len = 0usize;
        loop {
            let len = *self.data.get(pos).ok_or(WireError::Truncated)? as usize;
            if len & 0xC0 == 0xC0 {
                // Compression pointer.
                let b2 = *self.data.get(pos + 1).ok_or(WireError::Truncated)? as usize;
                let target = ((len & 0x3F) << 8) | b2;
                // Pointers must reference earlier data; reject forward
                // pointers and loops.
                if target >= pos {
                    return Err(WireError::BadPointer);
                }
                jumps += 1;
                if jumps > 32 {
                    return Err(WireError::BadPointer);
                }
                if !jumped {
                    self.pos = pos + 2;
                    jumped = true;
                }
                pos = target;
                continue;
            }
            if len & 0xC0 != 0 {
                return Err(WireError::BadName); // 0b01/0b10 prefixes unused
            }
            pos += 1;
            if len == 0 {
                break;
            }
            if len > 63 {
                return Err(WireError::BadName);
            }
            total_len += len + 1;
            // 255 wire octets including the root byte = 254 here, which
            // keeps decoded names within `netbase::MAX_NAME_LEN` in
            // presentation form.
            if total_len > 254 {
                return Err(WireError::BadName);
            }
            let raw = self.data.get(pos..pos + len).ok_or(WireError::Truncated)?;
            let label = std::str::from_utf8(raw)
                .map_err(|_| WireError::BadLabel)?
                .to_ascii_lowercase();
            // Enforce the same canonical form `DomainName::parse` does, so
            // hostile wire input can never smuggle in a name the rest of
            // the pipeline (serde round-trips included) would reject.
            if label.contains('*') {
                if label != "*" || !labels.is_empty() {
                    return Err(WireError::BadLabel);
                }
            } else {
                if !label
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
                {
                    return Err(WireError::BadLabel);
                }
                if label.starts_with('-') || label.ends_with('-') {
                    return Err(WireError::BadLabel);
                }
            }
            labels.push(label);
            pos += len;
        }
        if !jumped {
            self.pos = pos;
        }
        if labels.is_empty() {
            return Err(WireError::BadName); // the root name never appears in this study
        }
        Ok(DomainName::from_labels(labels))
    }

    fn get_question(&mut self) -> Result<Question, WireError> {
        let name = self.get_name()?;
        let rtype = RecordType::from_code(self.get_u16()?);
        let class = self.get_u16()?;
        if class != CLASS_IN {
            return Err(WireError::BadClass(class));
        }
        Ok(Question { name, rtype })
    }

    fn get_record(&mut self) -> Result<Record, WireError> {
        let name = self.get_name()?;
        let rtype = RecordType::from_code(self.get_u16()?);
        let class = self.get_u16()?;
        if class != CLASS_IN {
            return Err(WireError::BadClass(class));
        }
        let ttl = self.get_u32()?;
        let rdlen = self.get_u16()? as usize;
        let rdata_end = self.pos + rdlen;
        if rdata_end > self.data.len() {
            return Err(WireError::Truncated);
        }
        let data = match rtype {
            RecordType::A => {
                if rdlen != 4 {
                    return Err(WireError::BadRdata(rtype));
                }
                let o = self.get_slice(4)?;
                RecordData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))
            }
            RecordType::Aaaa => {
                if rdlen != 16 {
                    return Err(WireError::BadRdata(rtype));
                }
                let o = self.get_slice(16)?;
                let mut b = [0u8; 16];
                b.copy_from_slice(o);
                RecordData::Aaaa(Ipv6Addr::from(b))
            }
            RecordType::Ns => RecordData::Ns(self.get_name()?),
            RecordType::Cname => RecordData::Cname(self.get_name()?),
            RecordType::Ptr => RecordData::Ptr(self.get_name()?),
            RecordType::Mx => {
                let preference = self.get_u16()?;
                let exchange = self.get_name()?;
                RecordData::Mx {
                    preference,
                    exchange,
                }
            }
            RecordType::Txt => {
                let mut strings = Vec::new();
                while self.pos < rdata_end {
                    let len = self.get_u8()? as usize;
                    if self.pos + len > rdata_end {
                        return Err(WireError::BadRdata(rtype));
                    }
                    let raw = self.get_slice(len)?;
                    let s = std::str::from_utf8(raw).map_err(|_| WireError::BadRdata(rtype))?;
                    strings.push(s.to_string());
                }
                RecordData::Txt(strings)
            }
            RecordType::Soa => {
                let mname = self.get_name()?;
                let rname = self.get_name()?;
                RecordData::Soa(SoaRecord {
                    mname,
                    rname,
                    serial: self.get_u32()?,
                    refresh: self.get_u32()?,
                    retry: self.get_u32()?,
                    expire: self.get_u32()?,
                    minimum: self.get_u32()?,
                })
            }
            RecordType::Tlsa => {
                if rdlen < 3 {
                    return Err(WireError::BadRdata(rtype));
                }
                let usage = self.get_u8()?;
                let selector = self.get_u8()?;
                let matching_type = self.get_u8()?;
                let data = self.get_slice(rdlen - 3)?.to_vec();
                RecordData::Tlsa(TlsaRecord {
                    usage,
                    selector,
                    matching_type,
                    data,
                })
            }
            RecordType::Other(code) => RecordData::Opaque {
                rtype: code,
                data: self.get_slice(rdlen)?.to_vec(),
            },
        };
        if self.pos != rdata_end {
            return Err(WireError::BadRdata(rtype));
        }
        Ok(Record { name, ttl, data })
    }
}

/// Decodes a message from wire format.
pub fn decode(data: &[u8]) -> Result<Message, WireError> {
    let mut d = Decoder { data, pos: 0 };
    let id = d.get_u16()?;
    let hi = d.get_u8()?;
    let lo = d.get_u8()?;
    let flags = Flags {
        qr: hi & 0x80 != 0,
        aa: hi & 0x04 != 0,
        tc: hi & 0x02 != 0,
        rd: hi & 0x01 != 0,
        ra: lo & 0x80 != 0,
    };
    let rcode = Rcode::from_code(lo & 0x0F);
    let qd = d.get_u16()? as usize;
    let an = d.get_u16()? as usize;
    let ns = d.get_u16()? as usize;
    let ar = d.get_u16()? as usize;
    let mut questions = Vec::with_capacity(qd);
    for _ in 0..qd {
        questions.push(d.get_question()?);
    }
    let mut answers = Vec::with_capacity(an);
    for _ in 0..an {
        answers.push(d.get_record()?);
    }
    let mut authorities = Vec::with_capacity(ns);
    for _ in 0..ns {
        authorities.push(d.get_record()?);
    }
    let mut additionals = Vec::with_capacity(ar);
    for _ in 0..ar {
        additionals.push(d.get_record()?);
    }
    Ok(Message {
        id,
        flags,
        rcode,
        questions,
        answers,
        authorities,
        additionals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn sample_response() -> Message {
        let q = Message::query(0x1234, Question::new(n("example.com"), RecordType::Mx));
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers.push(Record::new(
            n("example.com"),
            3600,
            RecordData::Mx {
                preference: 10,
                exchange: n("mx1.example.com"),
            },
        ));
        r.answers.push(Record::new(
            n("example.com"),
            3600,
            RecordData::Mx {
                preference: 20,
                exchange: n("mx2.example.com"),
            },
        ));
        r.additionals.push(Record::new(
            n("mx1.example.com"),
            3600,
            RecordData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        r
    }

    #[test]
    fn roundtrip_mx_response() {
        let msg = sample_response();
        let bytes = encode(&msg);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn roundtrip_all_record_types() {
        let q = Message::query(1, Question::new(n("d.example.org"), RecordType::Txt));
        let mut m = Message::response_to(&q, Rcode::NoError);
        m.answers = vec![
            Record::new(
                n("d.example.org"),
                60,
                RecordData::A("192.0.2.7".parse().unwrap()),
            ),
            Record::new(
                n("d.example.org"),
                60,
                RecordData::Aaaa("2001:db8::7".parse().unwrap()),
            ),
            Record::new(n("d.example.org"), 60, RecordData::Ns(n("ns1.example.org"))),
            Record::new(
                n("mta-sts.d.example.org"),
                60,
                RecordData::Cname(n("policy.host.example")),
            ),
            Record::new(
                n("7.2.0.192.in-addr.arpa"),
                60,
                RecordData::Ptr(n("d.example.org")),
            ),
            Record::new(
                n("_mta-sts.d.example.org"),
                60,
                RecordData::Txt(vec!["v=STSv1; id=20240101;".into()]),
            ),
            Record::new(
                n("example.org"),
                60,
                RecordData::Soa(SoaRecord {
                    mname: n("ns1.example.org"),
                    rname: n("hostmaster.example.org"),
                    serial: 2024010101,
                    refresh: 7200,
                    retry: 3600,
                    expire: 1209600,
                    minimum: 300,
                }),
            ),
            Record::new(
                n("_25._tcp.mx.d.example.org"),
                60,
                RecordData::Tlsa(TlsaRecord {
                    usage: 3,
                    selector: 1,
                    matching_type: 1,
                    data: vec![0xAB; 32],
                }),
            ),
            Record::new(
                n("d.example.org"),
                60,
                RecordData::Opaque {
                    rtype: 99,
                    data: vec![1, 2, 3],
                },
            ),
        ];
        let bytes = encode(&m);
        assert_eq!(decode(&bytes).unwrap(), m);
    }

    #[test]
    fn compression_shrinks_and_roundtrips() {
        let msg = sample_response();
        let compressed = encode_with(&msg, true);
        let plain = encode_with(&msg, false);
        assert!(
            compressed.len() < plain.len(),
            "{} vs {}",
            compressed.len(),
            plain.len()
        );
        assert_eq!(decode(&compressed).unwrap(), decode(&plain).unwrap());
    }

    #[test]
    fn multi_string_txt_roundtrips() {
        let long = "x".repeat(255);
        let q = Message::query(2, Question::new(n("t.example.com"), RecordType::Txt));
        let mut m = Message::response_to(&q, Rcode::NoError);
        m.answers.push(Record::new(
            n("t.example.com"),
            60,
            RecordData::Txt(vec![long.clone(), "tail".into()]),
        ));
        let back = decode(&encode(&m)).unwrap();
        assert_eq!(
            back.answers[0].data.txt_joined().unwrap(),
            format!("{long}tail")
        );
    }

    #[test]
    fn rejects_truncated_input() {
        let bytes = encode(&sample_response());
        for cut in [0, 1, 5, 11, 13, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn rejects_pointer_loops() {
        // Header + a question whose name is a pointer to itself.
        let mut bytes = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        bytes.extend_from_slice(&[0xC0, 12]); // pointer to offset 12 (itself)
        bytes.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(decode(&bytes), Err(WireError::BadPointer));
    }

    #[test]
    fn rejects_forward_pointers() {
        let mut bytes = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        bytes.extend_from_slice(&[0xC0, 40]); // points past itself
        bytes.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(decode(&bytes), Err(WireError::BadPointer));
    }

    #[test]
    fn rejects_wrong_class() {
        let q = Message::query(9, Question::new(n("example.se"), RecordType::A));
        let mut bytes = encode(&q);
        // Patch QCLASS to CH (3). The question is the last 4 bytes: type, class.
        let len = bytes.len();
        bytes[len - 1] = 3;
        assert_eq!(decode(&bytes), Err(WireError::BadClass(3)));
    }

    #[test]
    fn id_and_flags_roundtrip() {
        let mut m = sample_response();
        m.flags.ra = true;
        m.flags.tc = true;
        m.rcode = Rcode::ServFail;
        let back = decode(&encode(&m)).unwrap();
        assert_eq!(back.flags, m.flags);
        assert_eq!(back.rcode, Rcode::ServFail);
    }
}
