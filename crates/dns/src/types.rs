//! DNS data model: record types, resource records, questions, messages.
//!
//! Only the record types the study touches are implemented; unknown types
//! are carried opaquely so the wire codec round-trips anything it receives.

use netbase::DomainName;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// DNS class; the study only uses the Internet class.
pub const CLASS_IN: u16 = 1;

/// Record type codes (RFC 1035 and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RecordType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of authority (carried in negative responses).
    Soa,
    /// Domain name pointer (reverse DNS; FCrDNS for the SMTP client).
    Ptr,
    /// Mail exchange.
    Mx,
    /// Text record (MTA-STS `_mta-sts`, TLSRPT `_smtp._tls`).
    Txt,
    /// IPv6 host address.
    Aaaa,
    /// TLSA (DANE, RFC 6698) — the baseline protocol.
    Tlsa,
    /// Any other type, preserved by code.
    Other(u16),
}

impl RecordType {
    /// The 16-bit wire code.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Tlsa => 52,
            RecordType::Other(c) => c,
        }
    }

    /// Maps a wire code to a type, folding unknowns into `Other`.
    pub fn from_code(code: u16) -> RecordType {
        match code {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            52 => RecordType::Tlsa,
            other => RecordType::Other(other),
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::Ns => write!(f, "NS"),
            RecordType::Cname => write!(f, "CNAME"),
            RecordType::Soa => write!(f, "SOA"),
            RecordType::Ptr => write!(f, "PTR"),
            RecordType::Mx => write!(f, "MX"),
            RecordType::Txt => write!(f, "TXT"),
            RecordType::Aaaa => write!(f, "AAAA"),
            RecordType::Tlsa => write!(f, "TLSA"),
            RecordType::Other(c) => write!(f, "TYPE{c}"),
        }
    }
}

/// SOA record data (only the fields negative caching needs).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SoaRecord {
    /// Primary name server.
    pub mname: DomainName,
    /// Responsible mailbox, encoded as a domain name.
    pub rname: DomainName,
    /// Zone serial number.
    pub serial: u32,
    /// Refresh interval, seconds.
    pub refresh: u32,
    /// Retry interval, seconds.
    pub retry: u32,
    /// Expiry, seconds.
    pub expire: u32,
    /// Negative-caching TTL, seconds.
    pub minimum: u32,
}

/// TLSA record data (RFC 6698 §2.1) for the DANE baseline.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TlsaRecord {
    /// Certificate usage: 0 CA constraint, 1 service cert constraint,
    /// 2 trust anchor assertion, 3 domain-issued certificate (DANE-EE).
    pub usage: u8,
    /// Selector: 0 full certificate, 1 SubjectPublicKeyInfo.
    pub selector: u8,
    /// Matching type: 0 exact, 1 SHA-256, 2 SHA-512.
    pub matching_type: u8,
    /// Certificate association data.
    pub data: Vec<u8>,
}

/// Typed record data.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Name server.
    Ns(DomainName),
    /// Alias target.
    Cname(DomainName),
    /// Reverse pointer target.
    Ptr(DomainName),
    /// Mail exchange: preference and exchange host.
    Mx {
        preference: u16,
        exchange: DomainName,
    },
    /// Text record: one or more character-strings. MTA-STS consumers join
    /// the strings without separators per RFC 7208-style TXT handling.
    Txt(Vec<String>),
    /// Start of authority.
    Soa(SoaRecord),
    /// DANE TLSA association.
    Tlsa(TlsaRecord),
    /// Opaque data for record types the study does not interpret.
    Opaque { rtype: u16, data: Vec<u8> },
}

impl RecordData {
    /// The record type this data belongs to.
    pub fn rtype(&self) -> RecordType {
        match self {
            RecordData::A(_) => RecordType::A,
            RecordData::Aaaa(_) => RecordType::Aaaa,
            RecordData::Ns(_) => RecordType::Ns,
            RecordData::Cname(_) => RecordType::Cname,
            RecordData::Ptr(_) => RecordType::Ptr,
            RecordData::Mx { .. } => RecordType::Mx,
            RecordData::Txt(_) => RecordType::Txt,
            RecordData::Soa(_) => RecordType::Soa,
            RecordData::Tlsa(_) => RecordType::Tlsa,
            RecordData::Opaque { rtype, .. } => RecordType::from_code(*rtype),
        }
    }

    /// For TXT records: the logical text (character-strings concatenated).
    pub fn txt_joined(&self) -> Option<String> {
        match self {
            RecordData::Txt(parts) => Some(parts.concat()),
            _ => None,
        }
    }
}

/// A resource record: owner name, TTL and typed data (class is always IN).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Record {
    /// Owner name.
    pub name: DomainName,
    /// Time to live, seconds.
    pub ttl: u32,
    /// Typed payload.
    pub data: RecordData,
}

impl Record {
    /// Convenience constructor.
    pub fn new(name: DomainName, ttl: u32, data: RecordData) -> Record {
        Record { name, ttl, data }
    }

    /// The record's type.
    pub fn rtype(&self) -> RecordType {
        self.data.rtype()
    }
}

/// A DNS question.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Question {
    /// Queried name.
    pub name: DomainName,
    /// Queried type.
    pub rtype: RecordType,
}

impl Question {
    /// Convenience constructor.
    pub fn new(name: DomainName, rtype: RecordType) -> Question {
        Question { name, rtype }
    }
}

impl fmt::Display for Question {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.rtype)
    }
}

/// Response codes (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Malformed query.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused.
    Refused,
    /// Any other code.
    Other(u8),
}

impl Rcode {
    /// The 4-bit wire code.
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(c) => c & 0x0F,
        }
    }

    /// Maps a wire code back to an `Rcode`.
    pub fn from_code(code: u8) -> Rcode {
        match code & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Header flag bits the study uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Flags {
    /// Query (false) / response (true).
    pub qr: bool,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncation.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
}

/// A DNS message (header + sections).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Transaction ID.
    pub id: u16,
    /// Header flags.
    pub flags: Flags,
    /// Response code.
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section (SOA for negative answers).
    pub authorities: Vec<Record>,
    /// Additional section.
    pub additionals: Vec<Record>,
}

impl Message {
    /// A query for a single question, recursion desired.
    pub fn query(id: u16, question: Question) -> Message {
        Message {
            id,
            flags: Flags {
                qr: false,
                rd: true,
                ..Flags::default()
            },
            rcode: Rcode::NoError,
            questions: vec![question],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// An authoritative response skeleton mirroring a query.
    pub fn response_to(query: &Message, rcode: Rcode) -> Message {
        Message {
            id: query.id,
            flags: Flags {
                qr: true,
                aa: true,
                tc: false,
                rd: query.flags.rd,
                ra: false,
            },
            rcode,
            questions: query.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_code_roundtrip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Ptr,
            RecordType::Mx,
            RecordType::Txt,
            RecordType::Aaaa,
            RecordType::Tlsa,
            RecordType::Other(999),
        ] {
            assert_eq!(RecordType::from_code(t.code()), t);
        }
    }

    #[test]
    fn rcode_roundtrip() {
        for c in 0u8..16 {
            assert_eq!(Rcode::from_code(c).code(), c);
        }
    }

    #[test]
    fn txt_joining_concatenates_strings() {
        // Long MTA-STS records may be split into multiple character-strings;
        // consumers must join them without separators.
        let d = RecordData::Txt(vec!["v=STSv1; ".into(), "id=20240101;".into()]);
        assert_eq!(d.txt_joined().unwrap(), "v=STSv1; id=20240101;");
        assert_eq!(RecordData::A(Ipv4Addr::LOCALHOST).txt_joined(), None);
    }

    #[test]
    fn response_mirrors_query() {
        let q = Message::query(
            7,
            Question::new("_mta-sts.example.com".parse().unwrap(), RecordType::Txt),
        );
        let r = Message::response_to(&q, Rcode::NxDomain);
        assert_eq!(r.id, 7);
        assert!(r.flags.qr && r.flags.aa && r.flags.rd);
        assert_eq!(r.rcode, Rcode::NxDomain);
        assert_eq!(r.questions, q.questions);
    }
}
