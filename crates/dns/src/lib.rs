//! A small but complete DNS implementation: the first substrate of the
//! MTA-STS measurement study.
//!
//! The paper's pipeline (§3.1, §4.1) is DNS-heavy: for every second-level
//! domain in four TLD zone files it retrieves `TXT` (MTA-STS and TLSRPT
//! records), `MX`, `NS`, `A`/`AAAA` and `CNAME` records (policy-host
//! delegation), plus `PTR` for the FCrDNS setup of the instrumented SMTP
//! client, and `TLSA` for the DANE baseline.
//!
//! This crate provides:
//!
//! - [`types`]: records, questions, messages and response codes;
//! - [`wire`]: the RFC 1035 wire codec, including name compression;
//! - [`zone`]: an authoritative zone store with master-file parsing and
//!   NXDOMAIN/NODATA/CNAME semantics;
//! - [`server`]: an authoritative UDP server (tokio);
//! - [`resolver`]: a stub resolver over a pluggable [`resolver::DnsTransport`]
//!   — real UDP sockets for the live-wire examples, or a direct in-memory
//!   authority registry for simulation-scale scanning — with CNAME chasing
//!   and a TTL cache driven by explicit [`netbase::SimInstant`]s.

pub mod resolver;
pub mod server;
pub mod types;
pub mod wire;
pub mod zone;

pub use resolver::{DnsError, DnsTransport, InMemoryAuthorities, Lookup, Resolver, UdpTransport};
pub use types::{Message, Question, Rcode, Record, RecordData, RecordType, TlsaRecord};
pub use zone::{Zone, ZoneLookup};
