//! Authoritative zones.
//!
//! A [`Zone`] owns all records at or below an apex name and answers
//! questions with correct RFC 1034 semantics: positive answers, CNAME
//! inclusion and restart, NODATA (empty answer + SOA in authority) and
//! NXDOMAIN (with the empty-non-terminal subtlety: a name with no records
//! but with records below it yields NODATA, not NXDOMAIN).
//!
//! Zones can be parsed from and serialized to a master-file-like textual
//! format, mirroring how the paper ingests the daily registry zone files
//! for `.com`, `.net`, `.org` and `.se` (§3.1).

use crate::types::{Question, Record, RecordData, RecordType, SoaRecord, TlsaRecord};
use netbase::DomainName;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Default TTL applied by the zone-file parser when none is given.
pub const DEFAULT_TTL: u32 = 3600;

/// The outcome of an authoritative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneLookup {
    /// Records of the requested type exist at the name. If the name was
    /// reached through CNAMEs, the chain records precede the final answers.
    Answer(Vec<Record>),
    /// The name exists (or is an empty non-terminal) but has no records of
    /// the requested type. Contains any CNAME chain traversed before the
    /// terminal name, which is how a resolver learns partial aliases.
    NoData(Vec<Record>),
    /// The name does not exist in the zone.
    NxDomain,
    /// The question is outside this zone's authority.
    NotAuthoritative,
}

/// An authoritative zone: an apex plus a name→records map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Zone {
    /// Apex (origin) of the zone.
    apex: DomainName,
    /// SOA parameters advertised in negative answers.
    soa: SoaRecord,
    /// All records, keyed by owner name.
    records: BTreeMap<DomainName, Vec<Record>>,
}

impl Zone {
    /// Creates an empty zone with a default SOA.
    pub fn new(apex: DomainName) -> Zone {
        let soa = SoaRecord {
            mname: apex.prefixed("ns1").expect("apex accepts ns1 label"),
            rname: apex.prefixed("hostmaster").expect("apex accepts label"),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1_209_600,
            minimum: 300,
        };
        Zone {
            apex,
            soa,
            records: BTreeMap::new(),
        }
    }

    /// The zone apex.
    pub fn apex(&self) -> &DomainName {
        &self.apex
    }

    /// The zone's SOA parameters.
    pub fn soa(&self) -> &SoaRecord {
        &self.soa
    }

    /// Replaces the SOA parameters.
    pub fn set_soa(&mut self, soa: SoaRecord) {
        self.soa = soa;
    }

    /// Bumps the SOA serial (zone-change bookkeeping for longitudinal
    /// snapshots).
    pub fn bump_serial(&mut self) {
        self.soa.serial = self.soa.serial.wrapping_add(1);
    }

    /// Adds a record.
    ///
    /// # Panics
    ///
    /// Panics if the owner name is outside the zone (a configuration bug in
    /// the simulation, never a runtime input).
    pub fn add(&mut self, record: Record) {
        assert!(
            record.name.is_subdomain_of(&self.apex),
            "record {} outside zone {}",
            record.name,
            self.apex
        );
        self.records
            .entry(record.name.clone())
            .or_default()
            .push(record);
    }

    /// Convenience: add a record by parts.
    pub fn add_rr(&mut self, name: &DomainName, ttl: u32, data: RecordData) {
        self.add(Record::new(name.clone(), ttl, data));
    }

    /// Removes all records at `name` of type `rtype`; returns how many were
    /// removed.
    pub fn remove(&mut self, name: &DomainName, rtype: RecordType) -> usize {
        let Some(list) = self.records.get_mut(name) else {
            return 0;
        };
        let before = list.len();
        list.retain(|r| r.rtype() != rtype);
        let removed = before - list.len();
        if list.is_empty() {
            self.records.remove(name);
        }
        removed
    }

    /// Removes every record at `name`.
    pub fn remove_all(&mut self, name: &DomainName) -> usize {
        self.records.remove(name).map_or(0, |v| v.len())
    }

    /// All records at `name` of type `rtype` (no CNAME processing).
    pub fn get(&self, name: &DomainName, rtype: RecordType) -> Vec<Record> {
        self.records
            .get(name)
            .map(|v| v.iter().filter(|r| r.rtype() == rtype).cloned().collect())
            .unwrap_or_default()
    }

    /// Whether any record exists at exactly `name`.
    pub fn name_exists(&self, name: &DomainName) -> bool {
        self.records.contains_key(name)
    }

    /// Whether any record exists at or below `name` (empty non-terminal
    /// detection). Zones in this study are per-domain and small, so a linear
    /// scan is fine.
    fn subtree_exists(&self, name: &DomainName) -> bool {
        self.records.keys().any(|k| k.is_subdomain_of(name))
    }

    /// Number of owner names in the zone.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the zone holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over all records.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.values().flatten()
    }

    /// The SOA as a record at the apex (for negative responses).
    pub fn soa_record(&self) -> Record {
        Record::new(
            self.apex.clone(),
            self.soa.minimum,
            RecordData::Soa(self.soa.clone()),
        )
    }

    /// Answers a question with RFC 1034 §4.3.2 semantics, following CNAMEs
    /// *within this zone* (up to 8 links).
    pub fn lookup(&self, q: &Question) -> ZoneLookup {
        if !q.name.is_subdomain_of(&self.apex) {
            return ZoneLookup::NotAuthoritative;
        }
        let mut chain: Vec<Record> = Vec::new();
        let mut current = q.name.clone();
        for _ in 0..8 {
            let here = self.records.get(&current);
            if let Some(records) = here {
                // Exact-type match?
                let hits: Vec<Record> = records
                    .iter()
                    .filter(|r| r.rtype() == q.rtype)
                    .cloned()
                    .collect();
                if !hits.is_empty() {
                    let mut out = chain;
                    out.extend(hits);
                    return ZoneLookup::Answer(out);
                }
                // CNAME present (and the query itself is not for CNAME)?
                if q.rtype != RecordType::Cname {
                    if let Some(cname) = records
                        .iter()
                        .find(|r| matches!(r.data, RecordData::Cname(_)))
                    {
                        chain.push(cname.clone());
                        let RecordData::Cname(target) = &cname.data else {
                            unreachable!()
                        };
                        if target.is_subdomain_of(&self.apex) {
                            current = target.clone();
                            continue;
                        }
                        // Target is out-of-zone: the resolver restarts there.
                        return ZoneLookup::NoData(chain);
                    }
                }
                return ZoneLookup::NoData(chain);
            }
            // Name has no records: empty non-terminal or NXDOMAIN.
            if self.subtree_exists(&current) || current == self.apex {
                return ZoneLookup::NoData(chain);
            }
            return ZoneLookup::NxDomain;
        }
        // CNAME chain too long; treat as server failure upstream.
        ZoneLookup::NoData(chain)
    }

    /// Serializes the zone to the textual format accepted by
    /// [`Zone::parse`].
    pub fn to_zonefile(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("$ORIGIN {}.\n", self.apex));
        out.push_str(&format!(
            "@ {} IN SOA {}. {}. {} {} {} {} {}\n",
            self.soa.minimum,
            self.soa.mname,
            self.soa.rname,
            self.soa.serial,
            self.soa.refresh,
            self.soa.retry,
            self.soa.expire,
            self.soa.minimum
        ));
        for r in self.iter() {
            out.push_str(&format_record(r, &self.apex));
            out.push('\n');
        }
        out
    }

    /// Parses a zone from the textual format produced by
    /// [`Zone::to_zonefile`]. Lines are `name ttl IN type rdata...`;
    /// `@` denotes the origin; `$ORIGIN` sets the apex; `;` starts a
    /// comment; names without a trailing dot are relative to the origin.
    pub fn parse(text: &str) -> Result<Zone, ZoneParseError> {
        let mut origin: Option<DomainName> = None;
        let mut zone: Option<Zone> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| ZoneParseError {
                line: lineno + 1,
                message: msg.to_string(),
            };
            if let Some(rest) = line.strip_prefix("$ORIGIN") {
                let name = rest.trim().trim_end_matches('.');
                let apex = DomainName::parse(name).map_err(|e| err(&e.to_string()))?;
                origin = Some(apex.clone());
                zone = Some(Zone::new(apex));
                continue;
            }
            let origin_ref = origin
                .as_ref()
                .ok_or_else(|| err("record before $ORIGIN"))?;
            let mut parts = line.split_whitespace();
            let name_tok = parts.next().ok_or_else(|| err("missing name"))?;
            let name = parse_name_token(name_tok, origin_ref).map_err(|e| err(&e))?;
            let ttl_tok = parts.next().ok_or_else(|| err("missing ttl"))?;
            let ttl: u32 = ttl_tok.parse().map_err(|_| err("bad ttl"))?;
            let class = parts.next().ok_or_else(|| err("missing class"))?;
            if class != "IN" {
                return Err(err("only class IN supported"));
            }
            let rtype = parts.next().ok_or_else(|| err("missing type"))?;
            let rest: Vec<&str> = parts.collect();
            let zone_mut = zone.as_mut().expect("zone set alongside origin");
            match rtype {
                "SOA" => {
                    if rest.len() != 7 {
                        return Err(err("SOA needs 7 fields"));
                    }
                    let soa = SoaRecord {
                        mname: parse_name_token(rest[0], origin_ref).map_err(|e| err(&e))?,
                        rname: parse_name_token(rest[1], origin_ref).map_err(|e| err(&e))?,
                        serial: rest[2].parse().map_err(|_| err("bad serial"))?,
                        refresh: rest[3].parse().map_err(|_| err("bad refresh"))?,
                        retry: rest[4].parse().map_err(|_| err("bad retry"))?,
                        expire: rest[5].parse().map_err(|_| err("bad expire"))?,
                        minimum: rest[6].parse().map_err(|_| err("bad minimum"))?,
                    };
                    zone_mut.set_soa(soa);
                }
                "A" => {
                    let a: Ipv4Addr = rest
                        .first()
                        .ok_or_else(|| err("A needs an address"))?
                        .parse()
                        .map_err(|_| err("bad IPv4 address"))?;
                    zone_mut.add(Record::new(name, ttl, RecordData::A(a)));
                }
                "AAAA" => {
                    let a: Ipv6Addr = rest
                        .first()
                        .ok_or_else(|| err("AAAA needs an address"))?
                        .parse()
                        .map_err(|_| err("bad IPv6 address"))?;
                    zone_mut.add(Record::new(name, ttl, RecordData::Aaaa(a)));
                }
                "NS" => {
                    let t = parse_name_token(
                        rest.first().ok_or_else(|| err("NS needs a target"))?,
                        origin_ref,
                    )
                    .map_err(|e| err(&e))?;
                    zone_mut.add(Record::new(name, ttl, RecordData::Ns(t)));
                }
                "CNAME" => {
                    let t = parse_name_token(
                        rest.first().ok_or_else(|| err("CNAME needs a target"))?,
                        origin_ref,
                    )
                    .map_err(|e| err(&e))?;
                    zone_mut.add(Record::new(name, ttl, RecordData::Cname(t)));
                }
                "PTR" => {
                    let t = parse_name_token(
                        rest.first().ok_or_else(|| err("PTR needs a target"))?,
                        origin_ref,
                    )
                    .map_err(|e| err(&e))?;
                    zone_mut.add(Record::new(name, ttl, RecordData::Ptr(t)));
                }
                "MX" => {
                    if rest.len() != 2 {
                        return Err(err("MX needs preference and exchange"));
                    }
                    let preference: u16 = rest[0].parse().map_err(|_| err("bad preference"))?;
                    let exchange = parse_name_token(rest[1], origin_ref).map_err(|e| err(&e))?;
                    zone_mut.add(Record::new(
                        name,
                        ttl,
                        RecordData::Mx {
                            preference,
                            exchange,
                        },
                    ));
                }
                "TXT" => {
                    // Use the raw line from the first quote so spacing
                    // inside quoted strings survives tokenization.
                    let raw_tail = line
                        .find('"')
                        .map(|i| &line[i..])
                        .ok_or_else(|| err("TXT needs quoted strings"))?;
                    let strings =
                        parse_txt_strings(raw_tail).ok_or_else(|| err("bad TXT quoting"))?;
                    zone_mut.add(Record::new(name, ttl, RecordData::Txt(strings)));
                }
                "TLSA" => {
                    if rest.len() != 4 {
                        return Err(err("TLSA needs 4 fields"));
                    }
                    let usage: u8 = rest[0].parse().map_err(|_| err("bad usage"))?;
                    let selector: u8 = rest[1].parse().map_err(|_| err("bad selector"))?;
                    let matching_type: u8 =
                        rest[2].parse().map_err(|_| err("bad matching type"))?;
                    let data = hex_decode(rest[3]).ok_or_else(|| err("bad hex data"))?;
                    zone_mut.add(Record::new(
                        name,
                        ttl,
                        RecordData::Tlsa(TlsaRecord {
                            usage,
                            selector,
                            matching_type,
                            data,
                        }),
                    ));
                }
                other => return Err(err(&format!("unsupported record type {other}"))),
            }
        }
        zone.ok_or(ZoneParseError {
            line: 0,
            message: "no $ORIGIN found".to_string(),
        })
    }
}

/// Error from [`Zone::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneParseError {
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ZoneParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "zone parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ZoneParseError {}

/// Strips a `;` comment, but only outside double-quoted strings — MTA-STS
/// TXT payloads (`"v=STSv1; id=...;"`) are full of semicolons.
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_quotes = !in_quotes,
            ';' if !in_quotes => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Resolves a zone-file name token against the origin: `@` is the origin,
/// a trailing dot means absolute, otherwise relative.
fn parse_name_token(tok: &str, origin: &DomainName) -> Result<DomainName, String> {
    if tok == "@" {
        return Ok(origin.clone());
    }
    if let Some(absolute) = tok.strip_suffix('.') {
        return DomainName::parse(absolute).map_err(|e| e.to_string());
    }
    DomainName::parse(&format!("{tok}.{origin}")).map_err(|e| e.to_string())
}

/// Parses one or more double-quoted strings: `"a" "b"`.
fn parse_txt_strings(s: &str) -> Option<Vec<String>> {
    let mut out = Vec::new();
    let mut rest = s.trim();
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let end = rest.find('"')?;
        out.push(rest[..end].to_string());
        rest = rest[end + 1..].trim_start();
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Decodes a lowercase/uppercase hex string.
fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// Encodes bytes as lowercase hex.
fn hex_encode(data: &[u8]) -> String {
    data.iter().map(|b| format!("{b:02x}")).collect()
}

/// Formats a record as one zone-file line relative to `origin`.
fn format_record(r: &Record, origin: &DomainName) -> String {
    let name = format_name(&r.name, origin);
    let rdata = match &r.data {
        RecordData::A(a) => format!("A {a}"),
        RecordData::Aaaa(a) => format!("AAAA {a}"),
        RecordData::Ns(t) => format!("NS {t}."),
        RecordData::Cname(t) => format!("CNAME {t}."),
        RecordData::Ptr(t) => format!("PTR {t}."),
        RecordData::Mx {
            preference,
            exchange,
        } => format!("MX {preference} {exchange}."),
        RecordData::Txt(strings) => format!(
            "TXT {}",
            strings
                .iter()
                .map(|s| format!("\"{s}\""))
                .collect::<Vec<_>>()
                .join(" ")
        ),
        RecordData::Soa(_) => unreachable!("SOA emitted separately"),
        RecordData::Tlsa(t) => format!(
            "TLSA {} {} {} {}",
            t.usage,
            t.selector,
            t.matching_type,
            hex_encode(&t.data)
        ),
        RecordData::Opaque { rtype, data } => format!("TYPE{rtype} \\# {}", hex_encode(data)),
    };
    format!("{name} {} IN {rdata}", r.ttl)
}

/// Presents `name` relative to `origin` where possible.
fn format_name(name: &DomainName, origin: &DomainName) -> String {
    if name == origin {
        "@".to_string()
    } else if name.is_strict_subdomain_of(origin) {
        let keep = name.label_count() - origin.label_count();
        name.labels()[..keep].join(".")
    } else {
        format!("{name}.")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn sample_zone() -> Zone {
        let mut z = Zone::new(n("example.com"));
        z.add_rr(
            &n("example.com"),
            300,
            RecordData::A("192.0.2.10".parse().unwrap()),
        );
        z.add_rr(
            &n("example.com"),
            300,
            RecordData::Mx {
                preference: 10,
                exchange: n("mx1.example.com"),
            },
        );
        z.add_rr(
            &n("mx1.example.com"),
            300,
            RecordData::A("192.0.2.25".parse().unwrap()),
        );
        z.add_rr(
            &n("_mta-sts.example.com"),
            300,
            RecordData::Txt(vec!["v=STSv1; id=20240101;".into()]),
        );
        z.add_rr(
            &n("mta-sts.example.com"),
            300,
            RecordData::Cname(n("mta-sts.provider.net")),
        );
        z.add_rr(
            &n("www.deep.example.com"),
            300,
            RecordData::A("192.0.2.80".parse().unwrap()),
        );
        z
    }

    #[test]
    fn positive_answer() {
        let z = sample_zone();
        let got = z.lookup(&Question::new(n("example.com"), RecordType::Mx));
        let ZoneLookup::Answer(recs) = got else {
            panic!("expected answer, got {got:?}")
        };
        assert_eq!(recs.len(), 1);
        assert!(matches!(
            recs[0].data,
            RecordData::Mx { preference: 10, .. }
        ));
    }

    #[test]
    fn nxdomain_vs_nodata() {
        let z = sample_zone();
        // Nonexistent name under the zone.
        assert_eq!(
            z.lookup(&Question::new(n("missing.example.com"), RecordType::A)),
            ZoneLookup::NxDomain
        );
        // Existing name, missing type.
        assert_eq!(
            z.lookup(&Question::new(n("mx1.example.com"), RecordType::Txt)),
            ZoneLookup::NoData(vec![])
        );
        // Empty non-terminal: deep.example.com has no records itself but
        // www.deep.example.com exists below it.
        assert_eq!(
            z.lookup(&Question::new(n("deep.example.com"), RecordType::A)),
            ZoneLookup::NoData(vec![])
        );
        // The apex always exists.
        assert_eq!(
            z.lookup(&Question::new(n("example.com"), RecordType::Txt)),
            ZoneLookup::NoData(vec![])
        );
    }

    #[test]
    fn out_of_zone_is_not_authoritative() {
        let z = sample_zone();
        assert_eq!(
            z.lookup(&Question::new(n("other.org"), RecordType::A)),
            ZoneLookup::NotAuthoritative
        );
    }

    #[test]
    fn cname_to_external_target_reports_chain() {
        let z = sample_zone();
        let got = z.lookup(&Question::new(n("mta-sts.example.com"), RecordType::A));
        let ZoneLookup::NoData(chain) = got else {
            panic!("expected NoData with chain, got {got:?}")
        };
        assert_eq!(chain.len(), 1);
        assert!(matches!(&chain[0].data, RecordData::Cname(t) if *t == n("mta-sts.provider.net")));
    }

    #[test]
    fn cname_within_zone_is_followed() {
        let mut z = sample_zone();
        z.add_rr(
            &n("alias.example.com"),
            300,
            RecordData::Cname(n("mx1.example.com")),
        );
        let got = z.lookup(&Question::new(n("alias.example.com"), RecordType::A));
        let ZoneLookup::Answer(recs) = got else {
            panic!("expected answer, got {got:?}")
        };
        assert_eq!(recs.len(), 2); // CNAME + A
        assert!(matches!(recs[0].data, RecordData::Cname(_)));
        assert!(matches!(recs[1].data, RecordData::A(_)));
    }

    #[test]
    fn cname_query_returns_cname_itself() {
        let z = sample_zone();
        let got = z.lookup(&Question::new(n("mta-sts.example.com"), RecordType::Cname));
        let ZoneLookup::Answer(recs) = got else {
            panic!("expected answer, got {got:?}")
        };
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn cname_loop_terminates() {
        let mut z = Zone::new(n("loop.test"));
        z.add_rr(&n("a.loop.test"), 60, RecordData::Cname(n("b.loop.test")));
        z.add_rr(&n("b.loop.test"), 60, RecordData::Cname(n("a.loop.test")));
        let got = z.lookup(&Question::new(n("a.loop.test"), RecordType::A));
        assert!(matches!(got, ZoneLookup::NoData(_)));
    }

    #[test]
    fn add_remove_get() {
        let mut z = sample_zone();
        assert_eq!(z.get(&n("example.com"), RecordType::Mx).len(), 1);
        assert_eq!(z.remove(&n("example.com"), RecordType::Mx), 1);
        assert_eq!(z.get(&n("example.com"), RecordType::Mx).len(), 0);
        assert!(z.name_exists(&n("example.com"))); // A record remains
        assert_eq!(z.remove_all(&n("example.com")), 1);
        assert!(!z.name_exists(&n("example.com")));
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn adding_out_of_zone_record_panics() {
        let mut z = Zone::new(n("example.com"));
        z.add_rr(
            &n("other.net"),
            60,
            RecordData::A("192.0.2.1".parse().unwrap()),
        );
    }

    #[test]
    fn zonefile_roundtrip() {
        let z = sample_zone();
        let text = z.to_zonefile();
        let back = Zone::parse(&text).unwrap();
        assert_eq!(back.apex(), z.apex());
        // All records survive (ordering within a name is preserved).
        let mut a: Vec<_> = z.iter().cloned().collect();
        let mut b: Vec<_> = back.iter().cloned().collect();
        a.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        b.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        assert_eq!(a, b);
        assert_eq!(back.soa().minimum, z.soa().minimum);
    }

    #[test]
    fn zonefile_parse_errors_carry_line_numbers() {
        let bad = "$ORIGIN example.com.\n@ 300 IN MX onlyonefield\n";
        let err = Zone::parse(bad).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(Zone::parse("@ 1 IN A 1.2.3.4\n").is_err()); // no $ORIGIN
        assert!(Zone::parse("$ORIGIN example.com.\n@ 300 CH A 1.2.3.4\n").is_err());
    }

    #[test]
    fn zonefile_relative_and_absolute_names() {
        let text = "\
$ORIGIN example.se.
@ 300 IN MX 10 mail
mail 300 IN A 192.0.2.3
ext 300 IN CNAME mta-sts.provider.net.
; a comment line
";
        let z = Zone::parse(text).unwrap();
        let mx = z.get(&n("example.se"), RecordType::Mx);
        assert!(
            matches!(&mx[0].data, RecordData::Mx { exchange, .. } if *exchange == n("mail.example.se"))
        );
        let cn = z.get(&n("ext.example.se"), RecordType::Cname);
        assert!(matches!(&cn[0].data, RecordData::Cname(t) if *t == n("mta-sts.provider.net")));
    }

    #[test]
    fn txt_multi_string_zonefile() {
        let text = "$ORIGIN t.org.\n_mta-sts 60 IN TXT \"v=STSv1; \" \"id=1;\"\n";
        let z = Zone::parse(text).unwrap();
        let txt = z.get(&n("_mta-sts.t.org"), RecordType::Txt);
        assert_eq!(txt[0].data.txt_joined().unwrap(), "v=STSv1; id=1;");
    }

    #[test]
    fn tlsa_zonefile_roundtrip() {
        let text = "$ORIGIN d.net.\n_25._tcp.mx 60 IN TLSA 3 1 1 abcdef0123456789\n";
        let z = Zone::parse(text).unwrap();
        let recs = z.get(&n("_25._tcp.mx.d.net"), RecordType::Tlsa);
        let RecordData::Tlsa(t) = &recs[0].data else {
            panic!()
        };
        assert_eq!((t.usage, t.selector, t.matching_type), (3, 1, 1));
        assert_eq!(t.data, vec![0xab, 0xcd, 0xef, 0x01, 0x23, 0x45, 0x67, 0x89]);
        let back = Zone::parse(&z.to_zonefile()).unwrap();
        assert_eq!(back.get(&n("_25._tcp.mx.d.net"), RecordType::Tlsa), recs);
    }
}
