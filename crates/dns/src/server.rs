//! Authoritative DNS server over UDP (tokio).
//!
//! Serves one or more [`Zone`]s on a real socket so the live-wire examples
//! and integration tests can exercise the scanner over the actual RFC 1035
//! protocol. Follows the structured-concurrency idiom from the session's
//! async guides: the server is a single task owned by its caller, shut down
//! through a watch channel rather than by detaching and forgetting.

use crate::resolver::{DnsError, DnsTransport, InMemoryAuthorities};
use crate::types::{Message, Question, Rcode};
use crate::wire;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::sync::watch;

/// An authoritative UDP DNS server bound to a local address.
pub struct AuthServer {
    /// The bound address (useful when binding to port 0).
    addr: SocketAddr,
    shutdown: watch::Sender<bool>,
    handle: tokio::task::JoinHandle<()>,
}

impl AuthServer {
    /// Binds to `bind` (use port 0 for an ephemeral port) and serves the
    /// zones registered in `authorities`. The server shares the registry:
    /// zone updates made after spawning are visible to subsequent queries,
    /// which is how longitudinal tests mutate the world between snapshots.
    pub async fn spawn(
        bind: SocketAddr,
        authorities: InMemoryAuthorities,
    ) -> std::io::Result<AuthServer> {
        let socket = UdpSocket::bind(bind).await?;
        let addr = socket.local_addr()?;
        let (shutdown, mut shutdown_rx) = watch::channel(false);
        let socket = Arc::new(socket);
        let handle = tokio::spawn(async move {
            let mut buf = vec![0u8; wire::MAX_UDP_PAYLOAD];
            loop {
                tokio::select! {
                    _ = shutdown_rx.changed() => break,
                    recv = socket.recv_from(&mut buf) => {
                        let Ok((n, peer)) = recv else { break };
                        if let Some(resp) = handle_datagram(&authorities, &buf[..n]) {
                            // Best effort: a lost response datagram is a
                            // normal UDP condition the client retries over.
                            let _ = socket.send_to(&resp, peer).await;
                        }
                    }
                }
            }
        });
        Ok(AuthServer {
            addr,
            shutdown,
            handle,
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and waits for the task to finish.
    pub async fn shutdown(self) {
        let _ = self.shutdown.send(true);
        let _ = self.handle.await;
    }
}

/// Processes one request datagram into a response datagram.
///
/// Returns `None` for datagrams that cannot be answered at all (unparsable
/// header); malformed-but-parsable queries get FORMERR, per-zone fault
/// injection (timeouts) yields no response.
fn handle_datagram(authorities: &InMemoryAuthorities, datagram: &[u8]) -> Option<Vec<u8>> {
    let query = match wire::decode(datagram) {
        Ok(q) => q,
        Err(_) => {
            // Try to salvage the ID to send FORMERR; the header is the
            // first 12 bytes.
            if datagram.len() < 2 {
                return None;
            }
            let id = u16::from_be_bytes([datagram[0], datagram[1]]);
            let mut resp = Message::query(
                id,
                Question::new(
                    // Placeholder question; FORMERR responses may omit it, but
                    // keeping the message well-formed simplifies clients.
                    "invalid.query".parse().expect("static name"),
                    crate::types::RecordType::A,
                ),
            );
            resp.questions.clear();
            resp.flags.qr = true;
            resp.rcode = Rcode::FormErr;
            return Some(wire::encode(&resp));
        }
    };
    let Some(question) = query.questions.first() else {
        let mut resp = Message::response_to(&query, Rcode::FormErr);
        resp.flags.aa = false;
        return Some(wire::encode(&resp));
    };
    match authorities.query(question) {
        Ok(mut resp) => {
            resp.id = query.id;
            resp.flags.rd = query.flags.rd;
            Some(wire::encode(&resp))
        }
        Err(DnsError::NxDomain) => {
            let mut resp = Message::response_to(&query, Rcode::NxDomain);
            resp.flags.aa = false; // no authority found at all
            Some(wire::encode(&resp))
        }
        Err(DnsError::Timeout) => None, // black-holed zone: drop silently
        Err(_) => {
            let mut resp = Message::response_to(&query, Rcode::ServFail);
            resp.flags.aa = false;
            Some(wire::encode(&resp))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::{Resolver, UdpTransport};
    use crate::types::{RecordData, RecordType};
    use crate::zone::Zone;
    use netbase::{DomainName, SimDate};
    use std::time::Duration as StdDuration;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn authorities() -> InMemoryAuthorities {
        let auth = InMemoryAuthorities::new();
        let mut z = Zone::new(n("wire.test"));
        z.add_rr(
            &n("wire.test"),
            120,
            RecordData::Mx {
                preference: 5,
                exchange: n("mx.wire.test"),
            },
        );
        z.add_rr(
            &n("mx.wire.test"),
            120,
            RecordData::A("192.0.2.2".parse().unwrap()),
        );
        z.add_rr(
            &n("_mta-sts.wire.test"),
            120,
            RecordData::Txt(vec!["v=STSv1; id=abc123;".into()]),
        );
        auth.upsert_zone(z);
        auth
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn serves_queries_over_real_udp() {
        let server = AuthServer::spawn("127.0.0.1:0".parse().unwrap(), authorities())
            .await
            .unwrap();
        let addr = server.addr();
        // The UdpTransport is blocking; run it off the async threads.
        let result = tokio::task::spawn_blocking(move || {
            let transport = UdpTransport::new(addr, StdDuration::from_secs(2));
            let resolver = Resolver::new(transport);
            let now = SimDate::ymd(2024, 9, 29).at_midnight();
            let mx = resolver.lookup(&n("wire.test"), RecordType::Mx, now)?;
            let txt = resolver.lookup(&n("_mta-sts.wire.test"), RecordType::Txt, now)?;
            let missing = resolver.lookup(&n("nope.wire.test"), RecordType::A, now);
            Ok::<_, crate::resolver::DnsError>((mx, txt, missing))
        })
        .await
        .unwrap()
        .unwrap();
        let (mx, txt, missing) = result;
        assert_eq!(mx.mx_hosts(), vec![(5, n("mx.wire.test"))]);
        assert_eq!(txt.txt_strings(), vec!["v=STSv1; id=abc123;".to_string()]);
        assert_eq!(missing, Err(DnsError::NxDomain));
        server.shutdown().await;
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn garbage_datagram_gets_formerr_or_silence() {
        let server = AuthServer::spawn("127.0.0.1:0".parse().unwrap(), authorities())
            .await
            .unwrap();
        let addr = server.addr();
        let reply = tokio::task::spawn_blocking(move || {
            let sock = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
            sock.set_read_timeout(Some(StdDuration::from_millis(500)))
                .unwrap();
            sock.send_to(&[0xAB, 0xCD, 0xFF], addr).unwrap();
            let mut buf = [0u8; 512];
            sock.recv_from(&mut buf).map(|(n, _)| buf[..n].to_vec())
        })
        .await
        .unwrap();
        // Short garbage still has a 2-byte ID, so we expect FORMERR.
        let bytes = reply.expect("expected a FORMERR response");
        let msg = wire::decode(&bytes).unwrap();
        assert_eq!(msg.rcode, Rcode::FormErr);
        assert_eq!(msg.id, 0xABCD);
        server.shutdown().await;
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn zone_updates_visible_after_spawn() {
        let auth = authorities();
        let server = AuthServer::spawn("127.0.0.1:0".parse().unwrap(), auth.clone())
            .await
            .unwrap();
        let addr = server.addr();
        // Mutate the zone after the server started.
        auth.with_zone(&n("wire.test"), |z| {
            z.add_rr(
                &n("_smtp._tls.wire.test"),
                60,
                RecordData::Txt(vec!["v=TLSRPTv1; rua=mailto:tls@wire.test".into()]),
            );
        });
        let lookup = tokio::task::spawn_blocking(move || {
            let transport = UdpTransport::new(addr, StdDuration::from_secs(2));
            let resolver = Resolver::new(transport);
            resolver.lookup(
                &n("_smtp._tls.wire.test"),
                RecordType::Txt,
                SimDate::ymd(2024, 9, 29).at_midnight(),
            )
        })
        .await
        .unwrap()
        .unwrap();
        assert_eq!(lookup.txt_strings().len(), 1);
        server.shutdown().await;
    }
}
