//! Simulated certificate authorities and the trust store.
//!
//! Models the slice of the WebPKI the study interacts with: root and
//! intermediate CAs issuing domain-validated leaf certificates. Policy
//! hosting providers in the paper obtain certificates for
//! `mta-sts.<customer>` via ACME (§2.5, Table 2) — [`CertAuthority::issue_leaf`]
//! is that operation's analogue.
//!
//! Key simplification: a [`KeyPair`]'s "public key" is its `key_id`, and
//! signatures are keyed digests under that id (see [`crate::digest`]).
//! Verification therefore only needs the id, exactly as real verification
//! only needs the public key. Nothing here resists a real adversary.

use crate::cert::SimCert;
use crate::digest::keyed_digest;
use netbase::{DomainName, SimInstant};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global key-id allocator; ids only need to be unique within a process.
static NEXT_KEY_ID: AtomicU64 = AtomicU64::new(1);

/// A simulated key pair (the id doubles as the public key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    /// Public identifier.
    pub key_id: u64,
}

impl KeyPair {
    /// Generates a fresh key pair.
    pub fn generate() -> KeyPair {
        KeyPair {
            key_id: NEXT_KEY_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Creates a key pair with a fixed id (deterministic ecosystems derive
    /// ids from their seeded RNG instead of the global allocator).
    pub fn with_id(key_id: u64) -> KeyPair {
        KeyPair { key_id }
    }
}

/// A certificate authority: a key pair plus its own certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertAuthority {
    /// The CA's certificate (self-signed for roots).
    pub cert: SimCert,
    /// The CA's key pair.
    pub key: KeyPair,
    /// Serial counter for issued certificates.
    next_serial: u64,
}

impl CertAuthority {
    /// Creates a self-signed root CA valid over `[not_before, not_after]`.
    pub fn new_root(name: &str, not_before: SimInstant, not_after: SimInstant) -> CertAuthority {
        Self::new_root_with_key(name, KeyPair::generate(), not_before, not_after)
    }

    /// Root CA with a caller-provided key (for deterministic ecosystems).
    pub fn new_root_with_key(
        name: &str,
        key: KeyPair,
        not_before: SimInstant,
        not_after: SimInstant,
    ) -> CertAuthority {
        let mut cert = SimCert {
            serial: 0,
            subject_cn: name.to_string(),
            san: Vec::new(),
            issuer_cn: name.to_string(),
            subject_key_id: key.key_id,
            issuer_key_id: key.key_id,
            not_before,
            not_after,
            is_ca: true,
            signature: [0; 32],
        };
        cert.signature = keyed_digest(key.key_id, &cert.tbs_bytes());
        CertAuthority {
            cert,
            key,
            next_serial: 1,
        }
    }

    /// Issues an intermediate CA signed by `self`.
    pub fn issue_intermediate(
        &mut self,
        name: &str,
        not_before: SimInstant,
        not_after: SimInstant,
    ) -> CertAuthority {
        let key = KeyPair::generate();
        let mut cert = SimCert {
            serial: self.take_serial(),
            subject_cn: name.to_string(),
            san: Vec::new(),
            issuer_cn: self.cert.subject_cn.clone(),
            subject_key_id: key.key_id,
            issuer_key_id: self.key.key_id,
            not_before,
            not_after,
            is_ca: true,
            signature: [0; 32],
        };
        cert.signature = keyed_digest(self.key.key_id, &cert.tbs_bytes());
        CertAuthority {
            cert,
            key,
            next_serial: 1,
        }
    }

    /// Issues a domain-validated leaf certificate for `names` (the first
    /// name becomes the CN). This is the ACME issuance analogue used by
    /// policy-hosting providers and mail operators.
    pub fn issue_leaf(
        &mut self,
        names: &[DomainName],
        not_before: SimInstant,
        not_after: SimInstant,
    ) -> SimCert {
        assert!(!names.is_empty(), "a leaf needs at least one name");
        let key = KeyPair::generate();
        let mut cert = SimCert {
            serial: self.take_serial(),
            subject_cn: names[0].to_string(),
            san: names.to_vec(),
            issuer_cn: self.cert.subject_cn.clone(),
            subject_key_id: key.key_id,
            issuer_key_id: self.key.key_id,
            not_before,
            not_after,
            is_ca: false,
            signature: [0; 32],
        };
        cert.signature = keyed_digest(self.key.key_id, &cert.tbs_bytes());
        cert
    }

    fn take_serial(&mut self) -> u64 {
        let s = self.next_serial;
        self.next_serial += 1;
        s
    }
}

/// Creates a self-signed leaf certificate — the misconfiguration the paper
/// repeatedly observes on self-managed policy servers and MX hosts, and the
/// June 8, 2024 third-party incident (Figure 5).
pub fn self_signed_leaf(
    names: &[DomainName],
    not_before: SimInstant,
    not_after: SimInstant,
) -> SimCert {
    assert!(!names.is_empty(), "a leaf needs at least one name");
    let key = KeyPair::generate();
    let mut cert = SimCert {
        serial: 1,
        subject_cn: names[0].to_string(),
        san: names.to_vec(),
        issuer_cn: names[0].to_string(),
        subject_key_id: key.key_id,
        issuer_key_id: key.key_id,
        not_before,
        not_after,
        is_ca: false,
        signature: [0; 32],
    };
    cert.signature = keyed_digest(key.key_id, &cert.tbs_bytes());
    cert
}

/// The set of trusted root key ids (the "system trust store").
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustStore {
    roots: HashSet<u64>,
}

impl TrustStore {
    /// An empty store (nothing validates).
    pub fn empty() -> TrustStore {
        TrustStore::default()
    }

    /// Adds a root CA.
    pub fn add_root(&mut self, root: &CertAuthority) {
        self.roots.insert(root.key.key_id);
    }

    /// Adds a root by key id.
    pub fn add_root_key(&mut self, key_id: u64) {
        self.roots.insert(key_id);
    }

    /// Whether `key_id` is a trusted root key.
    pub fn is_trusted_root_key(&self, key_id: u64) -> bool {
        self.roots.contains(&key_id)
    }

    /// Number of trusted roots.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// True if no roots are trusted.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbase::SimDate;

    fn window() -> (SimInstant, SimInstant) {
        (
            SimDate::ymd(2021, 1, 1).at_midnight(),
            SimDate::ymd(2031, 1, 1).at_midnight(),
        )
    }

    #[test]
    fn root_is_self_signed_and_valid() {
        let (nb, na) = window();
        let root = CertAuthority::new_root("Sim Root", nb, na);
        assert!(root.cert.is_self_signed());
        assert!(root.cert.signature_valid());
        assert!(root.cert.is_ca);
    }

    #[test]
    fn issuance_chain_links_by_key_ids() {
        let (nb, na) = window();
        let mut root = CertAuthority::new_root("Sim Root", nb, na);
        let mut inter = root.issue_intermediate("Sim Intermediate", nb, na);
        let leaf = inter.issue_leaf(&["mx.example.com".parse().unwrap()], nb, na);
        assert_eq!(leaf.issuer_key_id, inter.key.key_id);
        assert_eq!(inter.cert.issuer_key_id, root.key.key_id);
        assert!(leaf.signature_valid());
        assert!(inter.cert.signature_valid());
        assert!(!leaf.is_ca);
    }

    #[test]
    fn serials_increment() {
        let (nb, na) = window();
        let mut root = CertAuthority::new_root("Sim Root", nb, na);
        let a = root.issue_leaf(&["a.example.com".parse().unwrap()], nb, na);
        let b = root.issue_leaf(&["b.example.com".parse().unwrap()], nb, na);
        assert_ne!(a.serial, b.serial);
    }

    #[test]
    fn self_signed_leaf_is_flagged() {
        let (nb, na) = window();
        let c = self_signed_leaf(&["mta-sts.example.com".parse().unwrap()], nb, na);
        assert!(c.is_self_signed());
        assert!(c.signature_valid());
        assert!(!c.is_ca);
    }

    #[test]
    fn trust_store_membership() {
        let (nb, na) = window();
        let root = CertAuthority::new_root("Sim Root", nb, na);
        let other = CertAuthority::new_root("Other Root", nb, na);
        let mut store = TrustStore::empty();
        assert!(store.is_empty());
        store.add_root(&root);
        assert!(store.is_trusted_root_key(root.key.key_id));
        assert!(!store.is_trusted_root_key(other.key.key_id));
        assert_eq!(store.len(), 1);
    }
}
