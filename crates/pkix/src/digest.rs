//! Simulated digests and signatures.
//!
//! **Not cryptography.** The study's validation logic only needs digests to
//! be deterministic and collision-free in practice within a simulation; it
//! never defends against an adversary computing preimages. We use four
//! lanes of FNV-1a with different bases, yielding a 32-byte value shaped
//! like a SHA-256 output so DANE TLSA `matching_type=1` code paths are
//! structurally faithful.

/// Output size in bytes, matching SHA-256 for structural fidelity.
pub const DIGEST_LEN: usize = 32;

/// A 32-byte simulated digest.
pub type Digest = [u8; DIGEST_LEN];

/// Computes the simulated digest of `data`.
pub fn digest(data: &[u8]) -> Digest {
    let mut out = [0u8; DIGEST_LEN];
    for lane in 0..4u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64 ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for &b in data {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // A final avalanche so lanes differ substantially.
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        out[lane as usize * 8..(lane as usize + 1) * 8].copy_from_slice(&h.to_be_bytes());
    }
    out
}

/// Computes a keyed digest: the simulated signature of `data` under the
/// private key `key_secret`. "Verification" recomputes it from the *key id*
/// — see [`crate::authority::KeyPair`] for the simplification involved.
pub fn keyed_digest(key: u64, data: &[u8]) -> Digest {
    let mut buf = Vec::with_capacity(8 + data.len());
    buf.extend_from_slice(&key.to_be_bytes());
    buf.extend_from_slice(data);
    digest(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(digest(b"hello"), digest(b"hello"));
    }

    #[test]
    fn distinguishes_inputs() {
        assert_ne!(digest(b"hello"), digest(b"hellp"));
        assert_ne!(digest(b""), digest(b"\0"));
        assert_ne!(digest(b"ab"), digest(b"ba"));
    }

    #[test]
    fn keyed_digest_depends_on_key() {
        assert_ne!(keyed_digest(1, b"data"), keyed_digest(2, b"data"));
        assert_eq!(keyed_digest(7, b"data"), keyed_digest(7, b"data"));
    }

    #[test]
    fn no_collisions_over_a_large_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..50_000u32 {
            let d = digest(&i.to_be_bytes());
            assert!(seen.insert(d), "collision at {i}");
        }
    }
}
