//! Simulated PKIX (X.509) certificates and validation.
//!
//! MTA-STS hinges on the web PKI twice: the HTTPS policy server must present
//! a certificate valid for `mta-sts.<domain>` (§2.2.2 of the paper), and
//! every MX host must present one valid for its own name (§2.2.3). The
//! paper's misconfiguration taxonomy distinguishes expired certificates,
//! self-signed certificates, Common Name / Subject Alternative Name
//! mismatches, and servers with *no* certificate installed for the requested
//! name (§4.3.3-§4.3.4).
//!
//! This crate models exactly the semantics those analyses need — names,
//! validity windows, issuer chains, a trust store — with *simulated*
//! signatures (a keyed digest, not real cryptography; see [`digest`]). The
//! shape of validation, and every error class, matches real PKIX.
//!
//! - [`cert`]: the certificate structure and its binary codec (carried in
//!   toy-TLS handshake frames);
//! - [`authority`]: simulated CAs, root/intermediate/leaf issuance, ACME-
//!   style domain-validated issuance used by policy-hosting providers;
//! - [`validate`]: chain building and verification, RFC 6125 host-name
//!   matching, and the full [`validate::CertError`] taxonomy;
//! - [`digest`]: the non-cryptographic digest used for signatures and TLSA
//!   matching (shared with the DANE baseline).

pub mod authority;
pub mod cert;
pub mod digest;
pub mod validate;

pub use authority::{CertAuthority, KeyPair, TrustStore};
pub use cert::SimCert;
pub use validate::{validate_chain, CertError};
