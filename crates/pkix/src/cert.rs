//! The simulated certificate structure and its binary codec.

use crate::digest::{keyed_digest, Digest};
use netbase::{DomainName, SimInstant};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simulated X.509 certificate.
///
/// Fields mirror the subset of X.509 the study's analyses read: subject
/// Common Name, Subject Alternative Names, validity window, issuer linkage
/// (by subject name + key id), a basic-constraints CA flag, and a signature
/// over the to-be-signed portion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimCert {
    /// Serial number, unique per issuing authority.
    pub serial: u64,
    /// Subject common name. For host certificates this is a DNS name and may
    /// be a wildcard pattern (`*.example.com`); for CAs it is a display name.
    pub subject_cn: String,
    /// Subject alternative names (DNS names; may include wildcards).
    pub san: Vec<DomainName>,
    /// Issuer common name (== `subject_cn` for self-signed certificates).
    pub issuer_cn: String,
    /// Public key identifier of the subject.
    pub subject_key_id: u64,
    /// Public key identifier of the issuer (== `subject_key_id` when
    /// self-signed).
    pub issuer_key_id: u64,
    /// Start of validity.
    pub not_before: SimInstant,
    /// End of validity.
    pub not_after: SimInstant,
    /// Basic constraints: whether this certificate may sign others.
    pub is_ca: bool,
    /// Signature over [`SimCert::tbs_bytes`] by the issuer key.
    pub signature: Digest,
}

impl SimCert {
    /// The "to-be-signed" serialization: everything except the signature.
    pub fn tbs_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(128);
        buf.extend_from_slice(&self.serial.to_be_bytes());
        push_str(&mut buf, &self.subject_cn);
        buf.extend_from_slice(&(self.san.len() as u32).to_be_bytes());
        for name in &self.san {
            push_str(&mut buf, &name.to_string());
        }
        push_str(&mut buf, &self.issuer_cn);
        buf.extend_from_slice(&self.subject_key_id.to_be_bytes());
        buf.extend_from_slice(&self.issuer_key_id.to_be_bytes());
        buf.extend_from_slice(&self.not_before.unix_secs().to_be_bytes());
        buf.extend_from_slice(&self.not_after.unix_secs().to_be_bytes());
        buf.push(u8::from(self.is_ca));
        buf
    }

    /// Shifts the validity window by `delta` and re-signs with the issuer
    /// key — exactly the certificate the same authority would have issued
    /// `delta` later. Incremental world construction uses this to re-date
    /// unchanged endpoints' certificates between snapshots so a delta-built
    /// world validates identically to a from-scratch build at the new date.
    pub fn shift_validity(&mut self, delta: netbase::Duration) {
        self.not_before += delta;
        self.not_after += delta;
        self.signature = keyed_digest(self.issuer_key_id, &self.tbs_bytes());
    }

    /// Whether the certificate is self-signed (issuer == subject key).
    pub fn is_self_signed(&self) -> bool {
        self.issuer_key_id == self.subject_key_id
    }

    /// Whether the signature verifies against the claimed issuer key.
    pub fn signature_valid(&self) -> bool {
        keyed_digest(self.issuer_key_id, &self.tbs_bytes()) == self.signature
    }

    /// Whether `now` falls within the validity window.
    pub fn in_validity_window(&self, now: SimInstant) -> bool {
        self.not_before <= now && now <= self.not_after
    }

    /// All DNS names this certificate claims: the SAN list, plus the CN when
    /// it parses as a DNS name *and* the SAN list is empty (legacy CN-only
    /// certificates, which the study still observes in the wild).
    pub fn dns_names(&self) -> Vec<DomainName> {
        if !self.san.is_empty() {
            return self.san.clone();
        }
        DomainName::parse(&self.subject_cn)
            .map(|d| vec![d])
            .unwrap_or_default()
    }

    /// Serializes to the compact binary form carried in toy-TLS frames.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = self.tbs_bytes();
        buf.extend_from_slice(&self.signature);
        buf
    }

    /// Parses the binary form produced by [`SimCert::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<SimCert, CertDecodeError> {
        let mut r = Reader { data, pos: 0 };
        let serial = r.u64()?;
        let subject_cn = r.string()?;
        let san_len = r.u32()? as usize;
        if san_len > 1024 {
            return Err(CertDecodeError("unreasonable SAN count".into()));
        }
        let mut san = Vec::with_capacity(san_len);
        for _ in 0..san_len {
            let s = r.string()?;
            san.push(DomainName::parse(&s).map_err(|e| CertDecodeError(format!("bad SAN: {e}")))?);
        }
        let issuer_cn = r.string()?;
        let subject_key_id = r.u64()?;
        let issuer_key_id = r.u64()?;
        let not_before = SimInstant::from_unix_secs(r.i64()?);
        let not_after = SimInstant::from_unix_secs(r.i64()?);
        let is_ca = r.u8()? != 0;
        let sig_bytes = r.take(crate::digest::DIGEST_LEN)?;
        let mut signature = [0u8; crate::digest::DIGEST_LEN];
        signature.copy_from_slice(sig_bytes);
        if r.pos != data.len() {
            return Err(CertDecodeError("trailing bytes".into()));
        }
        Ok(SimCert {
            serial,
            subject_cn,
            san,
            issuer_cn,
            subject_key_id,
            issuer_key_id,
            not_before,
            not_after,
            is_ca,
            signature,
        })
    }
}

/// Error decoding a certificate from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertDecodeError(pub String);

impl fmt::Display for CertDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "certificate decode error: {}", self.0)
    }
}

impl std::error::Error for CertDecodeError {}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
    buf.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CertDecodeError> {
        if self.data.len() - self.pos < n {
            return Err(CertDecodeError("truncated".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CertDecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CertDecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CertDecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    fn i64(&mut self) -> Result<i64, CertDecodeError> {
        Ok(self.u64()? as i64)
    }

    fn string(&mut self) -> Result<String, CertDecodeError> {
        let len = self.u32()? as usize;
        if len > 4096 {
            return Err(CertDecodeError("unreasonable string length".into()));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CertDecodeError("non-utf8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbase::SimDate;

    fn sample() -> SimCert {
        let nb = SimDate::ymd(2024, 1, 1).at_midnight();
        let na = SimDate::ymd(2024, 12, 31).at_midnight();
        let mut c = SimCert {
            serial: 42,
            subject_cn: "mta-sts.example.com".into(),
            san: vec![
                "mta-sts.example.com".parse().unwrap(),
                "*.example.com".parse().unwrap(),
            ],
            issuer_cn: "Sim Intermediate CA 1".into(),
            subject_key_id: 1001,
            issuer_key_id: 2002,
            not_before: nb,
            not_after: na,
            is_ca: false,
            signature: [0; 32],
        };
        c.signature = keyed_digest(c.issuer_key_id, &c.tbs_bytes());
        c
    }

    #[test]
    fn binary_roundtrip() {
        let c = sample();
        let bytes = c.to_bytes();
        let back = SimCert::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing() {
        let bytes = sample().to_bytes();
        for cut in [0, 4, 10, bytes.len() - 1] {
            assert!(SimCert::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(SimCert::from_bytes(&extended).is_err());
    }

    #[test]
    fn signature_verifies_and_tamper_fails() {
        let mut c = sample();
        assert!(c.signature_valid());
        c.subject_cn = "evil.example.com".into();
        assert!(!c.signature_valid());
    }

    #[test]
    fn validity_window() {
        let c = sample();
        assert!(c.in_validity_window(SimDate::ymd(2024, 6, 1).at_midnight()));
        assert!(!c.in_validity_window(SimDate::ymd(2023, 12, 31).at_midnight()));
        assert!(!c.in_validity_window(SimDate::ymd(2025, 1, 1).at_midnight()));
    }

    #[test]
    fn self_signed_detection() {
        let mut c = sample();
        assert!(!c.is_self_signed());
        c.issuer_key_id = c.subject_key_id;
        assert!(c.is_self_signed());
    }

    #[test]
    fn dns_names_prefers_san_falls_back_to_cn() {
        let c = sample();
        assert_eq!(c.dns_names().len(), 2);
        let mut cn_only = sample();
        cn_only.san.clear();
        assert_eq!(
            cn_only.dns_names(),
            vec!["mta-sts.example.com".parse::<DomainName>().unwrap()]
        );
        let mut display_cn = sample();
        display_cn.san.clear();
        display_cn.subject_cn = "Some CA Display Name".into();
        assert!(display_cn.dns_names().is_empty());
    }
}
