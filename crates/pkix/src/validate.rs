//! Chain validation and RFC 6125 host-name matching.
//!
//! The error taxonomy here is the paper's: §4.3.3 separates policy-server
//! TLS failures into CN/SAN mismatches, missing certificates and self-signed
//! certificates; §4.3.4 and Figure 6 use the same classes for MX hosts
//! (self-signed, expired, CN mismatch).

use crate::authority::TrustStore;
use crate::cert::SimCert;
use netbase::{DomainName, SimInstant};
use serde::{Deserialize, Serialize};
use std::fmt;

/// PKIX validation failures, ordered roughly by where in the handshake they
/// surface.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CertError {
    /// The server presented no certificate at all (the paper's "missing
    /// certificates installed for the domain" — SSL alert class, prominent
    /// for the DMARCReport third-party in §4.3.3).
    NoCertificate,
    /// The leaf certificate has expired.
    Expired,
    /// The leaf certificate is not yet valid.
    NotYetValid,
    /// The chain terminates in a self-signed certificate that is not a
    /// trusted root.
    SelfSigned,
    /// The chain's issuer is unknown to the trust store.
    UnknownIssuer,
    /// A signature in the chain does not verify.
    BadSignature,
    /// An intermediate lacks the CA basic constraint.
    NotACa,
    /// A non-leaf certificate in the chain is outside its validity window.
    IntermediateExpired,
    /// The certificate does not cover the requested host name
    /// (CN/SAN mismatch).
    NameMismatch {
        /// The name the client wanted.
        wanted: DomainName,
        /// The names the certificate presented.
        presented: Vec<String>,
    },
    /// The chain was empty or structurally broken (issuer links don't
    /// connect).
    BrokenChain,
}

impl CertError {
    /// Short machine-readable label used in scan reports.
    pub fn label(&self) -> &'static str {
        match self {
            CertError::NoCertificate => "no-certificate",
            CertError::Expired => "expired",
            CertError::NotYetValid => "not-yet-valid",
            CertError::SelfSigned => "self-signed",
            CertError::UnknownIssuer => "unknown-issuer",
            CertError::BadSignature => "bad-signature",
            CertError::NotACa => "not-a-ca",
            CertError::IntermediateExpired => "intermediate-expired",
            CertError::NameMismatch { .. } => "name-mismatch",
            CertError::BrokenChain => "broken-chain",
        }
    }
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::NameMismatch { wanted, presented } => {
                write!(
                    f,
                    "certificate does not match {wanted} (presented: {presented:?})"
                )
            }
            other => write!(f, "{}", other.label()),
        }
    }
}

impl std::error::Error for CertError {}

/// RFC 6125 §6.4.3 host-name matching against one presented identifier.
///
/// - Comparison is case-insensitive (names are canonical lowercase here).
/// - A wildcard is accepted only as the complete leftmost label and matches
///   exactly one label (`*.example.com` matches `mta-sts.example.com`, not
///   `example.com` nor `a.b.example.com`).
/// - Wildcards must leave at least two labels after them (no `*.com`).
pub fn host_matches_identifier(host: &DomainName, identifier: &DomainName) -> bool {
    if identifier.is_wildcard() {
        // Reject over-broad wildcards like `*.com`.
        if identifier.label_count() < 3 {
            return false;
        }
        host.matches_pattern(identifier)
    } else {
        host == identifier
    }
}

/// Whether a certificate covers `host` through any of its DNS names (SANs,
/// with legacy CN fallback).
pub fn cert_covers_host(cert: &SimCert, host: &DomainName) -> bool {
    cert.dns_names()
        .iter()
        .any(|id| host_matches_identifier(host, id))
}

/// Validates a presented chain (`chain[0]` = leaf, rest = intermediates)
/// for `host` at time `now` against `roots`.
///
/// The checks, in the order real implementations surface them:
/// 1. a certificate must be present;
/// 2. every signature must verify and issuer links must connect;
/// 3. the chain must anchor in the trust store (self-signed leaves get the
///    distinct [`CertError::SelfSigned`]);
/// 4. validity windows (leaf errors reported as `Expired`/`NotYetValid`,
///    intermediate ones as `IntermediateExpired`);
/// 5. the leaf must cover `host` (CN/SAN matching per RFC 6125).
pub fn validate_chain(
    chain: &[SimCert],
    host: &DomainName,
    now: SimInstant,
    roots: &TrustStore,
) -> Result<(), CertError> {
    let Some(leaf) = chain.first() else {
        return Err(CertError::NoCertificate);
    };

    // Structural pass over the chain: signatures and issuer links.
    for (i, cert) in chain.iter().enumerate() {
        if !cert.signature_valid() {
            return Err(CertError::BadSignature);
        }
        if i > 0 && !cert.is_ca {
            return Err(CertError::NotACa);
        }
        if let Some(next) = chain.get(i + 1) {
            if cert.issuer_key_id != next.subject_key_id {
                return Err(CertError::BrokenChain);
            }
        }
    }

    // Anchor check.
    let last = chain.last().expect("chain is non-empty");
    if !roots.is_trusted_root_key(last.issuer_key_id) {
        // Distinguish the classic self-signed case from a merely unknown CA.
        if last.is_self_signed() {
            return Err(CertError::SelfSigned);
        }
        return Err(CertError::UnknownIssuer);
    }

    // Validity windows: leaf first (the error users see), then the rest.
    if now > leaf.not_after {
        return Err(CertError::Expired);
    }
    if now < leaf.not_before {
        return Err(CertError::NotYetValid);
    }
    for cert in &chain[1..] {
        if !cert.in_validity_window(now) {
            return Err(CertError::IntermediateExpired);
        }
    }

    // Host-name matching.
    if !cert_covers_host(leaf, host) {
        return Err(CertError::NameMismatch {
            wanted: host.clone(),
            presented: leaf.dns_names().iter().map(|d| d.to_string()).collect(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::{self_signed_leaf, CertAuthority, TrustStore};
    use netbase::SimDate;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    struct World {
        root: CertAuthority,
        inter: CertAuthority,
        store: TrustStore,
        nb: SimInstant,
        na: SimInstant,
        now: SimInstant,
    }

    fn world() -> World {
        let nb = SimDate::ymd(2023, 1, 1).at_midnight();
        let na = SimDate::ymd(2026, 1, 1).at_midnight();
        let now = SimDate::ymd(2024, 9, 29).at_midnight();
        let mut root = CertAuthority::new_root("Sim Root", nb, na);
        let inter = root.issue_intermediate("Sim Intermediate", nb, na);
        let mut store = TrustStore::empty();
        store.add_root(&root);
        World {
            root,
            inter,
            store,
            nb,
            na,
            now,
        }
    }

    #[test]
    fn valid_chain_passes() {
        let mut w = world();
        let leaf = w.inter.issue_leaf(&[n("mta-sts.example.com")], w.nb, w.na);
        let chain = vec![leaf, w.inter.cert.clone(), w.root.cert.clone()];
        assert_eq!(
            validate_chain(&chain, &n("mta-sts.example.com"), w.now, &w.store),
            Ok(())
        );
    }

    #[test]
    fn leaf_directly_from_root_passes() {
        let mut w = world();
        let leaf = w.root.issue_leaf(&[n("mx.example.com")], w.nb, w.na);
        let chain = vec![leaf];
        // Chain of just the leaf: its issuer key is the trusted root.
        assert_eq!(
            validate_chain(&chain, &n("mx.example.com"), w.now, &w.store),
            Ok(())
        );
    }

    #[test]
    fn empty_chain_is_no_certificate() {
        let w = world();
        assert_eq!(
            validate_chain(&[], &n("x.example.com"), w.now, &w.store),
            Err(CertError::NoCertificate)
        );
    }

    #[test]
    fn expired_leaf() {
        let mut w = world();
        let leaf = w.inter.issue_leaf(
            &[n("mta-sts.example.com")],
            w.nb,
            SimDate::ymd(2024, 1, 1).at_midnight(),
        );
        let chain = vec![leaf, w.inter.cert.clone()];
        assert_eq!(
            validate_chain(&chain, &n("mta-sts.example.com"), w.now, &w.store),
            Err(CertError::Expired)
        );
    }

    #[test]
    fn not_yet_valid_leaf() {
        let mut w = world();
        let leaf = w.inter.issue_leaf(
            &[n("mta-sts.example.com")],
            SimDate::ymd(2025, 1, 1).at_midnight(),
            w.na,
        );
        let chain = vec![leaf, w.inter.cert.clone()];
        assert_eq!(
            validate_chain(&chain, &n("mta-sts.example.com"), w.now, &w.store),
            Err(CertError::NotYetValid)
        );
    }

    #[test]
    fn self_signed_leaf_rejected_distinctly() {
        let w = world();
        let leaf = self_signed_leaf(&[n("mta-sts.example.com")], w.nb, w.na);
        assert_eq!(
            validate_chain(&[leaf], &n("mta-sts.example.com"), w.now, &w.store),
            Err(CertError::SelfSigned)
        );
    }

    #[test]
    fn unknown_issuer_rejected() {
        let mut other_root = CertAuthority::new_root(
            "Rogue Root",
            SimDate::ymd(2023, 1, 1).at_midnight(),
            SimDate::ymd(2026, 1, 1).at_midnight(),
        );
        let w = world();
        let leaf = other_root.issue_leaf(&[n("mta-sts.example.com")], w.nb, w.na);
        assert_eq!(
            validate_chain(&[leaf], &n("mta-sts.example.com"), w.now, &w.store),
            Err(CertError::UnknownIssuer)
        );
    }

    #[test]
    fn name_mismatch_reports_names() {
        let mut w = world();
        // The classic §4.3.3 error: certificate for the bare domain, not the
        // mta-sts subdomain.
        let leaf = w
            .inter
            .issue_leaf(&[n("example.com"), n("www.example.com")], w.nb, w.na);
        let chain = vec![leaf, w.inter.cert.clone()];
        let got = validate_chain(&chain, &n("mta-sts.example.com"), w.now, &w.store);
        let Err(CertError::NameMismatch { wanted, presented }) = got else {
            panic!("expected NameMismatch, got {got:?}")
        };
        assert_eq!(wanted, n("mta-sts.example.com"));
        assert!(presented.contains(&"www.example.com".to_string()));
    }

    #[test]
    fn wildcard_certificate_matching() {
        let mut w = world();
        let leaf = w.inter.issue_leaf(&[n("*.example.com")], w.nb, w.na);
        let chain = vec![leaf, w.inter.cert.clone()];
        assert_eq!(
            validate_chain(&chain, &n("mta-sts.example.com"), w.now, &w.store),
            Ok(())
        );
        // One label only: apex and deeper names do not match.
        assert!(validate_chain(&chain, &n("example.com"), w.now, &w.store).is_err());
        assert!(validate_chain(&chain, &n("a.b.example.com"), w.now, &w.store).is_err());
    }

    #[test]
    fn overbroad_wildcard_rejected() {
        assert!(!host_matches_identifier(&n("example.com"), &n("*.com")));
    }

    #[test]
    fn tampered_signature_detected() {
        let mut w = world();
        let mut leaf = w.inter.issue_leaf(&[n("mx.example.com")], w.nb, w.na);
        leaf.san.push(n("extra.example.com")); // invalidates the signature
        let chain = vec![leaf, w.inter.cert.clone()];
        assert_eq!(
            validate_chain(&chain, &n("mx.example.com"), w.now, &w.store),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn non_ca_intermediate_rejected() {
        let mut w = world();
        // A leaf "signing" another leaf: forge the issuer linkage.
        let fake_inter = w.inter.issue_leaf(&[n("notaca.example.com")], w.nb, w.na);
        let mut leaf = w.inter.issue_leaf(&[n("mx.example.com")], w.nb, w.na);
        leaf.issuer_key_id = fake_inter.subject_key_id;
        leaf.signature = crate::digest::keyed_digest(fake_inter.subject_key_id, &leaf.tbs_bytes());
        let chain = vec![leaf, fake_inter, w.inter.cert.clone()];
        assert_eq!(
            validate_chain(&chain, &n("mx.example.com"), w.now, &w.store),
            Err(CertError::NotACa)
        );
    }

    #[test]
    fn broken_issuer_link_rejected() {
        let mut w = world();
        let leaf = w.inter.issue_leaf(&[n("mx.example.com")], w.nb, w.na);
        // Skip the intermediate: leaf's issuer key is the intermediate, but
        // the next cert in the chain is the root.
        let chain = vec![leaf, w.root.cert.clone()];
        assert_eq!(
            validate_chain(&chain, &n("mx.example.com"), w.now, &w.store),
            Err(CertError::BrokenChain)
        );
    }

    #[test]
    fn expired_intermediate_reported_separately() {
        let mut w = world();
        let mut short_inter = w.root.issue_intermediate(
            "Short Intermediate",
            w.nb,
            SimDate::ymd(2024, 1, 1).at_midnight(),
        );
        let leaf = short_inter.issue_leaf(&[n("mx.example.com")], w.nb, w.na);
        let chain = vec![leaf, short_inter.cert.clone()];
        assert_eq!(
            validate_chain(&chain, &n("mx.example.com"), w.now, &w.store),
            Err(CertError::IntermediateExpired)
        );
    }

    #[test]
    fn error_labels_are_stable() {
        assert_eq!(CertError::Expired.label(), "expired");
        assert_eq!(
            CertError::NameMismatch {
                wanted: n("a.b"),
                presented: vec![]
            }
            .label(),
            "name-mismatch"
        );
    }
}
