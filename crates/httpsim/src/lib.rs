//! Minimal HTTP/1.1 over toy-TLS: the policy-retrieval substrate.
//!
//! MTA-STS policies live at `https://mta-sts.<domain>/.well-known/mta-sts.txt`
//! (§2.2.2 of the paper). The study's error taxonomy needs the full HTTPS
//! failure ladder — DNS, TCP, TLS, HTTP status, body syntax (§4.3.3) — so
//! this crate implements just enough HTTP/1.1 to walk it faithfully:
//! request/status lines, headers, `Content-Length` bodies, one
//! request/response exchange per connection (`Connection: close`), exactly
//! like a policy fetcher uses it.
//!
//! - [`types`]: requests, responses, status codes;
//! - [`codec`]: reading/writing messages over any `AsyncRead + AsyncWrite`;
//! - [`client`]: `GET` over an established stream, TLS included;
//! - [`server`]: a routing HTTPS server (TCP listener or single in-memory
//!   connections), with per-SNI certificates from [`tlssim`].

pub mod client;
pub mod codec;
pub mod server;
pub mod types;

pub use client::{https_get, HttpsFetch};
pub use server::{HttpsServer, Router};
pub use types::{HttpError, Request, Response, StatusCode};
