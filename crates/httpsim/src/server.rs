//! A routing HTTPS server.
//!
//! Serves requests over toy-TLS, selecting certificates by SNI and routing
//! by `(host, path)`. Third-party policy hosts in the paper serve thousands
//! of customer domains from one deployment (§5, Table 2); the [`Router`]
//! mirrors that: one server, many hosts, per-host documents.

use crate::codec::{read_request, write_response};
use crate::types::{Request, Response};
use netbase::DomainName;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use tlssim::{server_handshake, ServerConfig};
use tokio::io::{AsyncRead, AsyncWrite, BufReader};
use tokio::net::TcpListener;
use tokio::sync::watch;

/// Routes requests to responses. Cloneable and shared; handlers can be
/// swapped at runtime (providers updating policies mid-study).
#[derive(Clone)]
pub struct Router {
    routes: Arc<RwLock<HashMap<(DomainName, String), Response>>>,
    /// Response for known hosts with unknown paths.
    fallback: Arc<RwLock<Response>>,
}

impl Default for Router {
    fn default() -> Router {
        Router::new()
    }
}

impl Router {
    /// An empty router whose fallback is 404.
    pub fn new() -> Router {
        Router {
            routes: Arc::new(RwLock::new(HashMap::new())),
            fallback: Arc::new(RwLock::new(Response::not_found())),
        }
    }

    /// Installs a document at `(host, path)`.
    pub fn route(&self, host: DomainName, path: &str, response: Response) {
        self.routes
            .write()
            .insert((host, path.to_string()), response);
    }

    /// Removes a document; returns whether it existed.
    pub fn unroute(&self, host: &DomainName, path: &str) -> bool {
        self.routes
            .write()
            .remove(&(host.clone(), path.to_string()))
            .is_some()
    }

    /// Resolves a request to a response.
    pub fn respond(&self, request: &Request) -> Response {
        let Some(host) = request.host().and_then(|h| h.parse::<DomainName>().ok()) else {
            return Response::text(crate::types::StatusCode(400), "missing host header\n");
        };
        self.routes
            .read()
            .get(&(host, request.path.clone()))
            .cloned()
            .unwrap_or_else(|| self.fallback.read().clone())
    }

    /// Number of installed routes.
    pub fn len(&self) -> usize {
        self.routes.read().len()
    }

    /// True if no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.routes.read().is_empty()
    }
}

/// Serves exactly one connection: TLS handshake, one request, one response.
///
/// Errors are swallowed after the handshake reply — a misbehaving client
/// cannot take the server down, matching real servers' behaviour.
pub async fn serve_connection<S: AsyncRead + AsyncWrite + Unpin>(
    io: S,
    tls: &ServerConfig,
    router: &Router,
) {
    let Ok(mut session) = server_handshake(io, tls).await else {
        return; // alert already sent (or transport gone)
    };
    let mut reader = BufReader::new(&mut session.stream);
    let Ok(request) = read_request(&mut reader).await else {
        return;
    };
    let response = router.respond(&request);
    let _ = write_response(&mut session.stream, &response).await;
}

/// An HTTPS server on a real TCP listener.
pub struct HttpsServer {
    addr: SocketAddr,
    shutdown: watch::Sender<bool>,
    handle: tokio::task::JoinHandle<()>,
}

impl HttpsServer {
    /// Binds to `bind` (port 0 for ephemeral) and serves until shutdown.
    /// The TLS config and router are shared — certificate rotations and
    /// policy updates made later affect subsequent connections.
    pub async fn spawn(
        bind: SocketAddr,
        tls: Arc<RwLock<ServerConfig>>,
        router: Router,
    ) -> std::io::Result<HttpsServer> {
        let listener = TcpListener::bind(bind).await?;
        let addr = listener.local_addr()?;
        let (shutdown, mut shutdown_rx) = watch::channel(false);
        let handle = tokio::spawn(async move {
            loop {
                tokio::select! {
                    _ = shutdown_rx.changed() => break,
                    accepted = listener.accept() => {
                        let Ok((socket, _peer)) = accepted else { break };
                        let tls = tls.clone();
                        let router = router.clone();
                        tokio::spawn(async move {
                            let config = tls.read().clone();
                            serve_connection(socket, &config, &router).await;
                        });
                    }
                }
            }
        });
        Ok(HttpsServer {
            addr,
            shutdown,
            handle,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop (in-flight connections
    /// finish on their own tasks).
    pub async fn shutdown(self) {
        let _ = self.shutdown.send(true);
        let _ = self.handle.await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{fetch_policy_document, MTA_STS_WELL_KNOWN};
    use crate::types::StatusCode;
    use netbase::SimDate;
    use pkix::CertAuthority;
    use tlssim::ServerIdentity;
    use tokio::net::TcpStream;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn tls_config(hosts: &[&str]) -> ServerConfig {
        let nb = SimDate::ymd(2023, 1, 1).at_midnight();
        let na = SimDate::ymd(2026, 1, 1).at_midnight();
        let mut root = CertAuthority::new_root("Root", nb, na);
        let mut identity = ServerIdentity::empty();
        for host in hosts {
            let dn = n(host);
            identity.install(dn.clone(), vec![root.issue_leaf(&[dn], nb, na)]);
        }
        ServerConfig {
            identity,
            behavior: Default::default(),
            nonce: 9,
            dh_secret: 99,
        }
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn serves_policies_over_tcp_by_host() {
        let router = Router::new();
        router.route(
            n("mta-sts.alpha.com"),
            MTA_STS_WELL_KNOWN,
            Response::ok("version: STSv1\nmode: enforce\nmx: mx.alpha.com\nmax_age: 86400\n"),
        );
        router.route(
            n("mta-sts.beta.com"),
            MTA_STS_WELL_KNOWN,
            Response::ok("version: STSv1\nmode: testing\nmx: mx.beta.com\nmax_age: 86400\n"),
        );
        let tls = Arc::new(RwLock::new(tls_config(&[
            "mta-sts.alpha.com",
            "mta-sts.beta.com",
        ])));
        let server = HttpsServer::spawn("127.0.0.1:0".parse().unwrap(), tls, router.clone())
            .await
            .unwrap();

        for (host, marker) in [
            ("mta-sts.alpha.com", "enforce"),
            ("mta-sts.beta.com", "testing"),
        ] {
            let socket = TcpStream::connect(server.addr()).await.unwrap();
            let fetch = fetch_policy_document(socket, &n(host), 1, 2).await.unwrap();
            assert_eq!(fetch.response.status, StatusCode::OK);
            assert!(
                fetch.response.body_text().unwrap().contains(marker),
                "{host}"
            );
        }

        // Unknown path on a known host: 404 fallback.
        let socket = TcpStream::connect(server.addr()).await.unwrap();
        let fetch = crate::client::https_get(
            socket,
            tlssim::ClientConfig::opportunistic(n("mta-sts.alpha.com"), 1, 2),
            "/other.txt",
        )
        .await
        .unwrap();
        assert_eq!(fetch.response.status, StatusCode::NOT_FOUND);
        server.shutdown().await;
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 2)]
    async fn route_updates_apply_to_new_connections() {
        let router = Router::new();
        router.route(
            n("mta-sts.alpha.com"),
            MTA_STS_WELL_KNOWN,
            Response::ok("old"),
        );
        let tls = Arc::new(RwLock::new(tls_config(&["mta-sts.alpha.com"])));
        let server = HttpsServer::spawn("127.0.0.1:0".parse().unwrap(), tls, router.clone())
            .await
            .unwrap();
        router.route(
            n("mta-sts.alpha.com"),
            MTA_STS_WELL_KNOWN,
            Response::ok("new"),
        );
        let socket = TcpStream::connect(server.addr()).await.unwrap();
        let fetch = fetch_policy_document(socket, &n("mta-sts.alpha.com"), 1, 2)
            .await
            .unwrap();
        assert_eq!(fetch.response.body_text().unwrap(), "new");
        server.shutdown().await;
    }

    #[test]
    fn router_respond_requires_host() {
        let router = Router::new();
        let mut req = Request::get("mta-sts.alpha.com", "/x");
        req.headers.remove("host");
        assert_eq!(router.respond(&req).status, StatusCode(400));
    }
}
