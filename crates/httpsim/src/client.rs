//! HTTPS GET: the policy fetcher's client side.
//!
//! [`https_get`] drives the full ladder over an *established* transport
//! stream (TCP or in-memory): toy-TLS handshake with SNI, then one GET, one
//! response. Connection establishment (DNS, TCP) belongs to the caller —
//! the scanner needs to classify those failures separately (§4.3.3).

use crate::codec::{read_response, write_request};
use crate::types::{HttpError, Request, Response};
use netbase::DomainName;
use pkix::SimCert;
use tlssim::{client_handshake, ClientConfig, HandshakeError};
use tokio::io::{AsyncRead, AsyncWrite, BufReader};

/// Result of an HTTPS fetch: the response plus TLS-layer evidence.
#[derive(Debug)]
pub struct HttpsFetch {
    /// The HTTP response.
    pub response: Response,
    /// The certificate chain the server presented (leaf first). The caller
    /// validates it — the fetch itself is opportunistic so the scanner can
    /// record invalid certificates rather than just failing.
    pub peer_chain: Vec<SimCert>,
}

/// Errors from an HTTPS fetch, separated by layer for the error taxonomy.
#[derive(Debug)]
pub enum HttpsError {
    /// TLS handshake failed (alert, transport, or strict-mode certificate
    /// rejection).
    Tls(HandshakeError),
    /// The handshake succeeded but the HTTP exchange failed.
    Http(HttpError),
}

impl std::fmt::Display for HttpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpsError::Tls(e) => write!(f, "tls: {e}"),
            HttpsError::Http(e) => write!(f, "http: {e}"),
        }
    }
}

impl std::error::Error for HttpsError {}

/// Performs one `GET https://<sni><path>` over `transport`.
///
/// `tls` controls SNI and (optionally) strict in-handshake validation; the
/// `Host` header is set to the SNI per RFC 8461's policy-fetch rules.
pub async fn https_get<S: AsyncRead + AsyncWrite + Unpin>(
    transport: S,
    tls: ClientConfig,
    path: &str,
) -> Result<HttpsFetch, HttpsError> {
    let host = tls.sni.clone();
    let session = client_handshake(transport, tls)
        .await
        .map_err(HttpsError::Tls)?;
    let peer_chain = session.peer_chain;
    let mut stream = session.stream;
    let request = Request::get(&host.to_string(), path);
    write_request(&mut stream, &request)
        .await
        .map_err(HttpsError::Http)?;
    let mut reader = BufReader::new(stream);
    let response = read_response(&mut reader).await.map_err(HttpsError::Http)?;
    Ok(HttpsFetch {
        response,
        peer_chain,
    })
}

/// The well-known path for MTA-STS policies (RFC 8461 §3.3).
pub const MTA_STS_WELL_KNOWN: &str = "/.well-known/mta-sts.txt";

/// Convenience: fetch the MTA-STS policy for `policy_host` over `transport`.
pub async fn fetch_policy_document<S: AsyncRead + AsyncWrite + Unpin>(
    transport: S,
    policy_host: &DomainName,
    nonce: u64,
    dh_secret: u64,
) -> Result<HttpsFetch, HttpsError> {
    https_get(
        transport,
        ClientConfig::opportunistic(policy_host.clone(), nonce, dh_secret),
        MTA_STS_WELL_KNOWN,
    )
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{read_request, write_response};
    use crate::types::{Response, StatusCode};
    use netbase::SimDate;
    use pkix::{CertAuthority, TrustStore};
    use tlssim::{server_handshake, ServerConfig, ServerIdentity};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    async fn serve_one(io: tokio::io::DuplexStream, sc: ServerConfig, response: Response) {
        let Ok(mut session) = server_handshake(io, &sc).await else {
            return;
        };
        let mut reader = BufReader::new(&mut session.stream);
        let req = read_request(&mut reader).await.unwrap();
        assert_eq!(req.path, MTA_STS_WELL_KNOWN);
        assert_eq!(req.host(), Some("mta-sts.example.com"));
        write_response(&mut session.stream, &response)
            .await
            .unwrap();
    }

    fn server_with_cert() -> (ServerConfig, TrustStore) {
        let nb = SimDate::ymd(2023, 1, 1).at_midnight();
        let na = SimDate::ymd(2026, 1, 1).at_midnight();
        let mut root = CertAuthority::new_root("Root", nb, na);
        let mut store = TrustStore::empty();
        store.add_root(&root);
        let mut identity = ServerIdentity::empty();
        identity.install(
            n("mta-sts.example.com"),
            vec![root.issue_leaf(&[n("mta-sts.example.com")], nb, na)],
        );
        (
            ServerConfig {
                identity,
                behavior: Default::default(),
                nonce: 5,
                dh_secret: 55,
            },
            store,
        )
    }

    #[tokio::test]
    async fn fetches_policy_over_https() {
        let (sc, store) = server_with_cert();
        let (client_io, server_io) = tokio::io::duplex(8192);
        let policy = "version: STSv1\nmode: enforce\nmx: mx.example.com\nmax_age: 604800\n";
        let server = tokio::spawn(serve_one(server_io, sc, Response::ok(policy)));
        let fetch = fetch_policy_document(client_io, &n("mta-sts.example.com"), 1, 2)
            .await
            .unwrap();
        assert_eq!(fetch.response.status, StatusCode::OK);
        assert_eq!(fetch.response.body_text().unwrap(), policy);
        assert_eq!(fetch.peer_chain.len(), 1);
        // Offline validation succeeds against the right store.
        let now = SimDate::ymd(2024, 9, 29).at_midnight();
        assert!(
            pkix::validate_chain(&fetch.peer_chain, &n("mta-sts.example.com"), now, &store).is_ok()
        );
        server.await.unwrap();
    }

    #[tokio::test]
    async fn http_404_is_not_a_transport_error() {
        let (sc, _) = server_with_cert();
        let (client_io, server_io) = tokio::io::duplex(8192);
        let server = tokio::spawn(serve_one(server_io, sc, Response::not_found()));
        let fetch = fetch_policy_document(client_io, &n("mta-sts.example.com"), 1, 2)
            .await
            .unwrap();
        assert_eq!(fetch.response.status, StatusCode::NOT_FOUND);
        server.await.unwrap();
    }

    #[tokio::test]
    async fn tls_alert_is_a_tls_error() {
        let sc = ServerConfig {
            identity: ServerIdentity::empty(), // no cert for any SNI
            behavior: Default::default(),
            nonce: 5,
            dh_secret: 55,
        };
        let (client_io, server_io) = tokio::io::duplex(8192);
        tokio::spawn(async move {
            let _ = server_handshake(server_io, &sc).await;
        });
        let err = fetch_policy_document(client_io, &n("mta-sts.example.com"), 1, 2)
            .await
            .err()
            .expect("expected TLS failure");
        assert!(matches!(err, HttpsError::Tls(_)));
    }
}
