//! Reading and writing HTTP/1.1 messages over async streams.

use crate::types::{HttpError, Request, Response, StatusCode, MAX_BODY_BYTES, MAX_HEADER_BYTES};
use std::collections::BTreeMap;
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt, BufReader};

/// Reads a CRLF- (or bare-LF-) terminated line, bounded by `budget`.
async fn read_line<S: AsyncRead + Unpin>(
    reader: &mut BufReader<S>,
    budget: &mut usize,
) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let byte = match reader.read_u8().await {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof && !line.is_empty() => {
                return Err(HttpError::UnexpectedEof)
            }
            Err(e) => return Err(e.into()),
        };
        if *budget == 0 {
            return Err(HttpError::HeadersTooLarge);
        }
        *budget -= 1;
        if byte == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| HttpError::BadHeader("non-utf8".into()));
        }
        line.push(byte);
    }
}

/// Reads headers into a lowercase-keyed map.
async fn read_headers<S: AsyncRead + Unpin>(
    reader: &mut BufReader<S>,
    budget: &mut usize,
) -> Result<BTreeMap<String, String>, HttpError> {
    let mut headers = BTreeMap::new();
    loop {
        let line = read_line(reader, budget).await?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(line.clone()))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadHeader(line.clone()));
        }
        headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
    }
}

/// Reads the body for a parsed header block (Content-Length only; absent
/// means empty for requests and means read-to-EOF for responses — the
/// `Connection: close` model).
async fn read_body<S: AsyncRead + Unpin>(
    reader: &mut BufReader<S>,
    headers: &BTreeMap<String, String>,
    to_eof_when_unsized: bool,
) -> Result<Vec<u8>, HttpError> {
    if let Some(len_str) = headers.get("content-length") {
        let len: usize = len_str
            .parse()
            .map_err(|_| HttpError::BadBody(format!("bad content-length {len_str:?}")))?;
        if len > MAX_BODY_BYTES {
            return Err(HttpError::BadBody(format!("body of {len} bytes too large")));
        }
        let mut body = vec![0u8; len];
        reader
            .read_exact(&mut body)
            .await
            .map_err(|_| HttpError::UnexpectedEof)?;
        Ok(body)
    } else if to_eof_when_unsized {
        let mut body = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            let n = reader.read(&mut chunk).await?;
            if n == 0 {
                return Ok(body);
            }
            body.extend_from_slice(&chunk[..n]);
            if body.len() > MAX_BODY_BYTES {
                return Err(HttpError::BadBody("unsized body too large".into()));
            }
        }
    } else {
        Ok(Vec::new())
    }
}

/// Reads one request.
pub async fn read_request<S: AsyncRead + Unpin>(
    reader: &mut BufReader<S>,
) -> Result<Request, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let start = read_line(reader, &mut budget).await?;
    let mut parts = start.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(HttpError::BadStartLine(start)),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadStartLine(start));
    }
    let headers = read_headers(reader, &mut budget).await?;
    let body = read_body(reader, &headers, false).await?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// Reads one response.
pub async fn read_response<S: AsyncRead + Unpin>(
    reader: &mut BufReader<S>,
) -> Result<Response, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let start = read_line(reader, &mut budget).await?;
    let mut parts = start.splitn(3, ' ');
    let (version, code) = match (parts.next(), parts.next()) {
        (Some(v), Some(c)) if v.starts_with("HTTP/") => (v, c),
        _ => return Err(HttpError::BadStartLine(start)),
    };
    let _ = version;
    let code: u16 = code
        .parse()
        .map_err(|_| HttpError::BadStartLine(start.clone()))?;
    let headers = read_headers(reader, &mut budget).await?;
    let body = read_body(reader, &headers, true).await?;
    Ok(Response {
        status: StatusCode(code),
        headers,
        body,
    })
}

/// Writes one request.
pub async fn write_request<S: AsyncWrite + Unpin>(
    writer: &mut S,
    request: &Request,
) -> Result<(), HttpError> {
    let mut out = format!("{} {} HTTP/1.1\r\n", request.method, request.path).into_bytes();
    for (name, value) in &request.headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    if !request.body.is_empty() {
        out.extend_from_slice(format!("content-length: {}\r\n", request.body.len()).as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&request.body);
    writer.write_all(&out).await?;
    writer.flush().await?;
    Ok(())
}

/// Writes one response (always with an explicit `Content-Length` and
/// `Connection: close`).
pub async fn write_response<S: AsyncWrite + Unpin>(
    writer: &mut S,
    response: &Response,
) -> Result<(), HttpError> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\n",
        response.status.0,
        response.status.reason()
    )
    .into_bytes();
    for (name, value) in &response.headers {
        if name == "content-length" || name == "connection" {
            continue; // we own these
        }
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("content-length: {}\r\n", response.body.len()).as_bytes());
    out.extend_from_slice(b"connection: close\r\n\r\n");
    out.extend_from_slice(&response.body);
    writer.write_all(&out).await?;
    writer.flush().await?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn request_roundtrip() {
        let (mut a, b) = tokio::io::duplex(4096);
        let req = Request::get("mta-sts.example.com", "/.well-known/mta-sts.txt");
        write_request(&mut a, &req).await.unwrap();
        drop(a);
        let mut reader = BufReader::new(b);
        let back = read_request(&mut reader).await.unwrap();
        assert_eq!(back, req);
    }

    #[tokio::test]
    async fn response_roundtrip_with_content_length() {
        let (mut a, b) = tokio::io::duplex(4096);
        let resp =
            Response::ok("version: STSv1\nmode: enforce\nmx: mx.example.com\nmax_age: 604800\n");
        write_response(&mut a, &resp).await.unwrap();
        drop(a);
        let mut reader = BufReader::new(b);
        let back = read_response(&mut reader).await.unwrap();
        assert_eq!(back.status, StatusCode::OK);
        assert_eq!(back.body, resp.body);
        assert_eq!(
            back.headers.get("connection").map(String::as_str),
            Some("close")
        );
    }

    #[tokio::test]
    async fn response_without_length_reads_to_eof() {
        let (mut a, b) = tokio::io::duplex(4096);
        use tokio::io::AsyncWriteExt;
        a.write_all(b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\n\r\npolicy-body")
            .await
            .unwrap();
        drop(a);
        let mut reader = BufReader::new(b);
        let back = read_response(&mut reader).await.unwrap();
        assert_eq!(back.body, b"policy-body");
    }

    #[tokio::test]
    async fn rejects_malformed_start_lines() {
        for bad in ["GARBAGE", "GET /x", "GET path HTTP/1.1", "GET /x SPDY/3"] {
            let (mut a, b) = tokio::io::duplex(4096);
            use tokio::io::AsyncWriteExt;
            a.write_all(format!("{bad}\r\n\r\n").as_bytes())
                .await
                .unwrap();
            drop(a);
            let mut reader = BufReader::new(b);
            let err = read_request(&mut reader).await.unwrap_err();
            assert!(matches!(err, HttpError::BadStartLine(_)), "{bad}");
        }
    }

    #[tokio::test]
    async fn rejects_bad_headers() {
        let (mut a, b) = tokio::io::duplex(4096);
        use tokio::io::AsyncWriteExt;
        a.write_all(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
            .await
            .unwrap();
        drop(a);
        let mut reader = BufReader::new(b);
        assert!(matches!(
            read_request(&mut reader).await.unwrap_err(),
            HttpError::BadHeader(_)
        ));
    }

    #[tokio::test]
    async fn rejects_oversized_headers() {
        let (mut a, b) = tokio::io::duplex(64 * 1024);
        use tokio::io::AsyncWriteExt;
        let huge = format!(
            "GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n",
            "y".repeat(MAX_HEADER_BYTES)
        );
        a.write_all(huge.as_bytes()).await.unwrap();
        drop(a);
        let mut reader = BufReader::new(b);
        assert_eq!(
            read_request(&mut reader).await.unwrap_err(),
            HttpError::HeadersTooLarge
        );
    }

    #[tokio::test]
    async fn rejects_oversized_declared_body() {
        let (mut a, b) = tokio::io::duplex(4096);
        use tokio::io::AsyncWriteExt;
        a.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 9999999\r\n\r\n")
            .await
            .unwrap();
        drop(a);
        let mut reader = BufReader::new(b);
        assert!(matches!(
            read_response(&mut reader).await.unwrap_err(),
            HttpError::BadBody(_)
        ));
    }

    #[tokio::test]
    async fn eof_mid_body_detected() {
        let (mut a, b) = tokio::io::duplex(4096);
        use tokio::io::AsyncWriteExt;
        a.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 50\r\n\r\nshort")
            .await
            .unwrap();
        drop(a);
        let mut reader = BufReader::new(b);
        assert_eq!(
            read_response(&mut reader).await.unwrap_err(),
            HttpError::UnexpectedEof
        );
    }
}
