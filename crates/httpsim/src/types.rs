//! HTTP message types.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum accepted header block size.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum accepted body size (policy files are tiny; RFC 8461 suggests
/// senders enforce limits).
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// HTTP status codes the study encounters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 301 Moved Permanently (policy fetchers must not follow redirects per
    /// RFC 8461 §3.3, so this is an error for them).
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    /// 404 Not Found — the dominant HTTP-level policy error (§4.3.3).
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 500 Internal Server Error.
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// Whether the code is 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            301 => "Moved Permanently",
            400 => "Bad Request",
            403 => "Forbidden",
            404 => "Not Found",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// An HTTP request (methods beyond GET exist only for tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, e.g. `GET`.
    pub method: String,
    /// Request target, e.g. `/.well-known/mta-sts.txt`.
    pub path: String,
    /// Header map with lowercase keys.
    pub headers: BTreeMap<String, String>,
    /// Request body (empty for GET).
    pub body: Vec<u8>,
}

impl Request {
    /// A GET request with a `Host` header.
    pub fn get(host: &str, path: &str) -> Request {
        let mut headers = BTreeMap::new();
        headers.insert("host".to_string(), host.to_string());
        headers.insert("connection".to_string(), "close".to_string());
        headers.insert("user-agent".to_string(), "mta-sts-lab/0.1".to_string());
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            headers,
            body: Vec::new(),
        }
    }

    /// The `Host` header, if present.
    pub fn host(&self) -> Option<&str> {
        self.headers.get("host").map(String::as_str)
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Header map with lowercase keys.
    pub headers: BTreeMap<String, String>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a text body.
    pub fn text(status: StatusCode, body: &str) -> Response {
        let mut headers = BTreeMap::new();
        headers.insert("content-type".to_string(), "text/plain".to_string());
        Response {
            status,
            headers,
            body: body.as_bytes().to_vec(),
        }
    }

    /// 200 with a body (the happy policy-fetch path).
    pub fn ok(body: &str) -> Response {
        Response::text(StatusCode::OK, body)
    }

    /// 404 with a small body.
    pub fn not_found() -> Response {
        Response::text(StatusCode::NOT_FOUND, "not found\n")
    }

    /// The body as UTF-8, if valid.
    pub fn body_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// HTTP-layer errors (transport and TLS failures are separate enums carried
/// by [`crate::client::HttpsFetch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request or status line.
    BadStartLine(String),
    /// Malformed header.
    BadHeader(String),
    /// Headers exceeded [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// Body exceeded [`MAX_BODY_BYTES`] or Content-Length was invalid.
    BadBody(String),
    /// Connection closed mid-message.
    UnexpectedEof,
    /// Underlying I/O error.
    Io(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadStartLine(l) => write!(f, "malformed start line: {l:?}"),
            HttpError::BadHeader(h) => write!(f, "malformed header: {h:?}"),
            HttpError::HeadersTooLarge => write!(f, "headers too large"),
            HttpError::BadBody(m) => write!(f, "bad body: {m}"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-message"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            HttpError::UnexpectedEof
        } else {
            HttpError::Io(e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_helpers() {
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::NOT_FOUND.is_success());
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
        assert_eq!(StatusCode(418).reason(), "Unknown");
    }

    #[test]
    fn get_request_shape() {
        let r = Request::get("mta-sts.example.com", "/.well-known/mta-sts.txt");
        assert_eq!(r.method, "GET");
        assert_eq!(r.host(), Some("mta-sts.example.com"));
        assert_eq!(
            r.headers.get("connection").map(String::as_str),
            Some("close")
        );
    }

    #[test]
    fn response_helpers() {
        let ok = Response::ok("v: STSv1\nmode: enforce\n");
        assert!(ok.status.is_success());
        assert_eq!(ok.body_text().unwrap(), "v: STSv1\nmode: enforce\n");
        assert_eq!(Response::not_found().status, StatusCode::NOT_FOUND);
    }
}
