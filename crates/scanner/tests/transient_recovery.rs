//! Validation experiment for the transient-fault model (EXPERIMENTS.md):
//! inject a known transient-failure rate into an otherwise known-ground-
//! truth world and show that
//!
//! 1. a naive single-shot scan *inflates* the misconfiguration rate,
//! 2. the retrying scanner recovers ≥99% of the domains that hit a
//!    transient, and
//! 3. the persistent misconfiguration rates it reports match the injected
//!    ground truth (the fault-free baseline) to within a sliver.

use ecosystem::{Ecosystem, EcosystemConfig, SnapshotDetail};
use mtasts_scanner::taxonomy::MisconfigCategory;
use mtasts_scanner::{scan_snapshot, ScanConfig, Snapshot};
use netbase::{DomainName, SimDate};
use simnet::TransientFaultConfig;

const FAULT_RATE: f64 = 0.1;

fn eco() -> Ecosystem {
    Ecosystem::generate(EcosystemConfig::paper(42, 0.02))
}

fn scan(eco: &Ecosystem, faults: Option<TransientFaultConfig>, config: &ScanConfig) -> Snapshot {
    let date = SimDate::ymd(2024, 9, 29);
    let world = eco.world_at(date, SnapshotDetail::Full);
    if let Some(f) = &faults {
        world.inject_transient_faults(f);
    }
    let domains: Vec<DomainName> = eco.domains_at(date).map(|d| d.name.clone()).collect();
    scan_snapshot(&world, &domains, date, None, config)
}

fn category_counts(snapshot: &Snapshot) -> [usize; MisconfigCategory::ALL.len()] {
    let mut out = [0; MisconfigCategory::ALL.len()];
    for scan in &snapshot.scans {
        let cats = scan.categories();
        for (slot, cat) in out.iter_mut().zip(MisconfigCategory::ALL) {
            if cats.contains(&cat) {
                *slot += 1;
            }
        }
    }
    out
}

#[test]
fn retries_recover_injected_transients() {
    let eco = eco();
    let faults = TransientFaultConfig::uniform(99, FAULT_RATE);

    // Ground truth: the fault-free world under the seed scanner.
    let baseline = scan(&eco, None, &ScanConfig::single_shot());
    let base_misconfigured = baseline
        .scans
        .iter()
        .filter(|s| s.is_misconfigured())
        .count();

    // A naive single-shot scan of the flaky world inflates the rates: at a
    // 10% per-operation fault rate the policy fetch alone fails ~30% of
    // the time (DNS + TCP + TLS + HTTP each draw).
    let naive = scan(&eco, Some(faults), &ScanConfig::single_shot());
    let naive_misconfigured = naive.scans.iter().filter(|s| s.is_misconfigured()).count();
    assert!(
        naive_misconfigured > base_misconfigured + baseline.len() / 10,
        "naive scan must inflate: baseline {base_misconfigured}, naive {naive_misconfigured} of {}",
        baseline.len()
    );

    // The retrying scanner on the same flaky world.
    let retried = scan(&eco, Some(faults), &ScanConfig::resilient(5, 5));

    // ≥99% of the domains that actually hit a transient (issued at least
    // one retry) end up classified exactly like the baseline.
    let mut hit_transient = 0usize;
    let mut hit_and_match = 0usize;
    let mut mismatched = 0usize;
    for (scan, base) in retried.scans.iter().zip(&baseline.scans) {
        assert_eq!(scan.domain, base.domain);
        let matches = scan.categories() == base.categories();
        if scan.attempts.retries_issued() > 0 {
            hit_transient += 1;
            if matches {
                hit_and_match += 1;
            }
        }
        if !matches {
            mismatched += 1;
        }
    }
    assert!(
        hit_transient > baseline.len() / 10,
        "the injected rate must actually exercise the retry layer ({hit_transient} domains)"
    );
    let recovery = hit_and_match as f64 / hit_transient as f64;
    assert!(
        recovery >= 0.99,
        "recovery rate {recovery:.4} ({hit_and_match}/{hit_transient})"
    );

    // Aggregate persistent misconfiguration rates match the injected
    // ground truth: per category, within 1% of the population.
    let base_counts = category_counts(&baseline);
    let retried_counts = category_counts(&retried);
    let tolerance = baseline.len().div_ceil(100);
    for ((got, want), cat) in retried_counts
        .iter()
        .zip(base_counts)
        .zip(MisconfigCategory::ALL)
    {
        assert!(
            got.abs_diff(want) <= tolerance,
            "{}: baseline {want}, retried {got} (tolerance {tolerance}, {mismatched} domains differ)",
            cat.label()
        );
    }
}
