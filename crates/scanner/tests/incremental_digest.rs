//! The incremental engine's byte-identity suite (DESIGN.md "Incremental
//! engine"): every driver that goes through the change-driven rescan
//! cache must serialize *byte-identically* to its from-scratch oracle —
//! reused scans included. A cache that is merely "close" (a drifted
//! retry count, a re-resolved policy IP, a re-dated certificate verdict
//! leaking into a reused scan) fails here, not in an analysis table
//! three crates away.
//!
//! CI runs this suite at `SCAN_THREADS=1` and `SCAN_THREADS=8` alongside
//! the parallel-determinism suite.

use ecosystem::{Ecosystem, EcosystemConfig, TldId};
use mtasts_scanner::longitudinal::{MxHistory, Study, WeeklyPoint};
use mtasts_scanner::{Snapshot, SupervisedOutcome, SupervisorConfig};
use std::collections::HashMap;

const THREAD_COUNTS: [usize; 2] = [1, 8];

fn study() -> Study {
    Study::new(Ecosystem::generate(EcosystemConfig::paper(42, 0.01)))
}

/// Scans + sorted policy IPs are the full snapshot state (the classifier
/// is derived from the scans), so this digest is the byte-identity
/// witness.
fn fingerprint(snapshots: &[Snapshot]) -> String {
    let digest: Vec<_> = snapshots
        .iter()
        .map(|s| {
            let mut ips: Vec<_> = s
                .policy_ips
                .iter()
                .map(|(d, ip)| (d.to_string(), ip.to_string()))
                .collect();
            ips.sort();
            (s.date, &s.scans, ips)
        })
        .collect();
    serde_json::to_string(&digest).expect("snapshots serialize")
}

/// Canonical weekly digest: per-TLD maps sorted, history sorted.
fn weekly_fingerprint(weekly: &[WeeklyPoint], history: &MxHistory) -> String {
    let sorted = |m: &HashMap<TldId, u64>| {
        let mut v: Vec<_> = m.iter().map(|(t, c)| (format!("{t:?}"), *c)).collect();
        v.sort();
        v
    };
    let points: Vec<_> = weekly
        .iter()
        .map(|p| {
            (
                p.date,
                sorted(&p.mtasts_per_tld),
                sorted(&p.tlsrpt_among_mtasts_per_tld),
            )
        })
        .collect();
    let mut hist: Vec<_> = history
        .iter()
        .map(|(d, v)| {
            (
                d.to_string(),
                v.iter()
                    .map(|(date, mx)| (*date, mx.iter().map(|h| h.to_string()).collect::<Vec<_>>()))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    hist.sort();
    serde_json::to_string(&(points, hist)).expect("weekly serializes")
}

#[test]
fn full_scans_incremental_matches_scratch_across_thread_counts() {
    let study = study();
    let want = fingerprint(&study.run_full_scratch_with_threads(1));
    for threads in THREAD_COUNTS {
        let (snapshots, stats) = study.run_full_incremental_with_threads(threads);
        assert_eq!(
            want,
            fingerprint(&snapshots),
            "incremental full scans diverge at {threads} threads"
        );
        // The engine actually reused work — this is not a vacuous pass
        // where everything fell back to full scans.
        assert!(
            stats.full_hits + stats.partial_hits > stats.misses,
            "cache should dominate after the first snapshot: {stats:?}"
        );
        assert_eq!(stats.forced, 0, "no faults or attacks configured");
    }
}

#[test]
fn weekly_incremental_matches_scratch_across_thread_counts() {
    let study = study();
    let (w, h) = study.run_weekly_scratch_with_threads(1);
    let want = weekly_fingerprint(&w, &h);
    for threads in THREAD_COUNTS {
        let (w, h, stats) = study.run_weekly_incremental_with_threads(threads);
        assert_eq!(
            want,
            weekly_fingerprint(&w, &h),
            "incremental weekly series diverges at {threads} threads"
        );
        assert!(
            stats.full_hits > stats.misses * 10,
            "160 weeks over a mostly-static population must mostly hit: {stats:?}"
        );
    }
}

#[test]
fn supervised_incremental_matches_scratch() {
    // The supervisor runs over the same persistent engine; with no
    // transients configured its snapshots must equal the from-scratch
    // oracle, and its cache accounting must match the plain incremental
    // run's (same rounds, same input order).
    let study = study();
    let want = fingerprint(&study.run_full_scratch_with_threads(1));
    let (_, plain_stats) = study.run_full_incremental_with_threads(1);
    for threads in THREAD_COUNTS {
        let outcome = study.run_full_supervised(&SupervisorConfig {
            threads,
            checkpoint_every: 16,
            ..SupervisorConfig::default()
        });
        let SupervisedOutcome::Complete { snapshots, report } = outcome else {
            panic!("no budget set: must complete")
        };
        assert_eq!(
            want,
            fingerprint(&snapshots),
            "supervised incremental scans diverge at {threads} threads"
        );
        assert_eq!(report.cache, plain_stats);
    }
}
