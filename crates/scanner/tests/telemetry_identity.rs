//! The telemetry determinism contract (DESIGN.md "Observability"):
//! enabling the `obsv` layer must never change any scan output. Spans,
//! counters and histograms read the wall clock but feed nothing back —
//! no RNG draw, no admission clock, no classification input. This suite
//! pins that with byte-identity digests: the full monthly study and the
//! weekly series are serialized with telemetry off, then again with
//! telemetry on (collectors populated, worker harvest/absorb active),
//! at worker counts 1 and 8, and every digest must be identical.
//!
//! CI additionally re-runs the PR-3/PR-4 digest suites with `RUN_TRACE`
//! set, which enables telemetry *and* the streaming JSONL exporter for
//! those processes.

use ecosystem::{Ecosystem, EcosystemConfig, TldId};
use mtasts_scanner::longitudinal::{MxHistory, Study, WeeklyPoint};
use mtasts_scanner::Snapshot;
use std::collections::HashMap;
use std::sync::Mutex;

const THREAD_COUNTS: [usize; 2] = [1, 8];

/// Telemetry enablement is process-global; serialize the tests that
/// toggle it so they cannot observe each other's state.
static GATE: Mutex<()> = Mutex::new(());

fn study() -> Study {
    Study::new(Ecosystem::generate(EcosystemConfig::paper(42, 0.01)))
}

fn fingerprint(snapshots: &[Snapshot]) -> String {
    let digest: Vec<_> = snapshots
        .iter()
        .map(|s| {
            let mut ips: Vec<_> = s
                .policy_ips
                .iter()
                .map(|(d, ip)| (d.to_string(), ip.to_string()))
                .collect();
            ips.sort();
            (s.date, &s.scans, ips)
        })
        .collect();
    serde_json::to_string(&digest).expect("snapshots serialize")
}

fn weekly_fingerprint(weekly: &[WeeklyPoint], history: &MxHistory) -> String {
    let sorted = |m: &HashMap<TldId, u64>| {
        let mut v: Vec<_> = m.iter().map(|(t, c)| (format!("{t:?}"), *c)).collect();
        v.sort();
        v
    };
    let points: Vec<_> = weekly
        .iter()
        .map(|p| {
            (
                p.date,
                sorted(&p.mtasts_per_tld),
                sorted(&p.tlsrpt_among_mtasts_per_tld),
            )
        })
        .collect();
    let mut hist: Vec<_> = history
        .iter()
        .map(|(d, v)| (d.to_string(), format!("{v:?}")))
        .collect();
    hist.sort();
    serde_json::to_string(&(points, hist)).expect("weekly series serializes")
}

#[test]
fn telemetry_never_perturbs_full_or_weekly_digests() {
    let _gate = GATE.lock().unwrap_or_else(|p| p.into_inner());
    let study = study();

    let mut digests: Vec<(bool, usize, String, String)> = Vec::new();
    for enabled in [false, true] {
        obsv::set_enabled(enabled);
        obsv::reset();
        for threads in THREAD_COUNTS {
            let full = fingerprint(&study.run_full_with_threads(threads));
            let (weekly, history, _) = study.run_weekly_incremental_with_threads(threads);
            digests.push((
                enabled,
                threads,
                full,
                weekly_fingerprint(&weekly, &history),
            ));
        }
    }
    obsv::set_enabled(false);

    let (_, _, want_full, want_weekly) = &digests[0];
    for (enabled, threads, full, weekly) in &digests[1..] {
        assert_eq!(
            full, want_full,
            "full digest diverges (telemetry={enabled}, threads={threads})"
        );
        assert_eq!(
            weekly, want_weekly,
            "weekly digest diverges (telemetry={enabled}, threads={threads})"
        );
    }
}

#[test]
fn enabled_telemetry_actually_collects() {
    // The identity test above would pass vacuously if telemetry never
    // recorded anything; prove the enabled runs populate the collector
    // with the advertised stage spans and counters. Runs in a dedicated
    // thread so this test's harvest starts from an empty collector.
    let _gate = GATE.lock().unwrap_or_else(|p| p.into_inner());
    std::thread::spawn(|| {
        obsv::set_enabled(true);
        obsv::reset();
        let study = study();
        let snapshots = study.run_full_with_threads(2);
        obsv::set_enabled(false);
        let snap = obsv::snapshot();
        let scanned: u64 = snapshots.iter().map(|s| s.len() as u64).sum();
        for stage in ["scan.record", "scan.policy", "scan.mx"] {
            assert!(
                snap.span(stage).count > 0,
                "no {stage} spans: {:?}",
                snap.spans.keys().collect::<Vec<_>>()
            );
        }
        // Every fresh scan opens exactly one record span; cache hits
        // (most of the incremental run) skip the stages entirely.
        assert!(snap.span("scan.record").count <= scanned);
        assert_eq!(snap.span("snapshot.full").count, 11);
        assert!(snap.counter("cache_full_hits_total") > 0);
        assert_eq!(
            snap.counter("cache_full_hits_total")
                + snap.counter("cache_partial_hits_total")
                + snap.counter("cache_misses_total")
                + snap.counter("cache_stand_downs_total"),
            scanned,
            "cache counters must partition the scanned population"
        );
        assert!(snap.histograms.contains_key("scan_domain_real_us"));
        // The Prometheus exporter renders the collector deterministically.
        let text = obsv::export::prometheus_text(&snap);
        assert!(text.contains("scan_record_count"));
        assert!(text.contains("cache_full_hits_total"));
    })
    .join()
    .unwrap();
}
