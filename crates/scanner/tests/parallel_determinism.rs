//! Determinism suite for the parallel scan engine (DESIGN.md
//! "Concurrency model"): the contract is that thread count is
//! unobservable in the output. Every test here compares serde digests —
//! byte equality, not structural equality — so a reordered vector, a
//! drifted admission instant, or a differently-merged `policy_ips` map
//! all fail loudly.
//!
//! CI runs this suite twice, with `SCAN_THREADS=1` and `SCAN_THREADS=8`,
//! which the default-thread tests below pick up through
//! [`mtasts_scanner::default_scan_threads`].

use ecosystem::{Ecosystem, EcosystemConfig, SnapshotDetail, TldId};
use mtasts_scanner::longitudinal::{MxHistory, Study, WeeklyPoint};
use mtasts_scanner::{
    scan_snapshot, scan_snapshot_with_threads, ScanConfig, Snapshot, SupervisedOutcome,
    SupervisorConfig,
};
use netbase::{map_sharded, DomainName, SimDate, TokenBucket};
use proptest::prelude::*;
use simnet::TransientFaultConfig;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Scans + sorted policy IPs are the full snapshot state (the classifier
/// is derived from the scans), so this digest is the byte-identity
/// witness used throughout the suite.
fn fingerprint(snapshots: &[Snapshot]) -> String {
    let digest: Vec<_> = snapshots
        .iter()
        .map(|s| {
            let mut ips: Vec<(String, String)> = s
                .policy_ips
                .iter()
                .map(|(d, ip)| (d.to_string(), ip.to_string()))
                .collect();
            ips.sort();
            (s.date, s.scans.clone(), ips)
        })
        .collect();
    serde_json::to_string(&digest).unwrap()
}

/// `MxHistory` flattened to sorted, serializable rows.
type HistoryRows = Vec<(String, Vec<(SimDate, Vec<String>)>)>;

/// Weekly output digest with map iteration order normalized away.
fn weekly_fingerprint(points: &[WeeklyPoint], history: &MxHistory) -> String {
    let points: Vec<_> = points
        .iter()
        .map(|p| {
            let mut per_tld: Vec<(TldId, u64)> =
                p.mtasts_per_tld.iter().map(|(t, n)| (*t, *n)).collect();
            per_tld.sort();
            let mut tlsrpt: Vec<(TldId, u64)> = p
                .tlsrpt_among_mtasts_per_tld
                .iter()
                .map(|(t, n)| (*t, *n))
                .collect();
            tlsrpt.sort();
            (p.date, per_tld, tlsrpt)
        })
        .collect();
    let mut history: HistoryRows = history
        .iter()
        .map(|(d, obs)| {
            (
                d.to_string(),
                obs.iter()
                    .map(|(date, mx)| (*date, mx.iter().map(|m| m.to_string()).collect()))
                    .collect(),
            )
        })
        .collect();
    history.sort();
    serde_json::to_string(&(points, history)).unwrap()
}

#[test]
fn snapshot_scan_is_thread_count_invariant() {
    // A faulted, rate-limited scan of the full paper population: the
    // hardest case, because both the retry layer and the admission plan
    // are time-keyed. Thread counts 1, 2 and 8 must agree byte for byte.
    let eco = Ecosystem::generate(EcosystemConfig::paper(42, 0.02));
    let date = SimDate::ymd(2024, 9, 29);
    let world = eco.world_at(date, SnapshotDetail::Full);
    world.inject_transient_faults(&TransientFaultConfig::uniform(7, 0.05));
    let domains: Vec<DomainName> = eco.domains_at(date).map(|d| d.name.clone()).collect();

    let run = |threads: usize| {
        let mut bucket = TokenBucket::new(100.0, 20, date.at_midnight());
        let snap = scan_snapshot_with_threads(
            &world,
            &domains,
            date,
            Some(&mut bucket),
            &ScanConfig::resilient(1, 5),
            threads,
        );
        fingerprint(std::slice::from_ref(&snap))
    };

    let sequential = run(1);
    for threads in THREAD_COUNTS {
        assert_eq!(
            sequential,
            run(threads),
            "snapshot scan diverges at {threads} threads"
        );
    }

    // The default-thread entry point (honouring `SCAN_THREADS`, which CI
    // pins to 1 and then 8) must match the explicit sequential run too.
    let mut bucket = TokenBucket::new(100.0, 20, date.at_midnight());
    let default_run = scan_snapshot(
        &world,
        &domains,
        date,
        Some(&mut bucket),
        &ScanConfig::resilient(1, 5),
    );
    assert_eq!(
        sequential,
        fingerprint(std::slice::from_ref(&default_run)),
        "scan_snapshot at SCAN_THREADS={:?} diverges from sequential",
        std::env::var("SCAN_THREADS").ok()
    );
}

#[test]
fn full_study_is_thread_count_invariant() {
    let study = Study::new(Ecosystem::generate(EcosystemConfig::paper(42, 0.01)));

    let sequential = fingerprint(&study.run_full_with_threads(1));
    for threads in THREAD_COUNTS {
        assert_eq!(
            sequential,
            fingerprint(&study.run_full_with_threads(threads)),
            "run_full diverges at {threads} threads"
        );
    }
    // Default entry point under whatever SCAN_THREADS CI exported.
    assert_eq!(sequential, fingerprint(&study.run_full()));
}

#[test]
fn weekly_study_is_thread_count_invariant() {
    let study = Study::new(Ecosystem::generate(EcosystemConfig::paper(42, 0.01)));

    let (points, history) = study.run_weekly_with_threads(1);
    let sequential = weekly_fingerprint(&points, &history);
    for threads in THREAD_COUNTS {
        let (points, history) = study.run_weekly_with_threads(threads);
        assert_eq!(
            sequential,
            weekly_fingerprint(&points, &history),
            "run_weekly diverges at {threads} threads"
        );
    }
    let (points, history) = study.run_weekly();
    assert_eq!(sequential, weekly_fingerprint(&points, &history));
}

#[test]
fn killed_parallel_run_resumes_byte_identically() {
    // The strongest cross-cutting claim: an 8-thread supervised run,
    // killed mid-campaign and resumed from its checkpoint, equals an
    // uninterrupted *sequential* run — thread count and interruption are
    // both unobservable at once.
    let study = Study::new(Ecosystem::generate(EcosystemConfig::paper(42, 0.01)));
    let dir = std::env::temp_dir().join(format!(
        "mtasts-parallel-determinism-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.json");
    let _ = std::fs::remove_file(&path);

    let base = SupervisorConfig {
        scan: ScanConfig::resilient(1, 5),
        checkpoint_path: Some(path.clone()),
        checkpoint_every: 16,
        domain_budget: None,
        transient: Some(TransientFaultConfig::uniform(7, 0.05)),
        chaos_panic_domains: Vec::new(),
        threads: 8,
    };

    // Reference: uninterrupted, sequential, checkpoint-free.
    let reference = study.run_full_supervised(&SupervisorConfig {
        checkpoint_path: None,
        threads: 1,
        ..base.clone()
    });
    let SupervisedOutcome::Complete {
        snapshots: want,
        report: want_report,
    } = reference
    else {
        panic!("reference run must complete")
    };

    // Interrupted 8-thread run: budget lands mid-snapshot, then resume.
    let killed = study.run_full_supervised(&SupervisorConfig {
        domain_budget: Some(want.iter().map(Snapshot::len).sum::<usize>() / 3),
        ..base.clone()
    });
    assert!(matches!(killed, SupervisedOutcome::Suspended { .. }));
    let resumed = study.run_full_supervised(&base);
    let SupervisedOutcome::Complete {
        snapshots: got,
        report: got_report,
    } = resumed
    else {
        panic!("resumed run must complete")
    };

    assert_eq!(
        fingerprint(&want),
        fingerprint(&got),
        "kill/resume under 8 threads must equal an uninterrupted sequential run"
    );
    assert_eq!(want_report, got_report);
    assert!(want_report.retries_issued > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The shard merge is order-preserving for any population size and
    /// any thread count: mapping the identity function through
    /// `map_sharded` returns the input verbatim.
    #[test]
    fn shard_merge_preserves_input_order(len in 0usize..300, threads in 0usize..20) {
        let items: Vec<usize> = (0..len).collect();
        let out = map_sharded(threads, &items, |_, &x| x);
        prop_assert_eq!(out, items);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The O(changes) weekly driver is thread-count invariant for
    /// arbitrary seeds: 1-thread and 8-thread runs digest identically,
    /// cache accounting included.
    #[test]
    fn weekly_incremental_is_thread_invariant_over_seeds(seed in 0u64..1_000_000) {
        let study = Study::new(Ecosystem::generate(EcosystemConfig::paper(seed, 0.005)));
        let (p1, h1, s1) = study.run_weekly_incremental_with_threads(1);
        let (p8, h8, s8) = study.run_weekly_incremental_with_threads(8);
        prop_assert_eq!(weekly_fingerprint(&p1, &h1), weekly_fingerprint(&p8, &h8));
        prop_assert_eq!(s1, s8);
    }
}
