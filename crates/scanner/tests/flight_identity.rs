//! The flight recorder determinism contract (DESIGN.md "Flight
//! recorder"): turning the windowed recorder on must never change any
//! scan output. The recorder only diffs collector snapshots on the
//! orchestrating thread — no RNG draw, no sim-clock advance, no lock on
//! the scan path — so the full monthly study and the weekly series must
//! digest byte-identically with the recorder off and on, at worker
//! counts 1 and 8 (CI runs this suite at SCAN_THREADS ∈ {1, 8} as
//! well).

use ecosystem::{Ecosystem, EcosystemConfig, TldId};
use mtasts_scanner::longitudinal::{MxHistory, Study, WeeklyPoint};
use mtasts_scanner::Snapshot;
use std::collections::HashMap;
use std::sync::Mutex;

const THREAD_COUNTS: [usize; 2] = [1, 8];

/// Flight enablement is process-global; serialize the tests that toggle
/// it so they cannot observe each other's state.
static GATE: Mutex<()> = Mutex::new(());

fn study() -> Study {
    Study::new(Ecosystem::generate(EcosystemConfig::paper(42, 0.01)))
}

fn fingerprint(snapshots: &[Snapshot]) -> String {
    let digest: Vec<_> = snapshots
        .iter()
        .map(|s| {
            let mut ips: Vec<_> = s
                .policy_ips
                .iter()
                .map(|(d, ip)| (d.to_string(), ip.to_string()))
                .collect();
            ips.sort();
            (s.date, &s.scans, ips)
        })
        .collect();
    serde_json::to_string(&digest).expect("snapshots serialize")
}

fn weekly_fingerprint(weekly: &[WeeklyPoint], history: &MxHistory) -> String {
    let sorted = |m: &HashMap<TldId, u64>| {
        let mut v: Vec<_> = m.iter().map(|(t, c)| (format!("{t:?}"), *c)).collect();
        v.sort();
        v
    };
    let points: Vec<_> = weekly
        .iter()
        .map(|p| {
            (
                p.date,
                sorted(&p.mtasts_per_tld),
                sorted(&p.tlsrpt_among_mtasts_per_tld),
            )
        })
        .collect();
    let mut hist: Vec<_> = history
        .iter()
        .map(|(d, v)| (d.to_string(), format!("{v:?}")))
        .collect();
    hist.sort();
    serde_json::to_string(&(points, hist)).expect("weekly series serializes")
}

#[test]
fn flight_recorder_never_perturbs_full_or_weekly_digests() {
    let _gate = GATE.lock().unwrap_or_else(|p| p.into_inner());
    let study = study();

    let mut digests: Vec<(bool, usize, String, String)> = Vec::new();
    for flight in [false, true] {
        obsv::timeseries::set_flight(flight);
        obsv::set_enabled(flight);
        obsv::reset();
        obsv::timeseries::reset_flight();
        for threads in THREAD_COUNTS {
            let full = fingerprint(&study.run_full_with_threads(threads));
            let (weekly, history, _) = study.run_weekly_incremental_with_threads(threads);
            digests.push((flight, threads, full, weekly_fingerprint(&weekly, &history)));
        }
    }
    obsv::timeseries::set_flight(false);
    obsv::set_enabled(false);
    obsv::timeseries::reset_flight();

    let (_, _, want_full, want_weekly) = &digests[0];
    for (flight, threads, full, weekly) in &digests[1..] {
        assert_eq!(
            full, want_full,
            "full digest diverges (flight={flight}, threads={threads})"
        );
        assert_eq!(
            weekly, want_weekly,
            "weekly digest diverges (flight={flight}, threads={threads})"
        );
    }
}

#[test]
fn flight_recorder_actually_records_per_date_windows() {
    // The identity test above would pass vacuously if the recorder
    // never recorded; prove the enabled runs fold per-date windows —
    // and that the sim series' deterministic layer (counter and
    // span-count deltas; gauges like health.rss_kb are execution
    // observables) is *identical* across thread counts.
    let _gate = GATE.lock().unwrap_or_else(|p| p.into_inner());

    let mut sims: Vec<(usize, String)> = Vec::new();
    for threads in THREAD_COUNTS {
        // Fresh study per thread count: the comparison is "same work,
        // different parallelism", not "cold cache vs primed cache".
        let study = study();
        obsv::timeseries::set_flight(true);
        obsv::reset();
        obsv::timeseries::reset_flight();
        let (weekly, _, _) = study.run_weekly_incremental_with_threads(threads);
        let recorder = obsv::timeseries::take().expect("weekly driver rolled the recorder");
        obsv::timeseries::set_flight(false);
        obsv::set_enabled(false);
        assert_eq!(
            recorder.sim.len(),
            weekly.len(),
            "one sim window per weekly date (threads={threads})"
        );
        let snapshots: u64 = recorder
            .sim
            .iter()
            .map(|(_, w)| w.counter("snapshot.weekly"))
            .sum();
        // The first weekly point rides the priming sweep instead of a
        // snapshot.weekly span, so the span total is dates - 1.
        assert_eq!(
            snapshots,
            weekly.len() as u64 - 1,
            "every snapshot.weekly span lands in a per-date window"
        );
        let counters_only: Vec<(i64, Vec<(&str, u64)>)> = recorder
            .sim
            .iter()
            .map(|(k, w)| (k, w.counters.iter().map(|(n, v)| (*n, *v)).collect()))
            .collect();
        sims.push((threads, format!("{counters_only:?}")));
    }
    let (_, want) = &sims[0];
    for (threads, sim) in &sims[1..] {
        assert_eq!(
            sim, want,
            "sim-keyed counter series diverges across thread counts (threads={threads})"
        );
    }
}
