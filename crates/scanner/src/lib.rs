//! `scanner` — the paper's measurement pipeline.
//!
//! Everything §3-§5 does to the live Internet, done to a
//! [`simnet::World`]:
//!
//! - [`taxonomy`]: the per-domain scan record and every error category the
//!   paper reports (record errors, the policy-retrieval ladder, MX
//!   certificate verdicts, mx-pattern inconsistency classes, predicted
//!   delivery failures);
//! - [`classify`]: the managing-entity heuristics of §4.3.1 (≥50-domain
//!   third parties, same-eSLD self-management, ≤5-domain policy hosts,
//!   and the single-administrator IP-grouping nuance);
//! - [`scan`]: one full-component snapshot scan of a world;
//! - [`parallel`]: the deterministic parallel scan engine's thread-count
//!   resolution and its determinism argument (sharding, per-shard
//!   clocks, in-order merge);
//! - [`longitudinal`]: the weekly record series and monthly full scans
//!   over the whole study calendar, retaining MX history for Figure 9;
//! - [`incremental`]: the change-driven rescan cache that makes the
//!   longitudinal drivers cost O(changes) instead of O(dates × domains)
//!   while staying byte-identical to from-scratch runs;
//! - [`supervisor`]: the checkpointing, resumable, panic-isolating driver
//!   around the monthly campaign, with its degradation report;
//! - [`analysis`]: figure- and table-shaped aggregations;
//! - [`notify`]: the §4.7 responsible-disclosure campaign simulation.

pub mod analysis;
pub mod classify;
pub mod incremental;
pub mod longitudinal;
pub mod notify;
pub mod parallel;
pub mod scan;
pub mod supervisor;
pub mod taxonomy;

pub use classify::{EntityClass, EntityClassifier};
pub use incremental::{CacheStats, IncrementalScanner};
pub use longitudinal::{LongitudinalRun, Study};
pub use parallel::default_scan_threads;
pub use scan::{scan_domain, scan_snapshot, scan_snapshot_with_threads, ScanConfig, Snapshot};
pub use supervisor::{DegradationReport, SupervisedOutcome, SupervisorConfig};
pub use taxonomy::{
    DomainScan, MisconfigCategory, MxVerdict, PolicyLayer, ScanAttempts, StageAttempts,
};
