//! The deterministic parallel scan engine's plumbing: thread-count
//! resolution and the `Send + Sync` audit of everything a shard worker
//! touches.
//!
//! # Determinism argument
//!
//! PR 1 made each domain scan a pure function of
//! `(world, domain, admitted instant, config)`: retry jitter forks off
//! `config.seed` and the domain name, transient-fault draws are keyed on
//! `(seed, scope, instant)`, and the world's zones and endpoints are
//! immutable for the duration of a snapshot (its mutexes guard maps that
//! scanning only reads; the resolver's TTL cache is a pure memoization of
//! lookups against those static zones, so a hit and a miss return the
//! same answer). The engine therefore only has to guarantee that
//!
//! 1. every domain is scanned at the **same admitted instant** regardless
//!    of thread count — [`netbase::TokenBucket::plan_admissions`] plans
//!    the whole throttled timeline on one logical bucket up front, and
//!    each shard consumes its contiguous slice of that plan; and
//! 2. results are merged back **in input order** —
//!    [`netbase::map_sharded`]'s contiguous stable shards concatenate to
//!    exactly the sequential output.
//!
//! Everything else (per-TLD counters, the entity classifier, policy-IP
//! maps) is folded sequentially from that ordered vector, so a parallel
//! snapshot is byte-identical to a sequential one for any `K`.

/// Hard cap on auto-detected scan parallelism (an explicit
/// `SCAN_THREADS` may exceed it).
const AUTO_THREAD_CAP: usize = 8;

/// The scan engine's thread count: the `SCAN_THREADS` environment
/// variable when set to a positive integer, otherwise the machine's
/// available parallelism capped at 8 (beyond that the in-memory world's
/// shared mutexes start to dominate). Always at least 1.
pub fn default_scan_threads() -> usize {
    match std::env::var("SCAN_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get().min(AUTO_THREAD_CAP))
            .unwrap_or(1),
    }
}

// The Send + Sync audit, encoded as compile-time assertions: a shard
// worker holds `&World`, `&Ecosystem` and `&ScanConfig` across threads.
// None of these may grow thread-hostile interior mutability (`Rc`,
// `RefCell`, raw pointers) without this failing to compile.
#[allow(dead_code)]
fn static_assert_scan_inputs_are_shareable() {
    fn shareable<T: Send + Sync>() {}
    shareable::<simnet::World>();
    shareable::<ecosystem::Ecosystem>();
    shareable::<crate::scan::ScanConfig>();
    shareable::<crate::taxonomy::DomainScan>();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thread_count_is_positive() {
        assert!(default_scan_threads() >= 1);
    }
}
