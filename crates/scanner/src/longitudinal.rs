//! The longitudinal study driver: weekly record scans (2021-09 →
//! 2024-09) and monthly full-component scans (2023-11 → 2024-09), §3.1
//! and §4.1.
//!
//! Both series run through the incremental engine by default
//! ([`crate::incremental`]): a persistent delta-built world plus a
//! change-driven cache, byte-identical to the from-scratch drivers
//! (`run_weekly_scratch_with_threads`, `run_full_scratch_with_threads`),
//! which are kept as the reference oracles for the digest suite.

use crate::incremental::{cache_forced, CacheStats, HitKind};
use crate::parallel::default_scan_threads;
use crate::scan::{scan_snapshot_with_threads, ScanConfig, Snapshot};
use ecosystem::{DomainSpec, Ecosystem, IncrementalWorld, SnapshotDetail, TldId};
use mtasts::evaluate_record_set;
use netbase::{map_sharded, DomainName, SimDate, SimInstant};
use serde::Serialize;
use simnet::World;
use std::collections::HashMap;
use std::sync::Arc;

/// One weekly record-level observation.
#[derive(Debug, Clone, Serialize)]
pub struct WeeklyPoint {
    /// Snapshot date.
    pub date: SimDate,
    /// Domains with a (valid) MTA-STS record, per TLD.
    pub mtasts_per_tld: HashMap<TldId, u64>,
    /// Domains with both MTA-STS and TLSRPT records, per TLD (Figure 12's
    /// bottom panel numerators).
    pub tlsrpt_among_mtasts_per_tld: HashMap<TldId, u64>,
}

impl WeeklyPoint {
    /// Total MTA-STS domains across TLDs.
    pub fn total(&self) -> u64 {
        self.mtasts_per_tld.values().sum()
    }
}

/// One collapsed MX observation: the date a distinct host set was first
/// seen and the (shared) set itself.
pub type MxObservation = (SimDate, Arc<[DomainName]>);

/// One domain's MX history: the collapsed weekly observation series plus
/// first-seen columns, so historical-host lookups are a binary search
/// over parallel vectors instead of a scan-and-dedup allocation.
#[derive(Debug, Clone, Default)]
struct DomainMx {
    /// `(date, hosts)` observations, consecutive duplicates collapsed.
    observations: Vec<MxObservation>,
    /// Date each distinct host was first observed, ascending (parallel
    /// to `first_hosts` — `record` runs in date order, so first-seen
    /// order is ascending by construction).
    first_dates: Vec<SimDate>,
    /// Distinct hosts in first-observation order.
    first_hosts: Vec<DomainName>,
}

/// MX history: per domain, the (date, MX set) observations with
/// consecutive duplicates collapsed — the raw material of Figure 9.
/// Observation sets are shared `Arc` slices (one allocation per *change*,
/// not per week), and [`MxHistory::historical_mx`] answers from borrowed
/// first-seen columns without allocating.
#[derive(Debug, Clone, Default)]
pub struct MxHistory {
    entries: HashMap<DomainName, DomainMx>,
}

impl MxHistory {
    /// Appends an observation; empty and consecutive-duplicate MX sets
    /// are no-ops. Must be called in ascending date order per domain.
    pub(crate) fn record(&mut self, name: &DomainName, date: SimDate, mx: &Arc<[DomainName]>) {
        if mx.is_empty() {
            return;
        }
        let entry = self.entries.entry(name.clone()).or_default();
        if entry.observations.last().map(|(_, prev)| &prev[..]) == Some(&mx[..]) {
            return;
        }
        entry.observations.push((date, Arc::clone(mx)));
        for host in mx.iter() {
            if !entry.first_hosts.contains(host) {
                entry.first_dates.push(date);
                entry.first_hosts.push(host.clone());
            }
        }
    }

    /// Number of domains with at least one observation.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no domain has observations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates domains with their collapsed observation series, in
    /// arbitrary order (like the map this type replaces).
    pub fn iter(&self) -> impl Iterator<Item = (&DomainName, &[MxObservation])> {
        self.entries
            .iter()
            .map(|(d, e)| (d, e.observations.as_slice()))
    }

    /// Hosts of `domain` first observed strictly before `before`, in
    /// first-observation order — a borrowed slice, no per-call work
    /// beyond one binary search.
    pub fn historical_mx(&self, domain: &DomainName, before: SimDate) -> &[DomainName] {
        let Some(entry) = self.entries.get(domain) else {
            return &[];
        };
        let k = entry.first_dates.partition_point(|d| *d < before);
        &entry.first_hosts[..k]
    }
}

/// The whole study's outputs.
pub struct LongitudinalRun {
    /// Weekly record-level series.
    pub weekly: Vec<WeeklyPoint>,
    /// Monthly full-component snapshots.
    pub full: Vec<Snapshot>,
    /// MX record history across weekly scans.
    pub mx_history: MxHistory,
}

impl LongitudinalRun {
    /// The most recent full snapshot (the paper's "latest snapshot").
    pub fn latest(&self) -> &Snapshot {
        self.full.last().expect("study produces full snapshots")
    }

    /// Historical MX hosts of `domain` observed strictly before `date`,
    /// in first-observation order (a borrowed slice of the history's
    /// first-seen column).
    pub fn historical_mx(&self, domain: &DomainName, before: SimDate) -> &[DomainName] {
        self.mx_history.historical_mx(domain, before)
    }
}

/// One domain's weekly DNS observation, or `None` when the domain has no
/// *valid* MTA-STS record that week. Validity is [`evaluate_record_set`]
/// — the same semantics the sender and the full scan apply — so a
/// malformed record, a wrong version tag, or a duplicate set never
/// inflates the adoption series (§3.1 counts working deployments).
pub(crate) type WeeklyObservation = Option<(TldId, bool, Arc<[DomainName]>)>;

pub(crate) fn weekly_observe(
    world: &World,
    spec: &DomainSpec,
    now: SimInstant,
) -> WeeklyObservation {
    let txts = world.mta_sts_txts(&spec.name, now).ok()?;
    evaluate_record_set(&txts).ok()?;
    let tlsrpt = world
        .tlsrpt_txts(&spec.name, now)
        .map(|t| t.iter().any(|s| s.starts_with("v=TLSRPTv1")))
        .unwrap_or(false);
    let mx: Arc<[DomainName]> = world.mx_records(&spec.name, now).unwrap_or_default().into();
    Some((spec.tld, tlsrpt, mx))
}

/// Folds one week's merged, input-ordered observations into the per-TLD
/// counters and the MX history. Shared by the scratch and incremental
/// drivers so they cannot drift.
fn fold_weekly(
    date: SimDate,
    domains: &[DomainSpec],
    observations: &[WeeklyObservation],
    history: &mut MxHistory,
) -> WeeklyPoint {
    let mut mtasts: HashMap<TldId, u64> = HashMap::new();
    let mut tlsrpt: HashMap<TldId, u64> = HashMap::new();
    for (spec, observed) in domains.iter().zip(observations) {
        let Some((tld, has_tlsrpt, mx)) = observed else {
            continue;
        };
        *mtasts.entry(*tld).or_default() += 1;
        if *has_tlsrpt {
            *tlsrpt.entry(*tld).or_default() += 1;
        }
        history.record(&spec.name, date, mx);
    }
    WeeklyPoint {
        date,
        mtasts_per_tld: mtasts,
        tlsrpt_among_mtasts_per_tld: tlsrpt,
    }
}

/// Increments a delta-maintained per-TLD counter.
fn counter_add(map: &mut HashMap<TldId, u64>, tld: TldId) {
    *map.entry(tld).or_default() += 1;
}

/// Decrements a delta-maintained per-TLD counter, removing the entry at
/// zero so the map stays byte-identical to a from-scratch fold (which
/// never holds zero counts).
fn counter_sub(map: &mut HashMap<TldId, u64>, tld: TldId) {
    let v = map
        .get_mut(&tld)
        .expect("decrement mirrors a prior increment");
    *v -= 1;
    if *v == 0 {
        map.remove(&tld);
    }
}

/// The study driver around a generated ecosystem.
pub struct Study {
    /// The population under study.
    pub eco: Ecosystem,
}

impl Study {
    /// Wraps an ecosystem.
    pub fn new(eco: Ecosystem) -> Study {
        Study { eco }
    }

    /// Runs the weekly record-level series, collecting MX history, on
    /// the default thread count.
    pub fn run_weekly(&self) -> (Vec<WeeklyPoint>, MxHistory) {
        self.run_weekly_with_threads(default_scan_threads())
    }

    /// [`Study::run_weekly`] with an explicit thread count, through the
    /// incremental engine. Per-domain DNS observations fan out across
    /// shard workers; the per-TLD counters and the MX history fold from
    /// the merged, input-ordered observation vector, so the series is
    /// byte-identical for every thread count.
    pub fn run_weekly_with_threads(&self, threads: usize) -> (Vec<WeeklyPoint>, MxHistory) {
        let (weekly, history, _) = self.run_weekly_incremental_with_threads(threads);
        (weekly, history)
    }

    /// The from-scratch weekly driver: one full world per week, every
    /// domain queried. Kept as the reference oracle the incremental
    /// engine is digest-checked against.
    pub fn run_weekly_scratch_with_threads(&self, threads: usize) -> (Vec<WeeklyPoint>, MxHistory) {
        let mut weekly = Vec::new();
        let mut history = MxHistory::default();
        let domains = &self.eco.population.domains;
        for date in self.eco.config.weekly_snapshots() {
            let _span = obsv::span!("snapshot.weekly");
            let world = self.eco.world_at(date, SnapshotDetail::DnsOnly);
            let now = date.at_midnight();
            // The paper queries every zone-file domain; unadopted
            // domains simply have no record yet.
            let observations = map_sharded(threads, domains, |_, spec| {
                weekly_observe(&world, spec, now)
            });
            weekly.push(fold_weekly(date, domains, &observations, &mut history));
        }
        (weekly, history)
    }

    /// The incremental weekly driver, O(changes) per date: the
    /// persistent world advance reports exactly which population indices
    /// it rewrote ([`IncrementalWorld::last_dirty`]), and only those are
    /// re-keyed and re-observed. The per-TLD counters, the MX history
    /// and the cached observations are all delta-maintained, so a calm
    /// week costs O(dirty) — no per-date population sweep at all.
    ///
    /// Policy-side changes (e.g. the lucidgrow incident rewriting hosted
    /// policy documents) deliberately do *not* invalidate weekly
    /// entries — the weekly series never looks at policies: the cache
    /// key is the (record, mx) fingerprint component pair.
    pub fn run_weekly_incremental_with_threads(
        &self,
        threads: usize,
    ) -> (Vec<WeeklyPoint>, MxHistory, CacheStats) {
        let mut weekly = Vec::new();
        let mut history = MxHistory::default();
        let mut stats = CacheStats::default();
        let mut engine = IncrementalWorld::new(SnapshotDetail::DnsOnly);
        let domains = &self.eco.population.domains;
        let n = domains.len();
        // Persistent per-index state: the (record, mx) fingerprint key
        // each cached observation was taken under (`None` = unadopted),
        // and the observation itself.
        type Key = Option<(u64, u64)>;
        let mut keys: Vec<Key> = vec![None; n];
        let mut obs: Vec<WeeklyObservation> = vec![None; n];
        let mut primed = false;
        // Running per-TLD counters mirroring `obs` (zeroed entries
        // removed — see `counter_sub`).
        let mut mtasts: HashMap<TldId, u64> = HashMap::new();
        let mut tlsrpt: HashMap<TldId, u64> = HashMap::new();
        // Indices rewritten by the engine since the last delta fold.
        let mut pending: Vec<u32> = Vec::new();
        let mut forced_since_fold = false;
        let snapshot_dates = self.eco.config.weekly_snapshots();
        let date_count = snapshot_dates.len() as u64;
        // Closes the date's flight-recorder window and emits a progress
        // tick — called at each of the loop's three exits, on the driver
        // thread, after the workers were absorbed. Free when off.
        let weekly_tick = |date: SimDate, ord: usize| {
            obsv::timeseries::roll(date.at_midnight().unix_secs());
            obsv::health::progress("scan.weekly", ord as u64 + 1, date_count);
        };
        for (date_ord, date) in snapshot_dates.into_iter().enumerate() {
            let _span = obsv::span!("snapshot.weekly");
            engine.advance_to(&self.eco, date);
            pending.extend_from_slice(engine.last_dirty());
            let world = engine.world();
            let now = date.at_midnight();
            if cache_forced(world) {
                // Instant-keyed faults: observe everything, cache
                // nothing. Persistent state is left untouched (and
                // `pending` retained), so the next clean date folds the
                // accumulated changes.
                let observations =
                    map_sharded(threads, domains, |_, spec| weekly_observe(world, spec, now));
                stats.count_many(HitKind::Forced, n as u64);
                weekly.push(fold_weekly(date, domains, &observations, &mut history));
                forced_since_fold = true;
                weekly_tick(date, date_ord);
                continue;
            }
            if !primed {
                // First clean date: every domain misses once (adopted or
                // not), priming the cache and the running counters.
                let observations =
                    map_sharded(threads, domains, |_, spec| weekly_observe(world, spec, now));
                for (i, key) in keys.iter_mut().enumerate() {
                    *key = engine.installed_fingerprint(i).map(|fp| (fp.record, fp.mx));
                }
                stats.count_many(HitKind::Miss, n as u64);
                let point = fold_weekly(date, domains, &observations, &mut history);
                mtasts = point.mtasts_per_tld.clone();
                tlsrpt = point.tlsrpt_among_mtasts_per_tld.clone();
                obs = observations;
                weekly.push(point);
                pending.clear();
                primed = true;
                forced_since_fold = false;
                weekly_tick(date, date_ord);
                continue;
            }
            // Steady state: only indices the engine rewrote since the
            // last fold can have a different (record, mx) key, and only
            // a different key can change the observation.
            pending.sort_unstable();
            pending.dedup();
            let changed: Vec<u32> = pending
                .drain(..)
                .filter(|&i| {
                    let key = engine
                        .installed_fingerprint(i as usize)
                        .map(|fp| (fp.record, fp.mx));
                    keys[i as usize] != key
                })
                .collect();
            let fresh = map_sharded(threads, &changed, |_, &i| {
                weekly_observe(world, &domains[i as usize], now)
            });
            stats.count_many(HitKind::Miss, changed.len() as u64);
            stats.count_many(HitKind::Full, (n - changed.len()) as u64);
            for (&i, ob) in changed.iter().zip(&fresh) {
                let idx = i as usize;
                if let Some((tld, had_tlsrpt, _)) = &obs[idx] {
                    counter_sub(&mut mtasts, *tld);
                    if *had_tlsrpt {
                        counter_sub(&mut tlsrpt, *tld);
                    }
                }
                if let Some((tld, has_tlsrpt, _)) = ob {
                    counter_add(&mut mtasts, *tld);
                    if *has_tlsrpt {
                        counter_add(&mut tlsrpt, *tld);
                    }
                }
                keys[idx] = engine
                    .installed_fingerprint(idx)
                    .map(|fp| (fp.record, fp.mx));
                obs[idx] = ob.clone();
            }
            if forced_since_fold {
                // A forced sweep may have appended transient MX sets; a
                // full dup-guarded walk restores the steady-state tail,
                // exactly as replaying every cached observation would.
                for (spec, ob) in domains.iter().zip(&obs) {
                    if let Some((_, _, mx)) = ob {
                        history.record(&spec.name, date, mx);
                    }
                }
                forced_since_fold = false;
            } else {
                // Unchanged observations repeat their last recorded MX
                // set, which the dup guard would drop — record only the
                // changed ones (ascending index order, like a fold).
                for &i in &changed {
                    if let Some((_, _, mx)) = &obs[i as usize] {
                        history.record(&domains[i as usize].name, date, mx);
                    }
                }
            }
            weekly.push(WeeklyPoint {
                date,
                mtasts_per_tld: mtasts.clone(),
                tlsrpt_among_mtasts_per_tld: tlsrpt.clone(),
            });
            weekly_tick(date, date_ord);
        }
        (weekly, history, stats)
    }

    /// Runs the monthly full-component scans on the default thread count.
    pub fn run_full(&self) -> Vec<Snapshot> {
        self.run_full_with_threads(default_scan_threads())
    }

    /// [`Study::run_full`] with an explicit thread count, through the
    /// incremental engine; the snapshots are byte-identical for every
    /// value.
    pub fn run_full_with_threads(&self, threads: usize) -> Vec<Snapshot> {
        self.run_full_incremental_with_threads(threads).0
    }

    /// The from-scratch monthly driver: one full world per snapshot
    /// date, every adopted domain scanned end to end. Kept as the
    /// reference oracle the incremental engine is digest-checked
    /// against.
    pub fn run_full_scratch_with_threads(&self, threads: usize) -> Vec<Snapshot> {
        let mut out = Vec::new();
        for date in self.eco.config.full_scan_dates() {
            let _span = obsv::span!("snapshot.full");
            let world = self.eco.world_at(date, SnapshotDetail::Full);
            let domains: Vec<DomainName> =
                self.eco.domains_at(date).map(|d| d.name.clone()).collect();
            out.push(scan_snapshot_with_threads(
                &world,
                &domains,
                date,
                None,
                &ScanConfig::default(),
                threads,
            ));
        }
        out
    }

    /// Runs the complete study.
    pub fn run(&self) -> LongitudinalRun {
        let (weekly, mx_history) = self.run_weekly();
        let full = self.run_full();
        LongitudinalRun {
            weekly,
            full,
            mx_history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosystem::EcosystemConfig;

    fn study() -> Study {
        Study::new(Ecosystem::generate(EcosystemConfig::paper(42, 0.01)))
    }

    #[test]
    fn weekly_series_grows_and_matches_curve() {
        let study = study();
        let (weekly, history) = study.run_weekly();
        assert_eq!(weekly.len(), 160);
        let first = weekly.first().unwrap().total();
        let last = weekly.last().unwrap().total();
        assert!(last > first * 3, "{first} -> {last}");
        // The measured totals equal the adopted-domain counts minus the
        // record-faulted ones: `evaluate_record_set` (the sender's own
        // semantics) rejects every injected record fault, so a broken
        // record never counts as adoption.
        let date = weekly.last().unwrap().date;
        let expected = study
            .eco
            .domains_at(date)
            .filter(|d| d.faults.record.is_none())
            .count() as u64;
        assert_eq!(last, expected);
        // Pinned seed-42 scale-0.01 totals: the record-validity semantics
        // (`evaluate_record_set`, not a substring heuristic) are part of
        // the series' contract — a drift here is a semantics change, not
        // noise. (Re-pinned when the residual-tracking allocator fixed
        // per-category rounding drift at fractional scales.)
        assert_eq!((first, last), (149, 674));
        assert!(!history.is_empty());
    }

    #[test]
    fn weekly_scratch_and_incremental_agree() {
        let study = study();
        let (scratch_weekly, scratch_history) = study.run_weekly_scratch_with_threads(2);
        let (inc_weekly, inc_history, stats) = study.run_weekly_incremental_with_threads(2);
        // Canonical form: HashMaps iterate in arbitrary per-instance
        // order, so sort everything before comparing.
        let sorted = |m: &HashMap<TldId, u64>| {
            let mut v: Vec<_> = m.iter().map(|(t, c)| (format!("{t:?}"), *c)).collect();
            v.sort();
            v
        };
        let digest = |w: &[WeeklyPoint], h: &MxHistory| {
            let points: Vec<_> = w
                .iter()
                .map(|p| {
                    (
                        p.date,
                        sorted(&p.mtasts_per_tld),
                        sorted(&p.tlsrpt_among_mtasts_per_tld),
                    )
                })
                .collect();
            let mut hist: Vec<_> = h
                .iter()
                .map(|(d, v)| (d.to_string(), format!("{v:?}")))
                .collect();
            hist.sort();
            (points, hist)
        };
        assert_eq!(
            digest(&scratch_weekly, &scratch_history),
            digest(&inc_weekly, &inc_history)
        );
        // 160 weeks over a mostly-static population: reuse dominates.
        assert!(
            stats.full_hits > stats.misses * 10,
            "weekly reuse should dominate: {stats:?}"
        );
        assert_eq!(stats.forced, 0);
    }

    #[test]
    fn org_spike_is_visible_in_weekly_series() {
        let study = study();
        let (weekly, _) = study.run_weekly();
        // Find the week straddling 2024-01-02.
        let spike_date = SimDate::ymd(2024, 1, 2);
        let before = weekly.iter().rfind(|w| w.date < spike_date).unwrap();
        let after = weekly.iter().find(|w| w.date >= spike_date).unwrap();
        let b = before.mtasts_per_tld.get(&TldId::Org).copied().unwrap_or(0);
        let a = after.mtasts_per_tld.get(&TldId::Org).copied().unwrap_or(0);
        // At scale 0.01 the spike is ~5 domains on a base of ~50.
        assert!(a > b, "org {b} -> {a}");
    }

    #[test]
    fn full_scans_cover_the_calendar() {
        let study = study();
        let full = study.run_full();
        assert_eq!(full.len(), 11);
        assert_eq!(full.last().unwrap().date, SimDate::ymd(2024, 9, 29));
        // Later scans see more domains.
        assert!(full.last().unwrap().len() > full.first().unwrap().len());
    }

    #[test]
    fn historical_mx_lookup() {
        let study = study();
        let run = study.run();
        // Find a stale-migration domain whose migration falls inside the
        // window (and whose record is valid, so the weekly series tracks
        // it); its legacy MX must appear in history before migration.
        let stale = study.eco.population.domains.iter().find_map(|d| {
            let inc = d.faults.inconsistency.as_ref()?;
            let migration = inc.stale_migration?;
            (d.faults.record.is_none()
                && migration > d.adopted.add_days(14)
                && migration < SimDate::ymd(2024, 8, 1))
            .then_some((d, migration))
        });
        let Some((spec, migration)) = stale else {
            return; // tiny scale may not include one; other tests cover it
        };
        let hist = run.historical_mx(&spec.name, migration);
        assert!(
            hist.iter().any(|h| h.to_string().contains("oldhost-")),
            "{}: {hist:?}",
            spec.name
        );
    }
}
