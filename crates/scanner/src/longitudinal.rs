//! The longitudinal study driver: weekly record scans (2021-09 →
//! 2024-09) and monthly full-component scans (2023-11 → 2024-09), §3.1
//! and §4.1.

use crate::parallel::default_scan_threads;
use crate::scan::{scan_snapshot_with_threads, ScanConfig, Snapshot};
use ecosystem::{Ecosystem, SnapshotDetail, TldId};
use netbase::{map_sharded, DomainName, SimDate};
use serde::Serialize;
use std::collections::HashMap;

/// One weekly record-level observation.
#[derive(Debug, Clone, Serialize)]
pub struct WeeklyPoint {
    /// Snapshot date.
    pub date: SimDate,
    /// Domains with a (present) MTA-STS record, per TLD.
    pub mtasts_per_tld: HashMap<TldId, u64>,
    /// Domains with both MTA-STS and TLSRPT records, per TLD (Figure 12's
    /// bottom panel numerators).
    pub tlsrpt_among_mtasts_per_tld: HashMap<TldId, u64>,
}

impl WeeklyPoint {
    /// Total MTA-STS domains across TLDs.
    pub fn total(&self) -> u64 {
        self.mtasts_per_tld.values().sum()
    }
}

/// MX history: per domain, the (date, MX set) observations with
/// consecutive duplicates collapsed — the raw material of Figure 9.
pub type MxHistory = HashMap<DomainName, Vec<(SimDate, Vec<DomainName>)>>;

/// The whole study's outputs.
pub struct LongitudinalRun {
    /// Weekly record-level series.
    pub weekly: Vec<WeeklyPoint>,
    /// Monthly full-component snapshots.
    pub full: Vec<Snapshot>,
    /// MX record history across weekly scans.
    pub mx_history: MxHistory,
}

impl LongitudinalRun {
    /// The most recent full snapshot (the paper's "latest snapshot").
    pub fn latest(&self) -> &Snapshot {
        self.full.last().expect("study produces full snapshots")
    }

    /// Historical MX hosts of `domain` observed strictly before `date`.
    pub fn historical_mx(&self, domain: &DomainName, before: SimDate) -> Vec<DomainName> {
        let mut out = Vec::new();
        if let Some(entries) = self.mx_history.get(domain) {
            for (date, hosts) in entries {
                if *date < before {
                    for h in hosts {
                        if !out.contains(h) {
                            out.push(h.clone());
                        }
                    }
                }
            }
        }
        out
    }
}

/// The study driver around a generated ecosystem.
pub struct Study {
    /// The population under study.
    pub eco: Ecosystem,
}

impl Study {
    /// Wraps an ecosystem.
    pub fn new(eco: Ecosystem) -> Study {
        Study { eco }
    }

    /// Runs the weekly record-level series, collecting MX history, on
    /// the default thread count.
    pub fn run_weekly(&self) -> (Vec<WeeklyPoint>, MxHistory) {
        self.run_weekly_with_threads(default_scan_threads())
    }

    /// [`Study::run_weekly`] with an explicit thread count. Per-domain
    /// DNS observations fan out across shard workers; the per-TLD
    /// counters and the MX history fold from the merged, input-ordered
    /// observation vector, so the series is byte-identical for every
    /// thread count.
    pub fn run_weekly_with_threads(&self, threads: usize) -> (Vec<WeeklyPoint>, MxHistory) {
        let mut weekly = Vec::new();
        let mut history: MxHistory = HashMap::new();
        for date in self.eco.config.weekly_snapshots() {
            let world = self.eco.world_at(date, SnapshotDetail::DnsOnly);
            let now = date.at_midnight();
            // The paper queries every zone-file domain; unadopted
            // domains simply have no record yet. `None` = no (valid)
            // MTA-STS record this week.
            let observations = map_sharded(threads, &self.eco.population.domains, |_, spec| {
                let txts = world.mta_sts_txts(&spec.name, now).ok()?;
                if !txts
                    .iter()
                    .any(|t| t.starts_with("v=STS") || t.contains("STS"))
                {
                    return None;
                }
                let tlsrpt = world
                    .tlsrpt_txts(&spec.name, now)
                    .map(|t| t.iter().any(|s| s.starts_with("v=TLSRPTv1")))
                    .unwrap_or(false);
                let mx = world.mx_records(&spec.name, now).unwrap_or_default();
                Some((spec.tld, tlsrpt, mx))
            });
            let mut mtasts: HashMap<TldId, u64> = HashMap::new();
            let mut tlsrpt: HashMap<TldId, u64> = HashMap::new();
            for (spec, observed) in self.eco.population.domains.iter().zip(observations) {
                let Some((tld, has_tlsrpt, mx)) = observed else {
                    continue;
                };
                *mtasts.entry(tld).or_default() += 1;
                if has_tlsrpt {
                    *tlsrpt.entry(tld).or_default() += 1;
                }
                // MX history (collapse consecutive duplicates).
                if !mx.is_empty() {
                    let entry = history.entry(spec.name.clone()).or_default();
                    if entry.last().map(|(_, prev)| prev) != Some(&mx) {
                        entry.push((date, mx));
                    }
                }
            }
            weekly.push(WeeklyPoint {
                date,
                mtasts_per_tld: mtasts,
                tlsrpt_among_mtasts_per_tld: tlsrpt,
            });
        }
        (weekly, history)
    }

    /// Runs the monthly full-component scans on the default thread count.
    pub fn run_full(&self) -> Vec<Snapshot> {
        self.run_full_with_threads(default_scan_threads())
    }

    /// [`Study::run_full`] with an explicit thread count; the snapshots
    /// are byte-identical for every value.
    pub fn run_full_with_threads(&self, threads: usize) -> Vec<Snapshot> {
        let mut out = Vec::new();
        for date in self.eco.config.full_scan_dates() {
            let world = self.eco.world_at(date, SnapshotDetail::Full);
            let domains: Vec<DomainName> =
                self.eco.domains_at(date).map(|d| d.name.clone()).collect();
            out.push(scan_snapshot_with_threads(
                &world,
                &domains,
                date,
                None,
                &ScanConfig::default(),
                threads,
            ));
        }
        out
    }

    /// Runs the complete study.
    pub fn run(&self) -> LongitudinalRun {
        let (weekly, mx_history) = self.run_weekly();
        let full = self.run_full();
        LongitudinalRun {
            weekly,
            full,
            mx_history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosystem::EcosystemConfig;

    fn study() -> Study {
        Study::new(Ecosystem::generate(EcosystemConfig::paper(42, 0.01)))
    }

    #[test]
    fn weekly_series_grows_and_matches_curve() {
        let study = study();
        let (weekly, history) = study.run_weekly();
        assert_eq!(weekly.len(), 160);
        let first = weekly.first().unwrap().total();
        let last = weekly.last().unwrap().total();
        assert!(last > first * 3, "{first} -> {last}");
        // The measured totals equal the adopted-domain counts.
        let expected = study.eco.domains_at(weekly.last().unwrap().date).count() as u64;
        assert_eq!(last, expected);
        assert!(!history.is_empty());
    }

    #[test]
    fn org_spike_is_visible_in_weekly_series() {
        let study = study();
        let (weekly, _) = study.run_weekly();
        // Find the week straddling 2024-01-02.
        let spike_date = SimDate::ymd(2024, 1, 2);
        let before = weekly.iter().rfind(|w| w.date < spike_date).unwrap();
        let after = weekly.iter().find(|w| w.date >= spike_date).unwrap();
        let b = before.mtasts_per_tld.get(&TldId::Org).copied().unwrap_or(0);
        let a = after.mtasts_per_tld.get(&TldId::Org).copied().unwrap_or(0);
        // At scale 0.01 the spike is ~5 domains on a base of ~50.
        assert!(a > b, "org {b} -> {a}");
    }

    #[test]
    fn full_scans_cover_the_calendar() {
        let study = study();
        let full = study.run_full();
        assert_eq!(full.len(), 11);
        assert_eq!(full.last().unwrap().date, SimDate::ymd(2024, 9, 29));
        // Later scans see more domains.
        assert!(full.last().unwrap().len() > full.first().unwrap().len());
    }

    #[test]
    fn historical_mx_lookup() {
        let study = study();
        let run = study.run();
        // Find a stale-migration domain whose migration falls inside the
        // window; its legacy MX must appear in history before migration.
        let stale = study.eco.population.domains.iter().find_map(|d| {
            let inc = d.faults.inconsistency.as_ref()?;
            let migration = inc.stale_migration?;
            (migration > d.adopted.add_days(14) && migration < SimDate::ymd(2024, 8, 1))
                .then_some((d, migration))
        });
        let Some((spec, migration)) = stale else {
            return; // tiny scale may not include one; other tests cover it
        };
        let hist = run.historical_mx(&spec.name, migration);
        assert!(
            hist.iter().any(|h| h.to_string().contains("oldhost-")),
            "{}: {hist:?}",
            spec.name
        );
    }
}
