//! The change-driven rescan cache: full-study cost proportional to the
//! number of per-domain *changes*, not `dates × domains`.
//!
//! The ecosystem layer already certifies what changed between snapshot
//! dates: [`ecosystem::DomainFingerprint`] hashes every scan-visible
//! input per component (DNS record set, policy side, MX side), and
//! [`ecosystem::IncrementalWorld`] rebuilds only the dirty domains. This
//! module adds the scanner half — a content-addressed cache of prior
//! [`DomainScan`]s keyed on that fingerprint, so an unchanged domain's
//! scan is reused wholesale (its date re-stamped) and a partially
//! changed domain re-runs only its dirty stages.
//!
//! # Why reuse is byte-identical
//!
//! A scan is a pure function of `(world, domain, date, admitted
//! instant, config)` (the PR-3 determinism contract), and each stage
//! forks its own RNG scope, so stages are independently pure. The
//! fingerprint component covering a stage hashes every world input that
//! stage can observe — so "component unchanged" implies "stage output
//! unchanged", and replaying the cached output *is* re-running the
//! stage. Certificates do not break this: the incremental world
//! re-dates unchanged endpoints' leaf certificates each advance, and
//! scan outputs only carry cert *verdicts*, which agree.
//!
//! # The RFC 8461 short-circuit
//!
//! RFC 8461 §3.3 lets a sender keep applying its cached policy until
//! the record `id` changes. The scanner honours the same discipline:
//! when the record component is clean and only the MX side is dirty,
//! the HTTPS policy fetch is skipped and the cached policy reused; a
//! *changed* record id invalidates everything (the sender would
//! re-fetch, so the scanner does too).
//!
//! # When the cache must stand down
//!
//! - **Transient faults** ([`World::has_transient_faults`]): fault
//!   draws are keyed on the admitted instant, so an unchanged
//!   configuration does not imply an unchanged observation. Every scan
//!   is forced and nothing is cached.
//! - **Active attackers** ([`World::has_attacker`]): attack windows are
//!   likewise instant-keyed; a cache hit must never mask a domain
//!   inside an attack window, so the cache is bypassed entirely while
//!   an attack schedule is installed.
//! - **Throttled campaigns**: entries are keyed to the midnight
//!   admitted-instant class; the incremental drivers are unthrottled by
//!   construction, and the cache is not consulted for any other class.

use crate::longitudinal::Study;
use crate::scan::{
    consistency_mismatches, mx_stage, policy_stage, resolve_policy_ip, scan_domain, stage_rng,
    ScanConfig, Snapshot,
};
use crate::taxonomy::{DomainScan, ScanAttempts};
use ecosystem::{DomainFingerprint, Ecosystem, IncrementalWorld, SnapshotDetail};
use netbase::{map_sharded, DomainName, SimDate, SimInstant};
use serde::{Deserialize, Serialize};
use simnet::World;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Cache accounting for an incremental run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Scans reused wholesale (every fingerprint component unchanged).
    pub full_hits: u64,
    /// Scans that reused the clean stages and re-ran only dirty ones —
    /// including the RFC 8461 id short-circuit (record clean, HTTPS
    /// fetch skipped).
    pub partial_hits: u64,
    /// Full scans: first sight of a domain, or a dirty record id.
    pub misses: u64,
    /// Full scans forced past the cache (transient faults or an active
    /// attack schedule) — never inserted.
    pub forced: u64,
}

impl CacheStats {
    /// Total domains that went through the cache.
    pub fn total(&self) -> u64 {
        self.full_hits + self.partial_hits + self.misses + self.forced
    }

    /// Scans answered without a fresh HTTPS policy fetch.
    pub fn fetches_skipped(&self) -> u64 {
        self.full_hits + self.partial_hits
    }

    pub(crate) fn count(&mut self, kind: HitKind) {
        self.count_many(kind, 1);
    }

    /// Counts `n` occurrences of `kind` at once — the O(changes) weekly
    /// driver accounts for its untouched majority in bulk instead of
    /// looping a per-domain increment.
    pub(crate) fn count_many(&mut self, kind: HitKind, n: u64) {
        match kind {
            HitKind::Full => {
                self.full_hits += n;
                obsv::counter!("cache_full_hits_total", n);
            }
            HitKind::Partial => {
                self.partial_hits += n;
                obsv::counter!("cache_partial_hits_total", n);
            }
            HitKind::Miss => {
                self.misses += n;
                obsv::counter!("cache_misses_total", n);
            }
            HitKind::Forced => {
                self.forced += n;
                obsv::counter!("cache_stand_downs_total", n);
            }
        }
    }
}

/// How one domain's scan was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HitKind {
    Full,
    Partial,
    Miss,
    Forced,
}

/// What the fingerprint diff says must re-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScanPlan {
    /// Every component clean: re-stamp the cached scan.
    ReuseAll,
    /// Record clean; re-run exactly the dirty stages.
    Stages { policy: bool, mx: bool },
    /// No prior entry, or the record id changed (RFC 8461: a changed id
    /// invalidates the cached policy, so everything re-runs).
    FullScan,
}

/// Decides what to re-run for one domain. Pure — this is the property
/// the single-component-flip tests pin down.
pub(crate) fn plan_for(
    prior: Option<&DomainFingerprint>,
    current: &DomainFingerprint,
    forced: bool,
) -> ScanPlan {
    if forced {
        return ScanPlan::FullScan;
    }
    let Some(prior) = prior else {
        return ScanPlan::FullScan;
    };
    if prior.record != current.record {
        return ScanPlan::FullScan;
    }
    if prior.policy == current.policy && prior.mx == current.mx {
        return ScanPlan::ReuseAll;
    }
    ScanPlan::Stages {
        policy: prior.policy != current.policy,
        mx: prior.mx != current.mx,
    }
}

/// One cached domain observation.
#[derive(Debug, Clone)]
struct CacheEntry {
    fp: DomainFingerprint,
    scan: DomainScan,
    policy_ip: Option<Ipv4Addr>,
}

/// The content-addressed scan cache: one slot per population index, all
/// entries keyed to one `ScanConfig` and the midnight admitted-instant
/// class.
pub(crate) struct ScanCache {
    config: ScanConfig,
    entries: Vec<Option<CacheEntry>>,
    index_of: HashMap<DomainName, usize>,
}

impl ScanCache {
    pub(crate) fn new(eco: &Ecosystem, config: ScanConfig) -> ScanCache {
        ScanCache {
            config,
            entries: vec![None; eco.population.domains.len()],
            index_of: eco
                .population
                .domains
                .iter()
                .enumerate()
                .map(|(i, d)| (d.name.clone(), i))
                .collect(),
        }
    }

    /// Seeds entries from already-materialized scans (a supervisor
    /// checkpoint): each scan is exactly the entry a live incremental
    /// run would have cached at `date`, so resuming from a checkpoint
    /// reconstructs the same cache state.
    pub(crate) fn seed(
        &mut self,
        eco: &Ecosystem,
        date: SimDate,
        scans: &[DomainScan],
        policy_ips: &HashMap<DomainName, Ipv4Addr>,
    ) {
        let ctx = eco.fingerprint_context(date);
        for scan in scans {
            let Some(&i) = self.index_of.get(&scan.domain) else {
                continue;
            };
            let Some(fp) = eco.fingerprint_at(&eco.population.domains[i], &ctx) else {
                continue;
            };
            self.entries[i] = Some(CacheEntry {
                fp,
                scan: scan.clone(),
                policy_ip: policy_ips.get(&scan.domain).copied(),
            });
        }
    }

    /// Scans `domain` through the cache. `fp` is the domain's current
    /// fingerprint and `index` its population slot; `forced` bypasses
    /// the cache (see module docs). Returns the scan, the resolved
    /// policy IP, and how the result was satisfied.
    // Every argument is a distinct scan input the determinism contract
    // names; bundling them into a struct would just rename the problem.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn scan(
        &self,
        world: &World,
        index: usize,
        domain: &DomainName,
        date: SimDate,
        now: SimInstant,
        fp: &DomainFingerprint,
        forced: bool,
    ) -> (DomainScan, Option<Ipv4Addr>, HitKind) {
        let prior = self.entries[index].as_ref();
        match plan_for(prior.map(|e| &e.fp), fp, forced) {
            ScanPlan::ReuseAll => {
                let entry = prior.expect("ReuseAll implies a prior entry");
                let mut scan = entry.scan.clone();
                scan.date = date;
                (scan, entry.policy_ip, HitKind::Full)
            }
            ScanPlan::Stages { policy, mx } => {
                let entry = prior.expect("Stages implies a prior entry");
                let rng = stage_rng(&self.config, domain);
                let (policy_result, cname, policy_attempts, ip) = if policy {
                    let stage = policy_stage(world, domain, now, &self.config, &rng);
                    let ip = resolve_policy_ip(world, domain, now, &self.config);
                    (stage.policy, stage.cname, stage.attempts, ip)
                } else {
                    (
                        entry.scan.policy.clone(),
                        entry.scan.policy_cname.clone(),
                        entry.scan.attempts.policy,
                        entry.policy_ip,
                    )
                };
                let (mx_records, ns_records, mx_verdicts, mx_attempts) = if mx {
                    let stage = mx_stage(world, domain, now, &self.config, &rng);
                    (
                        stage.mx_records,
                        stage.ns_records,
                        stage.mx_verdicts,
                        stage.attempts,
                    )
                } else {
                    (
                        entry.scan.mx_records.clone(),
                        entry.scan.ns_records.clone(),
                        entry.scan.mx_verdicts.clone(),
                        entry.scan.attempts.mx,
                    )
                };
                let mismatches = consistency_mismatches(&policy_result, &mx_records);
                let scan = DomainScan {
                    domain: domain.clone(),
                    date,
                    record: entry.scan.record.clone(),
                    policy: policy_result,
                    policy_cname: cname,
                    mx_records,
                    ns_records,
                    mx_verdicts,
                    mismatches,
                    attempts: ScanAttempts {
                        record: entry.scan.attempts.record,
                        policy: policy_attempts,
                        mx: mx_attempts,
                    },
                };
                (scan, ip, HitKind::Partial)
            }
            ScanPlan::FullScan => {
                let scan = scan_domain(world, domain, date, now, &self.config);
                let ip = resolve_policy_ip(world, domain, now, &self.config);
                let kind = if forced {
                    HitKind::Forced
                } else {
                    HitKind::Miss
                };
                (scan, ip, kind)
            }
        }
    }

    /// Records a fresh result. Forced scans are never inserted: their
    /// observations are instant-keyed (faults, attacks) and must not
    /// outlive the instant that produced them.
    pub(crate) fn insert(
        &mut self,
        index: usize,
        fp: DomainFingerprint,
        scan: &DomainScan,
        policy_ip: Option<Ipv4Addr>,
        kind: HitKind,
    ) {
        if kind == HitKind::Forced {
            return;
        }
        self.entries[index] = Some(CacheEntry {
            fp,
            scan: scan.clone(),
            policy_ip,
        });
    }
}

/// Whether the cache must be bypassed for every domain in this world
/// (see module docs: instant-keyed faults and attack windows).
pub(crate) fn cache_forced(world: &World) -> bool {
    world.has_transient_faults() || world.has_attacker()
}

/// The incremental monthly-campaign engine: a persistent delta-built
/// world plus the scan cache, advanced snapshot by snapshot.
pub struct IncrementalScanner {
    world: IncrementalWorld,
    cache: ScanCache,
    stats: CacheStats,
}

impl IncrementalScanner {
    /// A fresh engine for full-component snapshots under `config`.
    pub fn new(eco: &Ecosystem, config: ScanConfig) -> IncrementalScanner {
        IncrementalScanner {
            world: IncrementalWorld::new(SnapshotDetail::Full),
            cache: ScanCache::new(eco, config),
            stats: CacheStats::default(),
        }
    }

    /// Cache accounting so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Advances the world to `date` and produces the snapshot,
    /// byte-identical to `scan_snapshot` against a from-scratch world.
    pub fn snapshot_at(&mut self, eco: &Ecosystem, date: SimDate, threads: usize) -> Snapshot {
        let _span = obsv::span!("snapshot.full");
        self.world.advance_to(eco, date);
        let world = self.world.world();
        let forced = cache_forced(world);
        // The engine already certifies what is deployed at `date`: walk
        // the adopter index (sorted back to population order) and reuse
        // the installed fingerprints instead of re-hashing everyone —
        // O(adopters), and no per-domain fingerprint computation.
        let mut adopters: Vec<u32> = eco.population.index.adopters_through(date).to_vec();
        adopters.sort_unstable();
        let jobs: Vec<(usize, &DomainName, DomainFingerprint)> = adopters
            .iter()
            .map(|&i| {
                let i = i as usize;
                let fp = self
                    .world
                    .installed_fingerprint(i)
                    .expect("adopted domains are installed");
                (i, &eco.population.domains[i].name, fp)
            })
            .collect();

        let now = date.at_midnight();
        let cache = &self.cache;
        let results = map_sharded(threads, &jobs, |_, (index, domain, fp)| {
            cache.scan(world, *index, domain, date, now, fp, forced)
        });

        let ids: Vec<u32> = jobs.iter().map(|&(i, _, _)| i as u32).collect();
        let mut scans = Vec::with_capacity(jobs.len());
        let mut policy_ips = HashMap::new();
        for ((index, _, fp), (scan, ip, kind)) in jobs.into_iter().zip(results) {
            self.stats.count(kind);
            self.cache.insert(index, fp, &scan, ip, kind);
            if let Some(ip) = ip {
                policy_ips.insert(scan.domain.clone(), ip);
            }
            scans.push(scan);
        }
        Snapshot::assemble_indexed(date, scans, policy_ips, ids)
    }
}

impl Study {
    /// [`Study::run_full`] through the incremental engine, returning the
    /// cache accounting alongside the snapshots. Byte-identical to
    /// [`Study::run_full_scratch_with_threads`] for every thread count.
    pub fn run_full_incremental_with_threads(&self, threads: usize) -> (Vec<Snapshot>, CacheStats) {
        let mut engine = IncrementalScanner::new(&self.eco, ScanConfig::default());
        let dates = self.eco.config.full_scan_dates();
        let date_count = dates.len() as u64;
        let out = dates
            .iter()
            .enumerate()
            .map(|(ord, &date)| {
                let snap = engine.snapshot_at(&self.eco, date, threads);
                // Close this date's flight-recorder window on the driver
                // thread; free when recording is off.
                obsv::timeseries::roll(date.at_midnight().unix_secs());
                obsv::health::progress("scan.full", ord as u64 + 1, date_count);
                snap
            })
            .collect();
        (out, engine.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosystem::EcosystemConfig;

    fn fp(record: u64, policy: u64, mx: u64) -> DomainFingerprint {
        DomainFingerprint { record, policy, mx }
    }

    #[test]
    fn plan_reruns_exactly_the_dirty_component() {
        let base = fp(1, 2, 3);
        // Clean: wholesale reuse.
        assert_eq!(plan_for(Some(&base), &base, false), ScanPlan::ReuseAll);
        // No prior entry: full scan.
        assert_eq!(plan_for(None, &base, false), ScanPlan::FullScan);
        // A record flip invalidates everything (RFC 8461: the sender
        // re-fetches on an id change, so the scanner must too).
        assert_eq!(
            plan_for(Some(&base), &fp(9, 2, 3), false),
            ScanPlan::FullScan
        );
        // A policy flip re-runs only the policy stage.
        assert_eq!(
            plan_for(Some(&base), &fp(1, 9, 3), false),
            ScanPlan::Stages {
                policy: true,
                mx: false
            }
        );
        // An MX flip skips the HTTPS fetch — the id short-circuit.
        assert_eq!(
            plan_for(Some(&base), &fp(1, 2, 9), false),
            ScanPlan::Stages {
                policy: false,
                mx: true
            }
        );
        // Both sides dirty, record clean: both stages, still no record
        // re-lookup.
        assert_eq!(
            plan_for(Some(&base), &fp(1, 9, 9), false),
            ScanPlan::Stages {
                policy: true,
                mx: true
            }
        );
        // Forced (transient faults / attacker): always a full scan, even
        // with a clean fingerprint.
        assert_eq!(plan_for(Some(&base), &base, true), ScanPlan::FullScan);
    }

    #[test]
    fn incremental_snapshots_carry_population_ids() {
        // The compact-id column: each incremental snapshot carries the
        // population index of every scan, ascending and aligned.
        let study = Study::new(Ecosystem::generate(EcosystemConfig::paper(42, 0.005)));
        let (snaps, _) = study.run_full_incremental_with_threads(2);
        for snap in &snaps {
            assert_eq!(snap.population_ids().len(), snap.scans.len());
            assert!(snap.population_ids().windows(2).all(|w| w[0] < w[1]));
            for (&id, scan) in snap.population_ids().iter().zip(&snap.scans) {
                assert_eq!(study.eco.population.domains[id as usize].name, scan.domain);
            }
        }
    }

    #[test]
    fn forced_results_never_enter_the_cache() {
        let eco = Ecosystem::generate(EcosystemConfig::paper(42, 0.01));
        let mut cache = ScanCache::new(&eco, ScanConfig::default());
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        let ctx = eco.fingerprint_context(date);
        let (index, spec) = eco
            .population
            .domains
            .iter()
            .enumerate()
            .find(|(_, d)| d.adopted_by(date))
            .unwrap();
        let fp = eco.fingerprint_at(spec, &ctx).unwrap();

        let (scan, ip, kind) = cache.scan(
            &world,
            index,
            &spec.name,
            date,
            date.at_midnight(),
            &fp,
            true,
        );
        assert_eq!(kind, HitKind::Forced);
        cache.insert(index, fp, &scan, ip, kind);
        assert!(
            cache.entries[index].is_none(),
            "a forced scan must not be cached"
        );

        // The same scan unforced is a miss, then a full hit.
        let (scan, ip, kind) = cache.scan(
            &world,
            index,
            &spec.name,
            date,
            date.at_midnight(),
            &fp,
            false,
        );
        assert_eq!(kind, HitKind::Miss);
        cache.insert(index, fp, &scan, ip, kind);
        let (_, _, kind) = cache.scan(
            &world,
            index,
            &spec.name,
            date,
            date.at_midnight(),
            &fp,
            false,
        );
        assert_eq!(kind, HitKind::Full);
    }

    #[test]
    fn attack_schedule_bypasses_the_cache() {
        // A cache hit must never mask a domain inside an attack window:
        // while any attack schedule is installed, every scan is forced.
        let eco = Ecosystem::generate(EcosystemConfig::paper(42, 0.01));
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        assert!(!cache_forced(&world));

        let victim = eco.domains_at(date).next().unwrap().name.clone();
        let t0 = date.at_midnight();
        world.set_attacker(simnet::AttackSchedule::new().with_window(
            simnet::AttackKind::DnsTxtStrip,
            Some(victim),
            t0,
            t0 + netbase::Duration::days(1),
        ));
        assert!(cache_forced(&world));
    }

    #[test]
    fn single_component_flips_rescan_exactly_the_flipped_domains() {
        // Cohort-level property check against the real population: step
        // the engine across the lucidgrow window boundary and verify the
        // cache re-scans exactly the domains whose fingerprint moved —
        // and that those domains' diffs are confined to the expected
        // component.
        let eco = Ecosystem::generate(EcosystemConfig::paper(42, 0.02));
        let d1 = SimDate::ymd(2024, 1, 15); // before the window
        let d2 = SimDate::ymd(2024, 1, 23); // inside the window
        let mut engine = IncrementalScanner::new(&eco, ScanConfig::default());
        engine.snapshot_at(&eco, d1, 2);
        let before = engine.stats();
        assert_eq!(before.full_hits, 0, "first snapshot cannot hit");

        let ctx1 = eco.fingerprint_context(d1);
        let ctx2 = eco.fingerprint_context(d2);
        let mut expected_rescans = 0u64;
        let mut expected_hits = 0u64;
        let mut lucid_seen = 0u64;
        for spec in &eco.population.domains {
            if !spec.adopted_by(d1) {
                continue; // newly adopted domains are misses, counted below
            }
            let f1 = eco.fingerprint_at(spec, &ctx1).unwrap();
            let f2 = eco.fingerprint_at(spec, &ctx2).unwrap();
            if f1 == f2 {
                expected_hits += 1;
            } else {
                expected_rescans += 1;
                if spec.lucidgrow {
                    // The incident rewrites the hosted policy: the policy
                    // component moves, record and MX stay clean.
                    assert_eq!(f1.record, f2.record, "{}", spec.name);
                    assert_ne!(f1.policy, f2.policy, "{}", spec.name);
                    assert_eq!(f1.mx, f2.mx, "{}", spec.name);
                    lucid_seen += 1;
                }
            }
        }
        assert!(lucid_seen > 0, "scale 0.02 must include lucidgrow victims");

        engine.snapshot_at(&eco, d2, 2);
        let after = engine.stats();
        assert_eq!(after.full_hits - before.full_hits, expected_hits);
        assert_eq!(
            (after.partial_hits + after.misses) - (before.partial_hits + before.misses),
            expected_rescans
                + eco
                    .population
                    .domains
                    .iter()
                    .filter(|d| d.adopted_by(d2) && !d.adopted_by(d1))
                    .count() as u64,
            "every fingerprint flip (and only those, plus new adopters) re-scans"
        );
        assert_eq!(after.forced, 0);
    }

    fn snapshots_digest(snaps: &[Snapshot]) -> String {
        snaps
            .iter()
            .map(|snap| {
                let mut ips: Vec<(String, Ipv4Addr)> = snap
                    .policy_ips
                    .iter()
                    .map(|(d, ip)| (d.to_string(), *ip))
                    .collect();
                ips.sort();
                serde_json::to_string(&(&snap.scans, ips)).expect("snapshots serialize")
            })
            .collect()
    }

    #[test]
    fn incremental_full_study_matches_scratch() {
        let study = Study::new(Ecosystem::generate(EcosystemConfig::paper(42, 0.01)));
        let scratch = study.run_full_scratch_with_threads(1);
        let (inc, stats) = study.run_full_incremental_with_threads(1);
        assert_eq!(snapshots_digest(&scratch), snapshots_digest(&inc));
        assert!(
            stats.full_hits > stats.misses,
            "most domains are unchanged month to month: {stats:?}"
        );
        assert_eq!(stats.forced, 0);
    }
}
