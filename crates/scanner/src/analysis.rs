//! Figure- and table-shaped aggregations over study outputs.
//!
//! Each function reproduces one of the paper's results; the `bench`
//! crate's experiment binaries print them and EXPERIMENTS.md records
//! paper-vs-measured.

use crate::classify::EntityClass;
use crate::longitudinal::LongitudinalRun;
use crate::scan::Snapshot;
use crate::taxonomy::{MisconfigCategory, PolicyLayer};
use ecosystem::{tld, Ecosystem, TldId};
use mtasts::delegation::{classify_split, ProviderSplit};
use mtasts::{MismatchKind, Mode, MxPattern};
use netbase::{DomainName, SimDate};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

/// Table 1: per-TLD MX-domain denominators and MTA-STS counts.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// The TLD.
    pub tld: TldId,
    /// Domains with MX records (analytic denominator).
    pub mx_domains: u64,
    /// Measured domains with an MTA-STS record.
    pub mtasts_domains: u64,
    /// The percentage.
    pub percent: f64,
}

/// Computes Table 1 from the latest weekly point.
pub fn table1(run: &LongitudinalRun, scale: f64) -> Vec<Table1Row> {
    let latest = run.weekly.last().expect("weekly series non-empty");
    tld::ALL_TLDS
        .iter()
        .map(|&t| {
            let mtasts = latest.mtasts_per_tld.get(&t).copied().unwrap_or(0);
            // The denominator scales with the population so percentages
            // stay comparable to the paper's.
            let mx_domains = (tld::mx_domain_count(t, latest.date) as f64 * scale) as u64;
            Table1Row {
                tld: t,
                mx_domains,
                mtasts_domains: mtasts,
                percent: 100.0 * mtasts as f64 / mx_domains.max(1) as f64,
            }
        })
        .collect()
}

/// Figure 2: % of MX domains with MTA-STS records over time, per TLD.
pub fn fig2_series(run: &LongitudinalRun, scale: f64) -> Vec<(SimDate, BTreeMap<TldId, f64>)> {
    run.weekly
        .iter()
        .map(|w| {
            let mut m = BTreeMap::new();
            for &t in &tld::ALL_TLDS {
                let num = w.mtasts_per_tld.get(&t).copied().unwrap_or(0) as f64;
                let den = tld::mx_domain_count(t, w.date) as f64 * scale;
                m.insert(t, 100.0 * num / den.max(1.0));
            }
            (w.date, m)
        })
        .collect()
}

/// Figure 3: adoption per Tranco-rank bin of 10,000.
pub fn fig3_bins(eco: &Ecosystem, date: SimDate) -> Vec<(u64, f64)> {
    let bin = ecosystem::calib::TRANCO_BIN;
    let bins = (ecosystem::calib::TRANCO_UNIVERSE / bin) as usize;
    let mut counts = vec![0u64; bins];
    for spec in eco.domains_at(date) {
        if let Some(rank) = spec.tranco_rank {
            let idx = ((u64::from(rank) - 1) / bin) as usize;
            if idx < bins {
                counts[idx] += 1;
            }
        }
    }
    // The per-bin denominator is the (scaled) bin population.
    let bin_den = bin as f64 * eco.config.scale;
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as u64 * bin, 100.0 * c as f64 / bin_den.max(1.0)))
        .collect()
}

/// One Figure 4 point: misconfiguration percentages by category.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Point {
    /// Scan date.
    pub date: SimDate,
    /// Domains scanned.
    pub total: u64,
    /// Misconfigured domains (any category).
    pub misconfigured: u64,
    /// % per category (non-exclusive).
    pub category_pct: BTreeMap<MisconfigCategory, f64>,
}

/// Figure 4's series over the full scans.
pub fn fig4_series(run: &LongitudinalRun) -> Vec<Fig4Point> {
    run.full
        .iter()
        .map(|snap| {
            let total = snap.len() as u64;
            let mut per_cat: BTreeMap<MisconfigCategory, u64> = BTreeMap::new();
            let mut mis = 0u64;
            for scan in &snap.scans {
                let cats = scan.categories();
                if !cats.is_empty() {
                    mis += 1;
                }
                for c in cats {
                    *per_cat.entry(c).or_default() += 1;
                }
            }
            Fig4Point {
                date: snap.date,
                total,
                misconfigured: mis,
                category_pct: MisconfigCategory::ALL
                    .iter()
                    .map(|c| {
                        (
                            *c,
                            100.0 * per_cat.get(c).copied().unwrap_or(0) as f64
                                / total.max(1) as f64,
                        )
                    })
                    .collect(),
            }
        })
        .collect()
}

/// One Figure 5 point: policy-server error layers within an entity class.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Point {
    /// Scan date.
    pub date: SimDate,
    /// Domains in this entity class.
    pub class_total: u64,
    /// Faulty domains in the class.
    pub faulty: u64,
    /// % of the class failing at each layer.
    pub layer_pct: BTreeMap<PolicyLayer, f64>,
}

/// Figure 5: policy-server errors by layer, for one entity class.
pub fn fig5_series(run: &LongitudinalRun, class: EntityClass) -> Vec<Fig5Point> {
    run.full
        .iter()
        .map(|snap| {
            let mut class_total = 0u64;
            let mut faulty = 0u64;
            let mut per_layer: BTreeMap<PolicyLayer, u64> = BTreeMap::new();
            for scan in &snap.scans {
                if snap
                    .classifier
                    .classify_policy(&scan.domain, &scan.policy_cname)
                    != class
                {
                    continue;
                }
                class_total += 1;
                if let Err(e) = &scan.policy {
                    faulty += 1;
                    *per_layer.entry(e.layer).or_default() += 1;
                }
            }
            Fig5Point {
                date: snap.date,
                class_total,
                faulty,
                layer_pct: [
                    PolicyLayer::Dns,
                    PolicyLayer::Tcp,
                    PolicyLayer::Tls,
                    PolicyLayer::Http,
                    PolicyLayer::Syntax,
                ]
                .iter()
                .map(|l| {
                    (
                        *l,
                        100.0 * per_layer.get(l).copied().unwrap_or(0) as f64
                            / class_total.max(1) as f64,
                    )
                })
                .collect(),
            }
        })
        .collect()
}

/// One Figure 6 point: PKIX-invalid MX certificates within an entity class.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Point {
    /// Scan date.
    pub date: SimDate,
    /// Domains in the class (by MX classification).
    pub class_total: u64,
    /// Domains with ≥1 invalid MX certificate.
    pub invalid: u64,
    /// % by certificate error kind: (cn-mismatch, self-signed, expired).
    pub kind_pct: BTreeMap<&'static str, f64>,
}

/// Figure 6: invalid MX certificates by kind, for one entity class.
pub fn fig6_series(run: &LongitudinalRun, class: EntityClass) -> Vec<Fig6Point> {
    run.full
        .iter()
        .map(|snap| {
            let mut class_total = 0u64;
            let mut invalid = 0u64;
            let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
            for scan in &snap.scans {
                if snap.classifier.classify_mx(&scan.domain, &scan.mx_records) != class {
                    continue;
                }
                class_total += 1;
                let mut domain_kinds: Vec<&'static str> = Vec::new();
                for v in &scan.mx_verdicts {
                    if let Some(Err(e)) = &v.cert {
                        domain_kinds.push(match e {
                            pkix::CertError::NameMismatch { .. } => "CN mismatch",
                            pkix::CertError::SelfSigned => "Self-signed",
                            pkix::CertError::Expired => "Expired",
                            _ => "Other",
                        });
                    }
                }
                if !domain_kinds.is_empty() {
                    invalid += 1;
                    domain_kinds.sort_unstable();
                    domain_kinds.dedup();
                    for k in domain_kinds {
                        *kinds.entry(k).or_default() += 1;
                    }
                }
            }
            Fig6Point {
                date: snap.date,
                class_total,
                invalid,
                kind_pct: ["CN mismatch", "Self-signed", "Expired", "Other"]
                    .iter()
                    .map(|k| {
                        (
                            *k,
                            100.0 * kinds.get(k).copied().unwrap_or(0) as f64
                                / class_total.max(1) as f64,
                        )
                    })
                    .collect(),
            }
        })
        .collect()
}

/// One Figure 7 point: all-invalid / partially-invalid MX sets.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Point {
    /// Scan date.
    pub date: SimDate,
    /// Domains scanned.
    pub total: u64,
    /// Domains whose TLS-capable MXes are all invalid.
    pub all_invalid: u64,
    /// Domains with some (not all) invalid.
    pub partially_invalid: u64,
    /// Enforce-mode domains with ≥1 invalid MX (delivery-failure risk).
    pub enforce_at_risk: u64,
}

/// Figure 7's series.
pub fn fig7_series(run: &LongitudinalRun) -> Vec<Fig7Point> {
    run.full
        .iter()
        .map(|snap| {
            let mut all_invalid = 0;
            let mut partial = 0;
            let mut enforce = 0;
            for scan in &snap.scans {
                if scan.all_mx_invalid() {
                    all_invalid += 1;
                } else if scan.partially_mx_invalid() {
                    partial += 1;
                }
                let (_, invalid) = scan.mx_tls_counts();
                if invalid > 0 && scan.mode() == Some(Mode::Enforce) && scan.all_mx_invalid() {
                    enforce += 1;
                }
            }
            Fig7Point {
                date: snap.date,
                total: snap.len() as u64,
                all_invalid,
                partially_invalid: partial,
                enforce_at_risk: enforce,
            }
        })
        .collect()
}

/// One Figure 8 point: mismatch classes.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Point {
    /// Scan date.
    pub date: SimDate,
    /// Domains scanned.
    pub total: u64,
    /// Domains per mismatch class (a domain counts once per class).
    pub kind_counts: BTreeMap<&'static str, u64>,
    /// Enforce-mode domains with no matching pattern (delivery failures).
    pub enforce_failures: u64,
    /// 3LD+ mismatched domains whose pattern embeds `mta-sts` (§4.4).
    pub stray_mta_sts_label: u64,
}

/// Figure 8's series.
pub fn fig8_series(run: &LongitudinalRun) -> Vec<Fig8Point> {
    run.full
        .iter()
        .map(|snap| {
            let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
            let mut enforce = 0u64;
            let mut stray = 0u64;
            for scan in &snap.scans {
                if scan.mismatches.is_empty() {
                    continue;
                }
                let mut domain_kinds: Vec<MismatchKind> =
                    scan.mismatches.iter().map(|(_, k)| *k).collect();
                domain_kinds.sort_unstable_by_key(|k| k.label());
                domain_kinds.dedup();
                for k in &domain_kinds {
                    *kinds.entry(kind_label(*k)).or_default() += 1;
                }
                if scan.any_mx_matches() == Some(false) && scan.mode() == Some(Mode::Enforce) {
                    enforce += 1;
                }
                if domain_kinds.contains(&MismatchKind::PartialThirdLabel)
                    && scan.mismatches.iter().any(|(p, _)| {
                        MxPattern::parse(p)
                            .map(|p| mtasts::matching::has_stray_mta_sts_label(&p))
                            .unwrap_or(false)
                    })
                {
                    stray += 1;
                }
            }
            Fig8Point {
                date: snap.date,
                total: snap.len() as u64,
                kind_counts: kinds,
                enforce_failures: enforce,
                stray_mta_sts_label: stray,
            }
        })
        .collect()
}

fn kind_label(kind: MismatchKind) -> &'static str {
    match kind {
        MismatchKind::Tld => "TLD",
        MismatchKind::CompleteDomain => "Domain",
        MismatchKind::PartialThirdLabel => "3LD+",
        MismatchKind::Typo => "Typos",
    }
}

/// Figure 9: share of complete-domain mismatches explained by historical
/// MX records, per full-scan date.
pub fn fig9_series(run: &LongitudinalRun) -> Vec<(SimDate, f64)> {
    run.full
        .iter()
        .map(|snap| {
            let mut mismatched = 0u64;
            let mut explained = 0u64;
            for scan in &snap.scans {
                let complete: Vec<&String> = scan
                    .mismatches
                    .iter()
                    .filter(|(_, k)| *k == MismatchKind::CompleteDomain)
                    .map(|(p, _)| p)
                    .collect();
                if complete.is_empty() {
                    continue;
                }
                mismatched += 1;
                let history = run.historical_mx(&scan.domain, snap.date);
                let matches_history = complete.iter().any(|p| {
                    MxPattern::parse(p)
                        .map(|pat| history.iter().any(|h| pat.matches(h)))
                        .unwrap_or(false)
                });
                if matches_history {
                    explained += 1;
                }
            }
            (
                snap.date,
                100.0 * explained as f64 / mismatched.max(1) as f64,
            )
        })
        .collect()
}

/// One Figure 10 point: inconsistency among domains outsourcing both
/// services, split by same vs different provider.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Point {
    /// Scan date.
    pub date: SimDate,
    /// Both-outsourced domains with the same provider.
    pub same_total: u64,
    /// ... of which inconsistent.
    pub same_inconsistent: u64,
    /// Both-outsourced domains with different providers.
    pub diff_total: u64,
    /// ... of which inconsistent.
    pub diff_inconsistent: u64,
}

/// Figure 10's series.
pub fn fig10_series(run: &LongitudinalRun) -> Vec<Fig10Point> {
    run.full
        .iter()
        .map(|snap| {
            let mut point = Fig10Point {
                date: snap.date,
                same_total: 0,
                same_inconsistent: 0,
                diff_total: 0,
                diff_inconsistent: 0,
            };
            for scan in &snap.scans {
                let policy_class = snap
                    .classifier
                    .classify_policy(&scan.domain, &scan.policy_cname);
                let mx_class = snap.classifier.classify_mx(&scan.domain, &scan.mx_records);
                if policy_class != EntityClass::ThirdParty || mx_class != EntityClass::ThirdParty {
                    continue;
                }
                let (Some(cname), Some(mx)) = (scan.policy_cname.first(), scan.mx_records.first())
                else {
                    continue;
                };
                let inconsistent = !scan.mismatches.is_empty();
                match classify_split(cname, mx) {
                    ProviderSplit::SameProvider => {
                        point.same_total += 1;
                        if inconsistent {
                            point.same_inconsistent += 1;
                        }
                    }
                    ProviderSplit::DifferentProviders => {
                        point.diff_total += 1;
                        if inconsistent {
                            point.diff_inconsistent += 1;
                        }
                    }
                }
            }
            point
        })
        .collect()
}

/// Table 2: policy-hosting providers ranked by delegated-domain count.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Provider identity (CNAME-target eSLD).
    pub provider: DomainName,
    /// Delegating domains in the snapshot.
    pub domains: u64,
    /// An example CNAME target (the pattern column).
    pub example_target: DomainName,
}

/// Computes Table 2's provider ranking from a snapshot.
pub fn table2_rows(snap: &Snapshot, top: usize) -> Vec<Table2Row> {
    let mut by_provider: HashMap<DomainName, (u64, DomainName)> = HashMap::new();
    for scan in &snap.scans {
        let Some(target) = scan.policy_cname.first() else {
            continue;
        };
        let Some(esld) = target.effective_sld() else {
            continue;
        };
        if esld == scan.domain.effective_sld().unwrap_or_else(|| esld.clone()) {
            continue; // internal alias
        }
        let entry = by_provider
            .entry(esld)
            .or_insert_with(|| (0, target.clone()));
        entry.0 += 1;
    }
    let mut rows: Vec<Table2Row> = by_provider
        .into_iter()
        .map(|(provider, (domains, example_target))| Table2Row {
            provider,
            domains,
            example_target,
        })
        .collect();
    rows.sort_by(|a, b| b.domains.cmp(&a.domains).then(a.provider.cmp(&b.provider)));
    rows.truncate(top);
    rows
}

/// Figure 12 (bottom): % of MTA-STS domains with TLSRPT, over time.
pub fn fig12_mtasts_series(run: &LongitudinalRun) -> Vec<(SimDate, f64)> {
    run.weekly
        .iter()
        .map(|w| {
            let mtasts: u64 = w.mtasts_per_tld.values().sum();
            let both: u64 = w.tlsrpt_among_mtasts_per_tld.values().sum();
            (w.date, 100.0 * both as f64 / mtasts.max(1) as f64)
        })
        .collect()
}

/// Figure 12 (top): % of MX domains with TLSRPT per TLD (analytic).
pub fn fig12_tld_series(run: &LongitudinalRun) -> Vec<(SimDate, BTreeMap<TldId, f64>)> {
    run.weekly
        .iter()
        .map(|w| {
            let mut m = BTreeMap::new();
            for &t in &tld::ALL_TLDS {
                let num = tld::tlsrpt_count(t, w.date) as f64;
                let den = tld::mx_domain_count(t, w.date) as f64;
                m.insert(t, 100.0 * num / den.max(1.0));
            }
            (w.date, m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::longitudinal::Study;
    use ecosystem::EcosystemConfig;

    use std::sync::OnceLock;

    /// The longitudinal run is expensive; tests in this module share one.
    fn run() -> &'static (Ecosystem, LongitudinalRun) {
        static SHARED: OnceLock<(Ecosystem, LongitudinalRun)> = OnceLock::new();
        SHARED.get_or_init(|| {
            let eco = Ecosystem::generate(EcosystemConfig::paper(42, 0.02));
            let study = Study::new(eco);
            let run = study.run();
            (study.eco, run)
        })
    }

    #[test]
    fn full_analysis_suite_produces_paper_shapes() {
        let (eco, run) = run();
        let scale = eco.config.scale;

        // Table 1: percentages land near the paper's (0.07-0.13%).
        let t1 = table1(run, scale);
        for row in &t1 {
            assert!(
                (0.03..0.30).contains(&row.percent),
                "{}: {}%",
                row.tld,
                row.percent
            );
        }

        // Figure 2: monotone growth per TLD.
        let f2 = fig2_series(run, scale);
        assert_eq!(f2.len(), 160);
        let first_com = f2.first().unwrap().1[&TldId::Com];
        let last_com = f2.last().unwrap().1[&TldId::Com];
        assert!(last_com > first_com * 2.5, "{first_com} -> {last_com}");

        // Figure 4: misconfiguration 22-38%, policy retrieval dominant.
        let f4 = fig4_series(run);
        let latest = f4.last().unwrap();
        let total_pct = 100.0 * latest.misconfigured as f64 / latest.total as f64;
        assert!((20.0..40.0).contains(&total_pct), "{total_pct}");
        let policy_pct = latest.category_pct[&MisconfigCategory::PolicyRetrieval];
        let record_pct = latest.category_pct[&MisconfigCategory::DnsRecord];
        assert!(
            policy_pct > record_pct * 5.0,
            "{policy_pct} vs {record_pct}"
        );

        // Figure 4's Porkbun effect: the last scans jump.
        let aug = f4
            .iter()
            .find(|p| p.date >= SimDate::ymd(2024, 8, 1))
            .unwrap();
        let spring = f4
            .iter()
            .find(|p| p.date >= SimDate::ymd(2024, 3, 1))
            .unwrap();
        let aug_pct = 100.0 * aug.misconfigured as f64 / aug.total as f64;
        let spring_pct = 100.0 * spring.misconfigured as f64 / spring.total as f64;
        assert!(aug_pct > spring_pct, "{spring_pct} -> {aug_pct}");

        // Figure 7: all-invalid ~1-3%.
        let f7 = fig7_series(run);
        let latest7 = f7.last().unwrap();
        let all_pct = 100.0 * latest7.all_invalid as f64 / latest7.total as f64;
        assert!((0.5..4.0).contains(&all_pct), "{all_pct}");
        assert!(latest7.all_invalid >= latest7.enforce_at_risk);

        // Figure 8: mismatch classes present; complete-domain largest.
        let f8 = fig8_series(run);
        let latest8 = f8.last().unwrap();
        let domain_count = latest8.kind_counts.get("Domain").copied().unwrap_or(0);
        assert!(domain_count > 0);

        // Figure 9: the stale share grows over the scan window.
        let f9 = fig9_series(run);
        let first9 = f9.first().unwrap().1;
        let last9 = f9.last().unwrap().1;
        assert!(
            last9 >= first9,
            "stale share should not shrink: {first9} -> {last9}"
        );

        // Figure 10: same-provider inconsistency rarer than different.
        let f10 = fig10_series(run);
        let latest10 = f10.last().unwrap();
        if latest10.same_total > 0 && latest10.diff_total > 0 {
            let same_rate = latest10.same_inconsistent as f64 / latest10.same_total as f64;
            let diff_rate = latest10.diff_inconsistent as f64 / latest10.diff_total as f64;
            assert!(
                diff_rate >= same_rate,
                "diff {diff_rate} should be >= same {same_rate}"
            );
        }

        // Table 2: dmarcinput and tutanota surface among top providers.
        let t2 = table2_rows(run.latest(), 8);
        assert!(!t2.is_empty());
        let names: Vec<String> = t2.iter().map(|r| r.provider.to_string()).collect();
        assert!(
            names
                .iter()
                .any(|n| n.contains("tutanota") || n.contains("dmarcinput")),
            "{names:?}"
        );

        // Figure 12: TLSRPT share among MTA-STS domains is substantial.
        let f12 = fig12_mtasts_series(run);
        let last12 = f12.last().unwrap().1;
        assert!((55.0..85.0).contains(&last12), "{last12}");
    }

    #[test]
    fn fig3_declines_with_rank() {
        let eco = Ecosystem::generate(EcosystemConfig::paper(42, 0.25));
        let bins = fig3_bins(&eco, SimDate::ymd(2024, 9, 29));
        assert_eq!(bins.len(), 100);
        let top10_avg: f64 = bins[..10].iter().map(|(_, p)| p).sum::<f64>() / 10.0;
        let bottom10_avg: f64 = bins[90..].iter().map(|(_, p)| p).sum::<f64>() / 10.0;
        // Paper: 1.2% vs 0.4%.
        assert!(
            top10_avg > bottom10_avg * 1.8,
            "{top10_avg} vs {bottom10_avg}"
        );
        assert!((0.5..2.5).contains(&top10_avg), "{top10_avg}");
    }

    #[test]
    fn fig5_self_managed_worse_than_third_party() {
        let (_, run) = &run();
        let self_series = fig5_series(run, EntityClass::SelfManaged);
        let third_series = fig5_series(run, EntityClass::ThirdParty);
        let s = self_series.last().unwrap();
        let t = third_series.last().unwrap();
        let self_rate = s.faulty as f64 / s.class_total.max(1) as f64;
        let third_rate = t.faulty as f64 / t.class_total.max(1) as f64;
        // Paper: 37.8% vs 4.9%. At small scale classification drifts, but
        // the ordering must hold decisively.
        assert!(
            self_rate > third_rate * 2.0,
            "self {self_rate} vs third {third_rate}"
        );
        // TLS dominates the self-managed failures.
        let tls = s.layer_pct[&PolicyLayer::Tls];
        let tcp = s.layer_pct[&PolicyLayer::Tcp];
        assert!(tls > tcp, "tls {tls} vs tcp {tcp}");
    }

    #[test]
    fn fig6_self_managed_mx_worse() {
        let (_, run) = &run();
        let s = fig6_series(run, EntityClass::SelfManaged);
        let t = fig6_series(run, EntityClass::ThirdParty);
        let s_last = s.last().unwrap();
        let t_last = t.last().unwrap();
        let s_rate = s_last.invalid as f64 / s_last.class_total.max(1) as f64;
        let t_rate = t_last.invalid as f64 / t_last.class_total.max(1) as f64;
        // Paper: 4.4% vs 1%.
        assert!(s_rate > t_rate, "self {s_rate} vs third {t_rate}");
    }

    #[test]
    fn lucidgrow_spike_in_fig8_and_fig10() {
        let (_, run) = &run();
        let f8 = fig8_series(run);
        // The 2024-01-23 scan has a 3LD+ spike relative to its neighbours.
        let jan = f8
            .iter()
            .find(|p| p.date == SimDate::ymd(2024, 1, 23))
            .expect("January 23 scan scheduled");
        let dec = f8
            .iter()
            .find(|p| p.date == SimDate::ymd(2023, 12, 7))
            .unwrap();
        let jan_3ld = jan.kind_counts.get("3LD+").copied().unwrap_or(0);
        let dec_3ld = dec.kind_counts.get("3LD+").copied().unwrap_or(0);
        assert!(jan_3ld > dec_3ld, "3LD+ {dec_3ld} -> {jan_3ld}");
        // And enforce-mode failures spike with it.
        let f8_mar = f8
            .iter()
            .find(|p| p.date == SimDate::ymd(2024, 3, 7))
            .unwrap();
        assert!(jan.enforce_failures > f8_mar.enforce_failures);
    }
}
