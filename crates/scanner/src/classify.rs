//! Managing-entity classification (§4.3.1).
//!
//! The paper infers, from public DNS alone, whether a domain's mail and
//! policy services are self-managed or third-party:
//!
//! - **Heuristic 1 (third-party)**: an entity operating infrastructure for
//!   ≥ 50 domains is a provider — counted over MX/CNAME-target effective
//!   SLDs, with A-record IPs also consulted for mail. The *single
//!   administrator* nuance: a popular-looking MX group whose domains also
//!   share policy-hosting IPs is one person's fleet (the mxascen case),
//!   classified self-managed.
//! - **Heuristic 2 (self-managed)**: an MX/NS under the domain's own eSLD
//!   is self-managed; a policy host serving ≤ 5 domains is self-managed.
//!
//! Classification is a two-pass process: [`EntityClassifier::observe`]
//! aggregates one snapshot's scans, then [`EntityClassifier::classify_mx`]
//! / [`EntityClassifier::classify_policy`] answer per domain.

use crate::taxonomy::DomainScan;
use netbase::DomainName;
use serde::Serialize;
use std::collections::{HashMap, HashSet};

/// Threshold for Heuristic 1: providers serve at least this many domains.
pub const THIRD_PARTY_MIN_DOMAINS: usize = 50;
/// Threshold for Heuristic 2 on policy hosts: at most this many domains.
pub const SELF_MANAGED_MAX_DOMAINS: usize = 5;
/// Single-administrator grouping: if at least this share of an MX group's
/// domains lands on the same policy IP set, the group is one operator.
pub const SINGLE_ADMIN_SHARE: f64 = 0.9;

/// The classification outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum EntityClass {
    /// Operated by the domain owner.
    SelfManaged,
    /// Operated by a provider (≥ 50 customers).
    ThirdParty,
    /// Neither heuristic fires (the paper's unclassified remainder).
    Unclassified,
}

impl EntityClass {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            EntityClass::SelfManaged => "self-managed",
            EntityClass::ThirdParty => "third-party",
            EntityClass::Unclassified => "unclassified",
        }
    }
}

/// Aggregated observations from one snapshot, then per-domain answers.
#[derive(Debug, Default)]
pub struct EntityClassifier {
    /// Domains per MX eSLD.
    mx_esld_domains: HashMap<DomainName, usize>,
    /// Domains per CNAME-target eSLD (policy delegation).
    cname_esld_domains: HashMap<DomainName, usize>,
    /// Policy-host IPs per MX eSLD group (single-admin detection): for
    /// each MX eSLD, how many of its domains share each policy IP.
    mx_group_policy_ips: HashMap<DomainName, HashMap<std::net::Ipv4Addr, usize>>,
    /// Policy IP observed per domain (from the scan's resolution).
    policy_ip_of: HashMap<DomainName, std::net::Ipv4Addr>,
    /// Domains per NS eSLD (DNS-hosting popularity).
    ns_esld_domains: HashMap<DomainName, usize>,
}

impl EntityClassifier {
    /// An empty classifier.
    pub fn new() -> EntityClassifier {
        EntityClassifier::default()
    }

    /// Builds the classifier from one snapshot's scans, with policy-host
    /// resolutions supplied by the scanner.
    pub fn from_scans<'a>(
        scans: impl IntoIterator<Item = &'a DomainScan>,
        policy_ips: &HashMap<DomainName, std::net::Ipv4Addr>,
    ) -> EntityClassifier {
        let mut c = EntityClassifier::new();
        for scan in scans {
            c.observe(scan, policy_ips.get(&scan.domain).copied());
        }
        c
    }

    /// Folds one domain's observations in.
    pub fn observe(&mut self, scan: &DomainScan, policy_ip: Option<std::net::Ipv4Addr>) {
        let mut seen_eslds: HashSet<DomainName> = HashSet::new();
        // Only *directly hosted* policy IPs (no CNAME delegation) count as
        // single-administrator evidence: a provider bundling policy hosting
        // (Tutanota) funnels every customer through one CNAME target, which
        // must not make it look like one person's fleet.
        let direct_policy_ip = scan.policy_cname.is_empty().then_some(policy_ip).flatten();
        for mx in &scan.mx_records {
            if let Some(esld) = mx.effective_sld() {
                if seen_eslds.insert(esld.clone()) {
                    *self.mx_esld_domains.entry(esld.clone()).or_default() += 1;
                    if let Some(ip) = direct_policy_ip {
                        *self
                            .mx_group_policy_ips
                            .entry(esld)
                            .or_default()
                            .entry(ip)
                            .or_default() += 1;
                    }
                }
            }
        }
        if let Some(target) = scan.policy_cname.first() {
            if let Some(esld) = target.effective_sld() {
                *self.cname_esld_domains.entry(esld).or_default() += 1;
            }
        }
        if let Some(ip) = policy_ip {
            self.policy_ip_of.insert(scan.domain.clone(), ip);
        }
        let mut seen_ns: HashSet<DomainName> = HashSet::new();
        for ns in &scan.ns_records {
            if let Some(esld) = ns.effective_sld() {
                if seen_ns.insert(esld.clone()) {
                    *self.ns_esld_domains.entry(esld).or_default() += 1;
                }
            }
        }
    }

    /// How many domains use MX hosts under `esld`.
    pub fn mx_group_size(&self, esld: &DomainName) -> usize {
        self.mx_esld_domains.get(esld).copied().unwrap_or(0)
    }

    /// Whether an apparently popular MX group is really one administrator:
    /// ≥ [`SINGLE_ADMIN_SHARE`] of its domains share a single policy IP.
    fn is_single_admin_group(&self, esld: &DomainName) -> bool {
        let Some(ips) = self.mx_group_policy_ips.get(esld) else {
            return false;
        };
        let total = self.mx_group_size(esld);
        if total < THIRD_PARTY_MIN_DOMAINS {
            return false;
        }
        // Two shared IPs (the mxascen case) still count: look at the top
        // two IPs' combined share.
        let mut counts: Vec<usize> = ips.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top2: usize = counts.iter().take(2).sum();
        top2 as f64 / total as f64 >= SINGLE_ADMIN_SHARE
    }

    /// Classifies a domain's mail hosting from its MX records.
    pub fn classify_mx(&self, domain: &DomainName, mx_records: &[DomainName]) -> EntityClass {
        let Some(first) = mx_records.first() else {
            return EntityClass::Unclassified;
        };
        // Heuristic 2: MX under the domain's own eSLD.
        if first.same_esld(domain) {
            return EntityClass::SelfManaged;
        }
        let Some(esld) = first.effective_sld() else {
            return EntityClass::Unclassified;
        };
        if self.mx_group_size(&esld) >= THIRD_PARTY_MIN_DOMAINS {
            // Heuristic 1, with the single-administrator exception.
            if self.is_single_admin_group(&esld) {
                return EntityClass::SelfManaged;
            }
            return EntityClass::ThirdParty;
        }
        EntityClass::Unclassified
    }

    /// Classifies a domain's policy hosting from the CNAME evidence.
    ///
    /// Direct A records (no CNAME) are self-managed per the paper's
    /// effective treatment (the Porkbun cohort lands in the self-managed
    /// series of Figure 5); CNAME targets are classified by their
    /// provider's customer count.
    pub fn classify_policy(&self, domain: &DomainName, policy_cname: &[DomainName]) -> EntityClass {
        let Some(target) = policy_cname.first() else {
            return EntityClass::SelfManaged;
        };
        // CNAME within the domain's own eSLD: an internal alias.
        if target.same_esld(domain) {
            return EntityClass::SelfManaged;
        }
        let Some(esld) = target.effective_sld() else {
            return EntityClass::Unclassified;
        };
        let size = self.cname_esld_domains.get(&esld).copied().unwrap_or(0);
        if size >= THIRD_PARTY_MIN_DOMAINS {
            EntityClass::ThirdParty
        } else if size <= SELF_MANAGED_MAX_DOMAINS {
            EntityClass::SelfManaged
        } else {
            EntityClass::Unclassified
        }
    }

    /// Classifies a domain's DNS hosting from its NS records (§4.3.1:
    /// an NS under the domain's own eSLD is self-managed; NS providers
    /// serving ≥ 50 domains are third parties).
    pub fn classify_dns(&self, domain: &DomainName, ns_records: &[DomainName]) -> EntityClass {
        let Some(first) = ns_records.first() else {
            return EntityClass::Unclassified;
        };
        if first.same_esld(domain) {
            return EntityClass::SelfManaged;
        }
        let Some(esld) = first.effective_sld() else {
            return EntityClass::Unclassified;
        };
        if self.ns_esld_domains.get(&esld).copied().unwrap_or(0) >= THIRD_PARTY_MIN_DOMAINS {
            EntityClass::ThirdParty
        } else {
            EntityClass::Unclassified
        }
    }

    /// The provider identity (CNAME-target eSLD) for delegated domains.
    pub fn policy_provider_of(&self, policy_cname: &[DomainName]) -> Option<DomainName> {
        policy_cname.first().and_then(|t| t.effective_sld())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::DomainScan;
    use netbase::SimDate;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn scan(domain: &str, mx: &[&str], cname: &[&str]) -> DomainScan {
        DomainScan {
            domain: n(domain),
            date: SimDate::ymd(2024, 9, 29),
            record: Ok("id".into()),
            policy: Err(crate::taxonomy::PolicyLayerError {
                layer: crate::taxonomy::PolicyLayer::Http,
                detail: "unused".into(),
                cert_error: None,
            }),
            policy_cname: cname.iter().map(|c| n(c)).collect(),
            mx_records: mx.iter().map(|m| n(m)).collect(),
            ns_records: vec![],
            mx_verdicts: vec![],
            mismatches: vec![],
            attempts: crate::taxonomy::ScanAttempts::clean(),
        }
    }

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    #[test]
    fn self_managed_mx_by_esld() {
        let c = EntityClassifier::new();
        assert_eq!(
            c.classify_mx(&n("example.com"), &[n("mx.example.com")]),
            EntityClass::SelfManaged
        );
    }

    #[test]
    fn third_party_mx_by_popularity() {
        let mut c = EntityClassifier::new();
        for i in 0..60 {
            let s = scan(&format!("d{i}.com"), &["aspmx.l.google.com"], &[]);
            c.observe(&s, Some(ip((i % 200) as u8)));
        }
        assert_eq!(
            c.classify_mx(&n("d0.com"), &[n("aspmx.l.google.com")]),
            EntityClass::ThirdParty
        );
    }

    #[test]
    fn unpopular_mx_is_unclassified() {
        let mut c = EntityClassifier::new();
        for i in 0..10 {
            let s = scan(&format!("d{i}.com"), &["in.smallmx1.net"], &[]);
            c.observe(&s, Some(ip(i)));
        }
        assert_eq!(
            c.classify_mx(&n("d0.com"), &[n("in.smallmx1.net")]),
            EntityClass::Unclassified
        );
    }

    #[test]
    fn single_admin_group_is_self_managed() {
        // The mxascen case: 60 domains share the MX *and* two policy IPs.
        let mut c = EntityClassifier::new();
        for i in 0..60u8 {
            let s = scan(&format!("m{i}.com"), &["mx.l.mxascen.com"], &[]);
            c.observe(&s, Some(ip(i % 2)));
        }
        assert_eq!(
            c.classify_mx(&n("m0.com"), &[n("mx.l.mxascen.com")]),
            EntityClass::SelfManaged
        );
    }

    #[test]
    fn popular_mx_with_diverse_policy_ips_stays_third_party() {
        let mut c = EntityClassifier::new();
        for i in 0..60u8 {
            let s = scan(&format!("g{i}.com"), &["aspmx.l.google.com"], &[]);
            c.observe(&s, Some(ip(i))); // 60 distinct policy IPs
        }
        assert_eq!(
            c.classify_mx(&n("g0.com"), &[n("aspmx.l.google.com")]),
            EntityClass::ThirdParty
        );
    }

    #[test]
    fn policy_classification_by_cname() {
        let mut c = EntityClassifier::new();
        // 60 domains delegate to dmarcinput.com.
        for i in 0..60 {
            let s = scan(
                &format!("d{i}.com"),
                &["aspmx.l.google.com"],
                &[&format!("d{i}-com.mta-sts.dmarcinput.com")],
            );
            c.observe(&s, None);
        }
        // 3 domains delegate to a tiny host.
        for i in 0..3 {
            let s = scan(
                &format!("t{i}.com"),
                &["aspmx.l.google.com"],
                &[&format!("t{i}.tinypol.net")],
            );
            c.observe(&s, None);
        }
        // 20 domains to a mid-size host.
        for i in 0..20 {
            let s = scan(
                &format!("u{i}.com"),
                &["aspmx.l.google.com"],
                &[&format!("u{i}.midpol.net")],
            );
            c.observe(&s, None);
        }
        assert_eq!(
            c.classify_policy(&n("d0.com"), &[n("d0-com.mta-sts.dmarcinput.com")]),
            EntityClass::ThirdParty
        );
        assert_eq!(
            c.classify_policy(&n("t0.com"), &[n("t0.tinypol.net")]),
            EntityClass::SelfManaged
        );
        assert_eq!(
            c.classify_policy(&n("u0.com"), &[n("u0.midpol.net")]),
            EntityClass::Unclassified
        );
        // No CNAME at all: self-managed.
        assert_eq!(
            c.classify_policy(&n("x.com"), &[]),
            EntityClass::SelfManaged
        );
        // Internal alias: self-managed.
        assert_eq!(
            c.classify_policy(&n("x.com"), &[n("web.x.com")]),
            EntityClass::SelfManaged
        );
    }

    #[test]
    fn provider_identity_extraction() {
        let c = EntityClassifier::new();
        assert_eq!(
            c.policy_provider_of(&[n("a-com._mta.mta-sts.tech")]),
            Some(n("mta-sts.tech"))
        );
        assert_eq!(c.policy_provider_of(&[]), None);
    }

    #[test]
    fn no_mx_records_is_unclassified() {
        let c = EntityClassifier::new();
        assert_eq!(c.classify_mx(&n("x.com"), &[]), EntityClass::Unclassified);
    }
}
