//! The responsible-disclosure campaign (§4.7).
//!
//! The paper notified 20,144 misconfigured domains by mail to
//! `postmaster@`; over 5,000 bounced, 497 gave feedback (341 found it
//! helpful, 45 thanked), and 2,064 (10%) had their issue resolved after
//! the campaign. This module simulates the campaign against a scanned
//! snapshot: delivery runs through the same SMTP machinery senders use,
//! with a calibrated share of dead postmaster addresses.

use crate::scan::Snapshot;
use netbase::{DetRng, DomainName};
use serde::Serialize;

/// Share of misconfigured domains whose postmaster address bounces
/// (paper: >5,000 of 20,144 ≈ 25-27%, "as expected in prior work").
pub const BOUNCE_RATE: f64 = 0.26;
/// Share of reachable notified domains that remediate within the
/// follow-up window (paper: 2,064 of 20,144 ≈ 10% of all notified).
pub const REMEDIATION_RATE: f64 = 0.137; // of delivered ⇒ ≈10% of notified
/// Share of delivered notifications that produce feedback (497/≈15,000).
pub const FEEDBACK_RATE: f64 = 0.033;
/// Share of feedback that is positive (341/497).
pub const FEEDBACK_HELPFUL_RATE: f64 = 0.686;
/// Share of delivered notifications that produce explicit thanks (45).
pub const ACK_RATE: f64 = 0.003;

/// The campaign's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignOutcome {
    /// Domains notified (all misconfigured domains in the snapshot).
    pub notified: u64,
    /// Bounced notifications.
    pub bounced: u64,
    /// Delivered notifications.
    pub delivered: u64,
    /// Feedback responses received.
    pub feedback: u64,
    /// ... of which judged the notification helpful.
    pub feedback_helpful: u64,
    /// Explicit acknowledgements.
    pub acks: u64,
    /// Domains observed remediated afterwards.
    pub remediated: u64,
    /// The remediated domains (for follow-up scans).
    pub remediated_domains: Vec<DomainName>,
}

impl CampaignOutcome {
    /// Remediation share of all notified domains (the paper's 10%).
    pub fn remediation_share(&self) -> f64 {
        self.remediated as f64 / self.notified.max(1) as f64
    }
}

/// Runs the campaign over a snapshot's misconfigured domains.
pub fn run_campaign(snapshot: &Snapshot, seed: u64) -> CampaignOutcome {
    let rng = DetRng::new(seed).fork("notify-campaign");
    let mut outcome = CampaignOutcome {
        notified: 0,
        bounced: 0,
        delivered: 0,
        feedback: 0,
        feedback_helpful: 0,
        acks: 0,
        remediated: 0,
        remediated_domains: Vec::new(),
    };
    for scan in &snapshot.scans {
        if !scan.is_misconfigured() {
            continue;
        }
        outcome.notified += 1;
        let scope = format!("domain/{}", scan.domain);
        // A domain with no reachable MX at all bounces deterministically;
        // otherwise the calibrated dead-postmaster rate applies.
        let unreachable = scan.mx_verdicts.iter().all(|v| !v.reachable);
        if unreachable || rng.chance(&format!("{scope}/bounce"), BOUNCE_RATE) {
            outcome.bounced += 1;
            continue;
        }
        outcome.delivered += 1;
        if rng.chance(&format!("{scope}/feedback"), FEEDBACK_RATE) {
            outcome.feedback += 1;
            if rng.chance(&format!("{scope}/helpful"), FEEDBACK_HELPFUL_RATE) {
                outcome.feedback_helpful += 1;
            }
        }
        if rng.chance(&format!("{scope}/ack"), ACK_RATE) {
            outcome.acks += 1;
        }
        if rng.chance(&format!("{scope}/fix"), REMEDIATION_RATE) {
            outcome.remediated += 1;
            outcome.remediated_domains.push(scan.domain.clone());
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{scan_snapshot, ScanConfig};
    use ecosystem::{Ecosystem, EcosystemConfig, SnapshotDetail};
    use netbase::SimDate;

    fn snapshot() -> Snapshot {
        let eco = Ecosystem::generate(EcosystemConfig::paper(42, 0.05));
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        let domains: Vec<DomainName> = eco.domains_at(date).map(|d| d.name.clone()).collect();
        scan_snapshot(&world, &domains, date, None, &ScanConfig::default())
    }

    #[test]
    fn campaign_shape_matches_paper() {
        let snap = snapshot();
        let outcome = run_campaign(&snap, 7);
        assert!(outcome.notified > 100, "{}", outcome.notified);
        // Bounce share ≈ 25% (paper: >5,000 / 20,144).
        let bounce_share = outcome.bounced as f64 / outcome.notified as f64;
        assert!((0.18..0.35).contains(&bounce_share), "{bounce_share}");
        // Remediation ≈ 10% of notified.
        let fix_share = outcome.remediation_share();
        assert!((0.05..0.16).contains(&fix_share), "{fix_share}");
        // Feedback is mostly positive.
        if outcome.feedback > 5 {
            assert!(outcome.feedback_helpful * 2 > outcome.feedback);
        }
        assert_eq!(outcome.remediated_domains.len() as u64, outcome.remediated);
        assert_eq!(outcome.delivered + outcome.bounced, outcome.notified);
    }

    #[test]
    fn campaign_is_deterministic() {
        let snap = snapshot();
        let a = run_campaign(&snap, 7);
        let b = run_campaign(&snap, 7);
        assert_eq!(a.remediated_domains, b.remediated_domains);
        let c = run_campaign(&snap, 8);
        assert_ne!(
            (a.bounced, a.remediated),
            (c.bounced, c.remediated),
            "different seeds should differ"
        );
    }
}
