//! The per-domain scan record and error taxonomy.

use mtasts::{MismatchKind, Mode, Policy, RecordError};
use netbase::{DomainName, SimDate};
use pkix::CertError;
use serde::{Deserialize, Serialize};
use simnet::PolicyFetchError;

/// The layer a policy-retrieval failure occurred at (Figure 5's series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PolicyLayer {
    /// Policy host unresolvable.
    Dns,
    /// TCP connect failed.
    Tcp,
    /// TLS handshake or certificate failed.
    Tls,
    /// Non-200 HTTP response.
    Http,
    /// Document retrieved but syntactically invalid.
    Syntax,
}

impl PolicyLayer {
    /// Classifies a fetch error into its layer.
    pub fn of(error: &PolicyFetchError) -> PolicyLayer {
        match error {
            PolicyFetchError::Dns(_) => PolicyLayer::Dns,
            PolicyFetchError::Tcp(_) => PolicyLayer::Tcp,
            PolicyFetchError::Tls(_) => PolicyLayer::Tls,
            PolicyFetchError::Http(_) => PolicyLayer::Http,
            PolicyFetchError::Syntax(_) => PolicyLayer::Syntax,
        }
    }

    /// Display label matching the figures.
    pub fn label(self) -> &'static str {
        match self {
            PolicyLayer::Dns => "DNS",
            PolicyLayer::Tcp => "TCP",
            PolicyLayer::Tls => "TLS",
            PolicyLayer::Http => "HTTP",
            PolicyLayer::Syntax => "Policy Syntax",
        }
    }
}

/// Per-MX probe verdict (§4.3.4, Figure 6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MxVerdict {
    /// The MX hostname.
    pub host: DomainName,
    /// Whether the host answered SMTP at all.
    pub reachable: bool,
    /// Whether STARTTLS was advertised.
    pub starttls: bool,
    /// The certificate verdict, when a chain was retrievable.
    pub cert: Option<Result<(), CertError>>,
}

impl MxVerdict {
    /// Whether this MX is PKIX-valid (reachable, TLS, valid chain).
    pub fn is_valid(&self) -> bool {
        matches!(self.cert, Some(Ok(())))
    }

    /// Whether this MX *supports TLS* but fails validation — the
    /// population Figure 6 draws from (the paper excludes MXes without
    /// any TLS from certificate analysis).
    pub fn is_invalid_tls(&self) -> bool {
        matches!(self.cert, Some(Err(_)))
    }
}

/// The aggregated misconfiguration categories of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MisconfigCategory {
    /// Invalid `_mta-sts` record.
    DnsRecord,
    /// Policy retrieval failed at any layer.
    PolicyRetrieval,
    /// At least one TLS-capable MX presented an invalid certificate.
    MxCertificate,
    /// Every component fine individually, but mx patterns don't cover the
    /// MX records.
    Inconsistency,
}

impl MisconfigCategory {
    /// All categories in Figure 4's order.
    pub const ALL: [MisconfigCategory; 4] = [
        MisconfigCategory::DnsRecord,
        MisconfigCategory::PolicyRetrieval,
        MisconfigCategory::MxCertificate,
        MisconfigCategory::Inconsistency,
    ];

    /// Display label matching Figure 4.
    pub fn label(self) -> &'static str {
        match self {
            MisconfigCategory::DnsRecord => "DNS Records",
            MisconfigCategory::PolicyRetrieval => "Policy Retrieval",
            MisconfigCategory::MxCertificate => "MX Hosts Cert.",
            MisconfigCategory::Inconsistency => "Inconsistency",
        }
    }
}

/// Attempt accounting for one scan stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageAttempts {
    /// Attempts made (≥ 1 once the stage ran; 0 = stage skipped).
    pub attempts: u32,
    /// Whether a transient failure was observed and retried away.
    pub recovered: bool,
}

impl StageAttempts {
    /// A stage that succeeded (or failed persistently) on its first try.
    pub fn clean() -> StageAttempts {
        StageAttempts {
            attempts: 1,
            recovered: false,
        }
    }
}

/// Per-stage attempt accounting for a whole domain scan — the evidence the
/// supervisor's degradation report aggregates, and the hook that keeps the
/// misconfiguration statistics honest: a failure that a retry recovered
/// never reaches the taxonomy, so only *persistent* errors are counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScanAttempts {
    /// The `_mta-sts` TXT lookup.
    pub record: StageAttempts,
    /// The HTTPS policy fetch.
    pub policy: StageAttempts,
    /// The SMTP MX probes (attempts summed over hosts; `recovered` if any
    /// host recovered).
    pub mx: StageAttempts,
}

impl ScanAttempts {
    /// A scan where every stage went through on the first try.
    pub fn clean() -> ScanAttempts {
        ScanAttempts {
            record: StageAttempts::clean(),
            policy: StageAttempts::clean(),
            mx: StageAttempts::clean(),
        }
    }

    /// Retries issued beyond each stage's first attempt.
    pub fn retries_issued(&self) -> u32 {
        [self.record, self.policy, self.mx]
            .iter()
            .map(|s| s.attempts.saturating_sub(1))
            .sum()
    }

    /// Stages that saw a transient failure and recovered.
    pub fn recovered_count(&self) -> u32 {
        [self.record, self.policy, self.mx]
            .iter()
            .filter(|s| s.recovered)
            .count() as u32
    }
}

/// One domain's full-component scan result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainScan {
    /// The scanned domain.
    pub domain: DomainName,
    /// Scan date.
    pub date: SimDate,
    /// The `_mta-sts` record evaluation.
    pub record: Result<String, RecordError>,
    /// The policy fetch: parsed policy or the layered error.
    pub policy: Result<Policy, PolicyLayerError>,
    /// CNAME chain observed at `mta-sts.<domain>` (delegation evidence).
    pub policy_cname: Vec<DomainName>,
    /// The domain's MX records in preference order.
    pub mx_records: Vec<DomainName>,
    /// The domain's NS records (DNS-hosting classification evidence).
    pub ns_records: Vec<DomainName>,
    /// Per-MX verdicts.
    pub mx_verdicts: Vec<MxVerdict>,
    /// Mismatch classes per non-matching pattern (empty when consistent
    /// or no policy).
    pub mismatches: Vec<(String, MismatchKind)>,
    /// Per-stage attempt accounting (all-1s under a single-shot config).
    pub attempts: ScanAttempts,
}

/// A layered policy error with its detail string.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyLayerError {
    /// The layer.
    pub layer: PolicyLayer,
    /// Human-readable detail.
    pub detail: String,
    /// For TLS-layer failures: the certificate error, when the handshake
    /// got that far.
    pub cert_error: Option<CertError>,
}

impl DomainScan {
    /// The policy's mode, when retrievable.
    pub fn mode(&self) -> Option<Mode> {
        self.policy.as_ref().ok().map(|p| p.mode)
    }

    /// Whether the record is syntactically valid.
    pub fn record_ok(&self) -> bool {
        self.record.is_ok()
    }

    /// TLS-capable MX count and invalid count (Figure 6/7 denominators).
    pub fn mx_tls_counts(&self) -> (usize, usize) {
        let capable = self.mx_verdicts.iter().filter(|v| v.cert.is_some()).count();
        let invalid = self
            .mx_verdicts
            .iter()
            .filter(|v| v.is_invalid_tls())
            .count();
        (capable, invalid)
    }

    /// Figure 7's classes: all TLS-capable MXes invalid / some invalid.
    pub fn all_mx_invalid(&self) -> bool {
        let (capable, invalid) = self.mx_tls_counts();
        capable > 0 && invalid == capable
    }

    /// At least one but not all invalid.
    pub fn partially_mx_invalid(&self) -> bool {
        let (capable, invalid) = self.mx_tls_counts();
        invalid > 0 && invalid < capable
    }

    /// Whether any MX matches the policy (sender-side test). `None` when
    /// there is no usable policy or no MX records.
    pub fn any_mx_matches(&self) -> Option<bool> {
        let policy = self.policy.as_ref().ok()?;
        if self.mx_records.is_empty() || policy.mx.is_empty() {
            return None;
        }
        Some(
            self.mx_records
                .iter()
                .any(|h| mtasts::mx_matches_policy(h, policy)),
        )
    }

    /// The misconfiguration categories this domain falls into (Figure 4;
    /// non-exclusive).
    pub fn categories(&self) -> Vec<MisconfigCategory> {
        let mut out = Vec::new();
        if self.record.is_err() {
            out.push(MisconfigCategory::DnsRecord);
        }
        if self.policy.is_err() {
            out.push(MisconfigCategory::PolicyRetrieval);
        }
        if self.mx_verdicts.iter().any(|v| v.is_invalid_tls()) {
            out.push(MisconfigCategory::MxCertificate);
        }
        if !self.mismatches.is_empty() {
            out.push(MisconfigCategory::Inconsistency);
        }
        out
    }

    /// Whether the domain counts as misconfigured (any category).
    pub fn is_misconfigured(&self) -> bool {
        !self.categories().is_empty()
    }

    /// Whether MTA-STS-validating senders would *fail to deliver* to this
    /// domain (§1: 640 domains; §4.4/Figure 7-8's enforce overlays):
    /// `enforce` mode and either no pattern matches any MX, or every
    /// TLS-capable MX presents an invalid certificate.
    pub fn delivery_failure_predicted(&self) -> bool {
        let Ok(policy) = &self.policy else {
            return false; // no usable policy ⇒ senders fall back
        };
        if policy.mode != Mode::Enforce {
            return false;
        }
        if self.any_mx_matches() == Some(false) {
            return true;
        }
        self.all_mx_invalid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtasts::MxPattern;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn base_scan() -> DomainScan {
        DomainScan {
            domain: n("example.com"),
            date: SimDate::ymd(2024, 9, 29),
            record: Ok("a123".to_string()),
            policy: Ok(Policy::new(
                Mode::Enforce,
                86_400,
                vec![MxPattern::parse("mx.example.com").unwrap()],
            )),
            policy_cname: vec![],
            mx_records: vec![n("mx.example.com")],
            ns_records: vec![n("ns1.example.com")],
            mx_verdicts: vec![MxVerdict {
                host: n("mx.example.com"),
                reachable: true,
                starttls: true,
                cert: Some(Ok(())),
            }],
            mismatches: vec![],
            attempts: ScanAttempts::clean(),
        }
    }

    #[test]
    fn clean_scan_has_no_categories() {
        let scan = base_scan();
        assert!(scan.categories().is_empty());
        assert!(!scan.is_misconfigured());
        assert!(!scan.delivery_failure_predicted());
        assert_eq!(scan.any_mx_matches(), Some(true));
    }

    #[test]
    fn categories_are_non_exclusive() {
        let mut scan = base_scan();
        scan.record = Err(RecordError::MissingId);
        scan.mx_verdicts[0].cert = Some(Err(CertError::Expired));
        scan.mismatches = vec![("x".into(), MismatchKind::Typo)];
        let cats = scan.categories();
        assert_eq!(cats.len(), 3);
        assert!(cats.contains(&MisconfigCategory::DnsRecord));
        assert!(cats.contains(&MisconfigCategory::MxCertificate));
        assert!(cats.contains(&MisconfigCategory::Inconsistency));
    }

    #[test]
    fn delivery_failure_on_enforce_mismatch() {
        let mut scan = base_scan();
        scan.policy = Ok(Policy::new(
            Mode::Enforce,
            86_400,
            vec![MxPattern::parse("mx.other.net").unwrap()],
        ));
        scan.mismatches = vec![("mx.other.net".into(), MismatchKind::CompleteDomain)];
        assert!(scan.delivery_failure_predicted());
        // Same mismatch under testing: no failure.
        scan.policy = Ok(Policy::new(
            Mode::Testing,
            86_400,
            vec![MxPattern::parse("mx.other.net").unwrap()],
        ));
        assert!(!scan.delivery_failure_predicted());
    }

    #[test]
    fn delivery_failure_on_all_invalid_mx() {
        let mut scan = base_scan();
        scan.mx_verdicts[0].cert = Some(Err(CertError::SelfSigned));
        assert!(scan.all_mx_invalid());
        assert!(scan.delivery_failure_predicted());
    }

    #[test]
    fn partial_invalid_does_not_fail_delivery() {
        let mut scan = base_scan();
        scan.mx_records.push(n("mx2.example.com"));
        scan.mx_verdicts.push(MxVerdict {
            host: n("mx2.example.com"),
            reachable: true,
            starttls: true,
            cert: Some(Err(CertError::Expired)),
        });
        // One of two invalid: partial, senders can still use the valid MX.
        assert!(scan.partially_mx_invalid());
        assert!(!scan.all_mx_invalid());
        assert!(!scan.delivery_failure_predicted());
    }

    #[test]
    fn policy_layer_of_errors() {
        use simnet::TlsFailure;
        assert_eq!(
            PolicyLayer::of(&PolicyFetchError::Dns("x".into())),
            PolicyLayer::Dns
        );
        assert_eq!(
            PolicyLayer::of(&PolicyFetchError::Tls(TlsFailure::Cert(CertError::Expired))),
            PolicyLayer::Tls
        );
        assert_eq!(
            PolicyLayer::of(&PolicyFetchError::Http(404)),
            PolicyLayer::Http
        );
    }

    #[test]
    fn tls_incapable_mx_excluded_from_cert_analysis() {
        let mut scan = base_scan();
        scan.mx_verdicts[0].starttls = false;
        scan.mx_verdicts[0].cert = None;
        assert_eq!(scan.mx_tls_counts(), (0, 0));
        assert!(!scan.all_mx_invalid());
        assert!(scan.categories().is_empty());
    }
}
