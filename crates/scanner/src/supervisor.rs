//! The resilient scan supervisor: checkpointing, resume, and per-domain
//! error isolation for the monthly full-component campaign.
//!
//! The paper's scans ran for 31–36 months; a crash 80% through a snapshot
//! must not discard the completed work, and one pathological domain must
//! not take the whole campaign down. The supervisor wraps
//! [`Study::run_full`] with:
//!
//! - **checkpointing**: completed snapshots and the in-progress snapshot's
//!   prefix are serialized to disk every [`SupervisorConfig::checkpoint_every`]
//!   domains, and a fresh run resumes from whatever the file holds;
//! - **determinism**: a scan is a pure function of
//!   `(world, domain, date, config)` and every world is rebuilt from the
//!   ecosystem seed, so a killed-and-resumed run is *byte-identical* (same
//!   serialized snapshots) to an uninterrupted one;
//! - **incrementality**: the campaign runs over one persistent
//!   delta-built world plus the [`crate::incremental`] rescan cache, so
//!   unchanged domains reuse their prior scans. Checkpointed scans seed
//!   the cache on resume — each is exactly the entry a live run would
//!   have cached at that date — so kill/resume stays byte-identical,
//!   degradation accounting included. With transient faults configured
//!   the cache stands down entirely (observations are instant-keyed)
//!   and every domain scans fresh, as before;
//! - **isolation**: each domain scan runs under `catch_unwind`; a panic
//!   abandons that domain (recorded in the [`DegradationReport`]) and the
//!   campaign continues;
//! - **accounting**: retries issued and transients recovered are summed
//!   into the degradation report so an operator can see how hard the
//!   retry layer worked.

use crate::incremental::{cache_forced, CacheStats, ScanCache};
use crate::longitudinal::Study;
use crate::parallel::default_scan_threads;
use crate::scan::{ScanConfig, Snapshot};
use crate::taxonomy::DomainScan;
use ecosystem::{DomainFingerprint, IncrementalWorld, SnapshotDetail};
use netbase::{map_sharded, shard_bounds, DomainName, SimDate};
use serde::{Deserialize, Serialize};
use simnet::TransientFaultConfig;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Supervisor knobs.
#[derive(Debug, Clone, Default)]
pub struct SupervisorConfig {
    /// The per-domain scan discipline.
    pub scan: ScanConfig,
    /// Where to persist checkpoints; `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Persist a partial checkpoint every this many domains (0 = only at
    /// snapshot boundaries).
    pub checkpoint_every: usize,
    /// Stop (with a checkpoint) after scanning this many domains in this
    /// invocation — the test hook that simulates a mid-snapshot kill.
    pub domain_budget: Option<usize>,
    /// Transient faults injected into every snapshot's world.
    pub transient: Option<TransientFaultConfig>,
    /// Domains whose scan is made to panic — the chaos hook exercising
    /// per-domain isolation.
    pub chaos_panic_domains: Vec<DomainName>,
    /// Worker threads for the parallel scan engine (0 = the default from
    /// [`default_scan_threads`]). The snapshots and the degradation
    /// report are byte-identical for every value.
    pub threads: usize,
}

impl SupervisorConfig {
    /// The effective worker-thread count.
    fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            default_scan_threads()
        } else {
            self.threads
        }
    }
}

/// How hard the supervision layer had to work.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Domain scans completed (across all snapshots).
    pub domains_scanned: u64,
    /// Retries issued beyond first attempts, summed over stages.
    pub retries_issued: u64,
    /// Stages that saw a transient failure and recovered.
    pub transients_recovered: u64,
    /// Domains abandoned after a panic.
    pub domains_abandoned: u64,
    /// The abandoned domains, in encounter order.
    pub abandoned_domains: Vec<String>,
    /// Checkpoint writes that failed (full disk, unwritable directory).
    /// After the first failure the supervisor keeps scanning without
    /// checkpoints rather than dying mid-campaign.
    pub checkpoint_failures: u64,
    /// The I/O errors behind those failures, in encounter order.
    pub checkpoint_errors: Vec<String>,
    /// Rescan-cache accounting (`default` keeps pre-cache checkpoints
    /// loadable). Deterministic across thread counts and kill/resume
    /// cycles, so it participates in the report-equality assertions.
    #[serde(default)]
    pub cache: CacheStats,
}

impl DegradationReport {
    fn absorb(&mut self, scan: &DomainScan) {
        self.domains_scanned += 1;
        self.retries_issued += u64::from(scan.attempts.retries_issued());
        self.transients_recovered += u64::from(scan.attempts.recovered_count());
    }

    /// The cache-accounting invariant a kill/resume cycle must preserve:
    /// every scanned domain was counted by the cache exactly once, so
    /// the totals agree. Checkpoint replay and partial-prefix resume
    /// seed cache *entries* via [`ScanCache::seed`], which never touches
    /// stats — the report loaded from the checkpoint is the single
    /// accumulator, already holding those domains' counts from the
    /// invocation that scanned them. Re-counting seeded entries (the
    /// blind-sum failure mode) would break this equality.
    pub fn cache_accounting_consistent(&self) -> bool {
        self.cache.total() == self.domains_scanned
    }
}

/// One finished snapshot in checkpoint form. The classifier is *not*
/// persisted — it is a pure function of the scans and is rebuilt on load.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CompletedSnapshot {
    date: SimDate,
    scans: Vec<DomainScan>,
    /// Sorted `(domain, ip)` pairs for deterministic serialization.
    policy_ips: Vec<(String, String)>,
}

/// The in-progress snapshot's scanned prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PartialSnapshot {
    date: SimDate,
    /// Index of the next unscanned domain in the snapshot's domain list.
    next_index: usize,
    scans: Vec<DomainScan>,
    policy_ips: Vec<(String, String)>,
    /// Per-shard progress: how many domains each worker slot has scanned
    /// in this snapshot so far (operator-facing shard-balance evidence;
    /// resume correctness rests on `next_index`, not on this).
    shard_scanned: Vec<u64>,
}

/// The on-disk checkpoint.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Checkpoint {
    completed: Vec<CompletedSnapshot>,
    partial: Option<PartialSnapshot>,
    report: DegradationReport,
}

fn freeze_ips(ips: &HashMap<DomainName, Ipv4Addr>) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = ips
        .iter()
        .map(|(d, ip)| (d.to_string(), ip.to_string()))
        .collect();
    out.sort();
    out
}

fn thaw_ips(frozen: &[(String, String)]) -> HashMap<DomainName, Ipv4Addr> {
    frozen
        .iter()
        .map(|(d, ip)| {
            (
                d.parse().expect("checkpoint holds valid domain names"),
                ip.parse().expect("checkpoint holds valid addresses"),
            )
        })
        .collect()
}

/// Magic tag of the checkpoint header line.
const CKPT_MAGIC: &str = "MTASTS-CKPT1";

/// FNV-1a 64-bit, the integrity hash of the checkpoint payload.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Checkpoint {
    /// Loads the checkpoint, verifying the `MTASTS-CKPT1 <len> <fnv64>`
    /// header. A missing file starts fresh; so does any corruption — a
    /// truncated or bit-rotted checkpoint (a crash mid-write, a full
    /// disk) must cost the saved progress, never the whole campaign.
    fn load(path: &PathBuf) -> Checkpoint {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Checkpoint::default();
        };
        Checkpoint::parse(&text).unwrap_or_default()
    }

    /// Parses and verifies the on-disk format; `None` means corrupt.
    fn parse(text: &str) -> Option<Checkpoint> {
        let (header, payload) = text.split_once('\n')?;
        let mut fields = header.split(' ');
        if fields.next() != Some(CKPT_MAGIC) {
            return None;
        }
        let len: usize = fields.next()?.parse().ok()?;
        let hash: u64 = u64::from_str_radix(fields.next()?, 16).ok()?;
        if fields.next().is_some() || payload.len() != len || fnv64(payload.as_bytes()) != hash {
            return None;
        }
        serde_json::from_str(payload).ok()
    }

    /// Atomically persists the checkpoint: write a temp sibling, then
    /// rename over `path`.
    ///
    /// The temp name is unique per writer (pid + a process-wide
    /// sequence), so two studies — or two shards — sharing a checkpoint
    /// directory never clobber each other's in-flight file; the rename
    /// step keeps the visible checkpoint always either the old or the
    /// new complete state.
    ///
    /// I/O failure (full disk, unwritable directory) is a recoverable
    /// error, not a panic: the supervisor records it and continues the
    /// campaign without checkpoints.
    fn store(&self, path: &PathBuf) -> std::io::Result<()> {
        static WRITER_SEQ: AtomicU64 = AtomicU64::new(0);
        let payload = serde_json::to_string(self).expect("checkpoint serializes");
        let text = format!(
            "{CKPT_MAGIC} {} {:016x}\n{payload}",
            payload.len(),
            fnv64(payload.as_bytes())
        );
        let seq = WRITER_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp-{}-{seq}", std::process::id()));
        std::fs::write(&tmp, &text)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(())
    }
}

/// Stores `ckpt` if checkpointing is still enabled; on I/O failure the
/// error lands in the degradation report and `path_slot` is cleared so
/// the campaign continues checkpoint-free (satisfying "resilient" even
/// when the disk is not).
fn store_or_degrade(ckpt: &mut Checkpoint, path_slot: &mut Option<PathBuf>) {
    let Some(path) = path_slot else { return };
    if let Err(e) = ckpt.store(path) {
        obsv::event!("supervisor.checkpoint_failure");
        ckpt.report.checkpoint_failures += 1;
        ckpt.report
            .checkpoint_errors
            .push(format!("{}: {e}", path.display()));
        *path_slot = None;
    } else {
        obsv::event!("supervisor.checkpoint_write");
    }
}

/// The result of one supervised invocation.
pub enum SupervisedOutcome {
    /// Every snapshot finished.
    Complete {
        /// The monthly snapshots, as [`Study::run_full`] would produce.
        snapshots: Vec<Snapshot>,
        /// Supervision accounting.
        report: DegradationReport,
    },
    /// The domain budget ran out; state is in the checkpoint file.
    Suspended {
        /// Accounting up to the suspension point.
        report: DegradationReport,
    },
}

impl SupervisedOutcome {
    /// The degradation report, whichever way the run ended.
    pub fn report(&self) -> &DegradationReport {
        match self {
            SupervisedOutcome::Complete { report, .. }
            | SupervisedOutcome::Suspended { report } => report,
        }
    }
}

impl Study {
    /// Runs the monthly full-component scans under supervision. Equivalent
    /// to [`Study::run_full`] when nothing faults, panics, or suspends —
    /// and byte-identical across kill/resume cycles otherwise.
    pub fn run_full_supervised(&self, cfg: &SupervisorConfig) -> SupervisedOutcome {
        let run_started = std::time::Instant::now();
        let mut checkpoint_path = cfg.checkpoint_path.clone();
        let mut ckpt = match &checkpoint_path {
            Some(path) => Checkpoint::load(path),
            None => Checkpoint::default(),
        };
        let mut budget = cfg.domain_budget;
        let mut snapshots = Vec::new();
        let threads = cfg.effective_threads();

        // The persistent incremental engine. With transient faults
        // configured the cache is forced off for every domain (and
        // checkpoint seeding skipped): fault draws are instant-keyed, so
        // reuse would be unsound — the campaign degrades to full scans
        // over the (still delta-built) world.
        let mut engine = IncrementalWorld::new(SnapshotDetail::Full);
        let mut cache = ScanCache::new(&self.eco, cfg.scan);
        let seeding = cfg.transient.is_none();

        let dates = self.eco.config.full_scan_dates();
        let date_count = dates.len() as u64;
        for (date_ord, date) in dates.into_iter().enumerate() {
            // Replay snapshots already completed in the checkpoint. The
            // world is *not* advanced through replayed dates —
            // `advance_to` jumps straight to the next live one — but the
            // cache is seeded from the checkpointed scans so the live
            // dates resume with exactly the state an uninterrupted run
            // would carry.
            if let Some(done) = ckpt.completed.iter().find(|c| c.date == date) {
                // Seeding restores cache *entries* only: the checkpointed
                // report already carries these domains' cache accounting
                // from the invocation that scanned them, so re-counting
                // here would double the stats (see
                // `DegradationReport::cache_accounting_consistent`).
                obsv::event!("supervisor.replay_completed_snapshot");
                let snap = rebuild_snapshot(done);
                if seeding {
                    cache.seed(&self.eco, date, &snap.scans, &snap.policy_ips);
                }
                snapshots.push(snap);
                // Replayed dates still close a flight-recorder window:
                // the window holds only the replay events, which is the
                // truthful record of what this execution did here.
                obsv::timeseries::roll(date.at_midnight().unix_secs());
                obsv::health::progress("supervisor.dates", date_ord as u64 + 1, date_count);
                continue;
            }

            engine.advance_to(&self.eco, date);
            let world = engine.world();
            if let Some(transient) = &cfg.transient {
                world.inject_transient_faults(transient);
            }
            let forced = cache_forced(world);
            // The engine certifies what is deployed at `date`: walk the
            // adopter index (sorted back to population order) and reuse
            // the installed fingerprints — O(adopters), no population
            // sweep and no fingerprint re-hashing.
            let mut adopters: Vec<u32> = self.eco.population.index.adopters_through(date).to_vec();
            adopters.sort_unstable();
            let mut domains: Vec<DomainName> = Vec::with_capacity(adopters.len());
            let mut meta: Vec<(usize, DomainFingerprint)> = Vec::with_capacity(adopters.len());
            for &i in &adopters {
                let i = i as usize;
                let fp = engine
                    .installed_fingerprint(i)
                    .expect("adopted domains are installed");
                domains.push(self.eco.population.domains[i].name.clone());
                meta.push((i, fp));
            }

            // Resume the scanned prefix when the checkpoint holds one.
            let (mut scans, mut policy_ips, start, mut shard_scanned) = match ckpt.partial.take() {
                Some(p) if p.date == date => {
                    // Same stat-free seeding discipline as completed-
                    // snapshot replay above.
                    obsv::event!("supervisor.resume_partial_snapshot");
                    let ips = thaw_ips(&p.policy_ips);
                    if seeding {
                        cache.seed(&self.eco, date, &p.scans, &ips);
                    }
                    (p.scans, ips, p.next_index, p.shard_scanned)
                }
                _ => (Vec::new(), HashMap::new(), 0, Vec::new()),
            };
            if shard_scanned.len() < threads {
                shard_scanned.resize(threads, 0);
            }

            // The campaign is unthrottled: every domain scans at the
            // snapshot's midnight, exactly as before parallelization.
            let now = date.at_midnight();
            let mut index = start;
            let mut scanned_here = 0usize;
            while index < domains.len() {
                if budget == Some(0) {
                    ckpt.partial = Some(PartialSnapshot {
                        date,
                        next_index: index,
                        scans,
                        policy_ips: freeze_ips(&policy_ips),
                        shard_scanned,
                    });
                    store_or_degrade(&mut ckpt, &mut checkpoint_path);
                    obsv::event!("supervisor.suspend");
                    return SupervisedOutcome::Suspended {
                        report: ckpt.report,
                    };
                }

                // One round: up to the next checkpoint boundary (and the
                // budget), scanned in parallel. Rounds depend only on
                // `(checkpoint_every, budget)`, never on the thread
                // count, so the absorb order below — and with it the
                // whole degradation report — is deterministic.
                let mut round_end = domains.len();
                if let Some(b) = budget {
                    round_end = round_end.min(index + b);
                }
                if cfg.checkpoint_every > 0 {
                    let to_boundary = cfg.checkpoint_every - (scanned_here % cfg.checkpoint_every);
                    round_end = round_end.min(index + to_boundary);
                }
                let round = &domains[index..round_end];
                // Per-domain panic isolation inside each shard worker: a
                // panicking domain yields `None` and the round survives.
                // The chaos assert stays ahead of the cache so an
                // injected panic can never be papered over by a hit.
                let cache_ref = &cache;
                let results = map_sharded(threads, round, |i, domain| {
                    catch_unwind(AssertUnwindSafe(|| {
                        assert!(
                            !cfg.chaos_panic_domains.contains(domain),
                            "chaos: injected panic for {domain}"
                        );
                        let (pop_index, fp) = &meta[index + i];
                        cache_ref.scan(world, *pop_index, domain, date, now, fp, forced)
                    }))
                    .ok()
                });
                for (slot, (lo, hi)) in shard_bounds(round.len(), threads).iter().enumerate() {
                    shard_scanned[slot] += (hi - lo) as u64;
                }
                // Absorb in input order — identical for every thread
                // count, and identical to the sequential engine.
                for (offset, outcome) in results.into_iter().enumerate() {
                    match outcome {
                        Some((scan, ip, kind)) => {
                            ckpt.report.absorb(&scan);
                            ckpt.report.cache.count(kind);
                            let (pop_index, fp) = meta[index + offset];
                            cache.insert(pop_index, fp, &scan, ip, kind);
                            if let Some(ip) = ip {
                                policy_ips.insert(scan.domain.clone(), ip);
                            }
                            scans.push(scan);
                        }
                        None => {
                            obsv::event!("supervisor.panic_isolated");
                            ckpt.report.domains_abandoned += 1;
                            ckpt.report
                                .abandoned_domains
                                .push(round[offset].to_string());
                        }
                    }
                }
                if let Some(b) = budget.as_mut() {
                    *b -= round.len();
                }
                scanned_here += round.len();
                index = round_end;
                // Per-round domains/sec + stall heartbeat (total unknown
                // upfront, so the ETA lives on the per-date label).
                obsv::health::progress("supervisor.domains", ckpt.report.domains_scanned, 0);

                if cfg.checkpoint_every > 0
                    && scanned_here.is_multiple_of(cfg.checkpoint_every)
                    && index < domains.len()
                {
                    ckpt.partial = Some(PartialSnapshot {
                        date,
                        next_index: index,
                        scans: scans.clone(),
                        policy_ips: freeze_ips(&policy_ips),
                        shard_scanned: shard_scanned.clone(),
                    });
                    store_or_degrade(&mut ckpt, &mut checkpoint_path);
                    ckpt.partial = None;
                }
            }

            let completed = CompletedSnapshot {
                date,
                scans,
                policy_ips: freeze_ips(&policy_ips),
            };
            snapshots.push(rebuild_snapshot(&completed));
            ckpt.completed.push(completed);
            store_or_degrade(&mut ckpt, &mut checkpoint_path);
            // Close this date's flight-recorder window. Runs on the
            // driver thread after the workers were absorbed, reads only
            // the thread-local collector, and draws from no RNG — the
            // identity suites pin that it cannot perturb outputs.
            obsv::timeseries::roll(date.at_midnight().unix_secs());
            obsv::health::progress("supervisor.dates", date_ord as u64 + 1, date_count);
        }

        debug_assert!(
            ckpt.report.cache_accounting_consistent(),
            "cache stats drifted from domains_scanned: {:?}",
            ckpt.report
        );
        // Write the run manifest next to the checkpoint. Its identity
        // section (seed, config digest, output digest, report totals) is
        // a pure function of the work — byte-equal between a resumed and
        // an uninterrupted run — while the execution section (wall time,
        // RSS, windows) describes this particular execution.
        if let Some(ckpt_path) = &cfg.checkpoint_path {
            let mut manifest = obsv::health::RunManifest {
                experiment: "scan.full_supervised".to_string(),
                seed: self.eco.config.seed,
                threads: threads as u64,
                wall_ms: u64::try_from(run_started.elapsed().as_millis()).unwrap_or(u64::MAX),
                ..Default::default()
            };
            // Checkpoint path, thread count and domain budget are
            // execution details, not identity: two runs of the same
            // campaign must digest identically however they were driven.
            manifest.config_digest = fnv64(
                format!(
                    "{:?}|{:?}|{:?}|{}|{:?}",
                    cfg.scan,
                    cfg.transient,
                    cfg.chaos_panic_domains,
                    cfg.checkpoint_every,
                    self.eco.config
                )
                .as_bytes(),
            );
            let output = serde_json::to_string(&ckpt.completed).expect("snapshots serialize");
            manifest.output_digest = fnv64(output.as_bytes());
            flatten_totals("report", &ckpt.report.to_value(), &mut manifest.totals);
            manifest.capture_execution();
            let manifest_path = obsv::health::RunManifest::path_for_checkpoint(ckpt_path);
            if manifest.write(&manifest_path).is_ok() {
                obsv::event!("supervisor.manifest_write");
            } else {
                obsv::event!("supervisor.manifest_failure");
            }
        }
        SupervisedOutcome::Complete {
            snapshots,
            report: ckpt.report,
        }
    }
}

/// Flattens a serialized report into named numeric totals for the run
/// manifest: numeric leaves keep their dotted path, sequences record
/// their length (their contents live in the checkpoint, not the
/// manifest). Every total is deterministic because the report is.
fn flatten_totals(
    prefix: &str,
    v: &serde::Value,
    out: &mut std::collections::BTreeMap<String, u64>,
) {
    match v {
        serde::Value::Bool(b) => {
            out.insert(prefix.to_string(), u64::from(*b));
        }
        serde::Value::I64(n) => {
            out.insert(prefix.to_string(), u64::try_from(*n).unwrap_or(0));
        }
        serde::Value::U64(n) => {
            out.insert(prefix.to_string(), *n);
        }
        serde::Value::Seq(items) => {
            out.insert(format!("{prefix}.len"), items.len() as u64);
        }
        serde::Value::Map(entries) => {
            for (k, val) in entries {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_totals(&key, val, out);
            }
        }
        serde::Value::Null | serde::Value::F64(_) | serde::Value::Str(_) => {}
    }
}

/// Rebuilds a live [`Snapshot`] (classifier included) from checkpoint form.
fn rebuild_snapshot(done: &CompletedSnapshot) -> Snapshot {
    let policy_ips = thaw_ips(&done.policy_ips);
    Snapshot::assemble(done.date, done.scans.clone(), policy_ips)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosystem::{Ecosystem, EcosystemConfig};

    fn study() -> Study {
        Study::new(Ecosystem::generate(EcosystemConfig::paper(42, 0.01)))
    }

    fn snapshot_fingerprint(snapshots: &[Snapshot]) -> String {
        // Scans + sorted IPs are the full snapshot state (the classifier
        // is derived), so this is the byte-identity witness.
        let digest: Vec<_> = snapshots
            .iter()
            .map(|s| (s.date, s.scans.clone(), freeze_ips(&s.policy_ips)))
            .collect();
        serde_json::to_string(&digest).unwrap()
    }

    #[test]
    fn unsupervised_and_supervised_runs_agree() {
        let study = study();
        let plain = study.run_full();
        let outcome = study.run_full_supervised(&SupervisorConfig::default());
        let SupervisedOutcome::Complete { snapshots, report } = outcome else {
            panic!("no budget set: must complete")
        };
        assert_eq!(
            snapshot_fingerprint(&plain),
            snapshot_fingerprint(&snapshots)
        );
        assert_eq!(report.domains_abandoned, 0);
        assert!(report.domains_scanned > 0);
    }

    #[test]
    fn killed_run_resumes_byte_identically() {
        let study = study();
        let dir =
            std::env::temp_dir().join(format!("mtasts-supervisor-{}-resume", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let _ = std::fs::remove_file(&path);

        let faults = TransientFaultConfig::uniform(7, 0.05);
        let base = SupervisorConfig {
            scan: ScanConfig::resilient(1, 5),
            checkpoint_path: Some(path.clone()),
            checkpoint_every: 16,
            domain_budget: None,
            transient: Some(faults),
            chaos_panic_domains: Vec::new(),
            threads: 0,
        };

        // Reference: one uninterrupted faulted run (no checkpoint file).
        let reference = study.run_full_supervised(&SupervisorConfig {
            checkpoint_path: None,
            ..base.clone()
        });
        let SupervisedOutcome::Complete {
            snapshots: want,
            report: want_report,
        } = reference
        else {
            panic!("reference run must complete")
        };

        // Interrupted: kill mid-flight (budget lands inside a snapshot),
        // then resume to completion from the checkpoint.
        let killed = study.run_full_supervised(&SupervisorConfig {
            domain_budget: Some(want.iter().map(Snapshot::len).sum::<usize>() / 3),
            ..base.clone()
        });
        assert!(matches!(killed, SupervisedOutcome::Suspended { .. }));
        let resumed = study.run_full_supervised(&base);
        let SupervisedOutcome::Complete {
            snapshots: got,
            report: got_report,
        } = resumed
        else {
            panic!("resumed run must complete")
        };

        assert_eq!(
            snapshot_fingerprint(&want),
            snapshot_fingerprint(&got),
            "kill/resume must be byte-identical to an uninterrupted run"
        );
        // The accounting survives the kill/resume cycle too, and the retry
        // layer actually worked during the faulted runs.
        assert_eq!(want_report, got_report);
        assert!(want_report.retries_issued > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_manifest_identity_matches_uninterrupted() {
        // The RunManifest identity section (experiment, seed, config
        // digest, output digest, report totals) is a pure function of
        // the work: a killed-and-resumed campaign must write a manifest
        // whose identity digest is bit-identical to an uninterrupted
        // run's, even though the execution sections (wall clock, window
        // deltas) legitimately differ.
        let study = study();
        let dir =
            std::env::temp_dir().join(format!("mtasts-supervisor-{}-manifest", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ref_path = dir.join("ckpt_ref.json");
        let path = dir.join("ckpt.json");
        let _ = std::fs::remove_file(&ref_path);
        let _ = std::fs::remove_file(&path);

        let base = SupervisorConfig {
            checkpoint_path: Some(path.clone()),
            checkpoint_every: 16,
            ..SupervisorConfig::default()
        };

        // Reference: uninterrupted, but checkpointed so it writes a
        // manifest too (the config digest excludes the checkpoint path).
        let reference = study.run_full_supervised(&SupervisorConfig {
            checkpoint_path: Some(ref_path.clone()),
            ..base.clone()
        });
        let SupervisedOutcome::Complete {
            snapshots: want, ..
        } = reference
        else {
            panic!("reference run must complete")
        };
        let ref_manifest_path = obsv::health::RunManifest::path_for_checkpoint(&ref_path);
        let ref_manifest = std::fs::read_to_string(&ref_manifest_path)
            .expect("uninterrupted run writes a manifest");

        // Kill mid-snapshot (no manifest: the run suspended), resume.
        let killed = study.run_full_supervised(&SupervisorConfig {
            domain_budget: Some(want.iter().map(Snapshot::len).sum::<usize>() / 3),
            ..base.clone()
        });
        assert!(matches!(killed, SupervisedOutcome::Suspended { .. }));
        let manifest_path = obsv::health::RunManifest::path_for_checkpoint(&path);
        assert!(
            !manifest_path.exists(),
            "a suspended run must not write a manifest"
        );
        let resumed = study.run_full_supervised(&base);
        assert!(matches!(resumed, SupervisedOutcome::Complete { .. }));
        let resumed_manifest =
            std::fs::read_to_string(&manifest_path).expect("resumed run writes a manifest");

        let want_digest = obsv::health::identity_digest_of_json(&ref_manifest)
            .expect("reference manifest carries an identity digest");
        let got_digest = obsv::health::identity_digest_of_json(&resumed_manifest)
            .expect("resumed manifest carries an identity digest");
        assert_eq!(
            got_digest, want_digest,
            "kill/resume must reproduce the manifest identity\n\
             reference: {ref_manifest}\nresumed: {resumed_manifest}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_resume_does_not_double_count_cache_stats() {
        // Regression guard for the cache-stat merge semantics: with the
        // rescan cache ENGAGED (no transient faults, so nothing forces
        // it off), a killed-and-resumed campaign must report exactly the
        // cache totals of an uninterrupted one. Checkpoint replay and
        // partial-prefix resume seed cache entries; if either path ever
        // re-counted the seeded entries into the live stats, the resumed
        // report's hits would exceed the reference and the per-report
        // total/domains_scanned invariant would break.
        let study = study();
        let dir = std::env::temp_dir().join(format!(
            "mtasts-supervisor-{}-cache-resume",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let _ = std::fs::remove_file(&path);

        let base = SupervisorConfig {
            checkpoint_path: Some(path.clone()),
            checkpoint_every: 16,
            ..SupervisorConfig::default()
        };

        let reference = study.run_full_supervised(&SupervisorConfig {
            checkpoint_path: None,
            ..base.clone()
        });
        let SupervisedOutcome::Complete {
            report: want_report,
            snapshots: want,
        } = reference
        else {
            panic!("reference run must complete")
        };
        // The cache must actually be doing work for this test to bite.
        assert!(want_report.cache.full_hits > 0, "{:?}", want_report.cache);
        assert_eq!(want_report.cache.forced, 0);
        assert!(want_report.cache_accounting_consistent());

        // Kill mid-snapshot, then resume to completion.
        let killed = study.run_full_supervised(&SupervisorConfig {
            domain_budget: Some(want.iter().map(Snapshot::len).sum::<usize>() / 3),
            ..base.clone()
        });
        let SupervisedOutcome::Suspended {
            report: killed_report,
        } = killed
        else {
            panic!("budgeted run must suspend")
        };
        assert!(killed_report.cache_accounting_consistent());

        let resumed = study.run_full_supervised(&base);
        let SupervisedOutcome::Complete { report, .. } = resumed else {
            panic!("resumed run must complete")
        };
        assert_eq!(
            report, want_report,
            "kill/resume must not inflate (or lose) cache accounting"
        );
        assert!(report.cache_accounting_consistent());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoints_restart_cleanly() {
        let dir =
            std::env::temp_dir().join(format!("mtasts-supervisor-{}-corrupt", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");

        let mut ckpt = Checkpoint::default();
        ckpt.report.domains_scanned = 123;
        ckpt.store(&path).unwrap();

        // Intact: round-trips.
        assert_eq!(Checkpoint::load(&path).report.domains_scanned, 123);

        let stored = std::fs::read_to_string(&path).unwrap();

        // Truncated at every prefix (a crash mid-write): clean restart,
        // never a panic.
        for cut in 0..stored.len() {
            std::fs::write(&path, &stored[..cut]).unwrap();
            assert_eq!(
                Checkpoint::load(&path).report.domains_scanned,
                0,
                "truncation at {cut} must start fresh"
            );
        }

        // One corrupted payload byte: the hash catches it.
        let mut flipped = stored.clone().into_bytes();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        assert_eq!(Checkpoint::load(&path).report.domains_scanned, 0);

        // Valid JSON without the header is still rejected.
        std::fs::write(&path, "{\"completed\":[],\"partial\":null}").unwrap();
        assert_eq!(Checkpoint::load(&path).report.domains_scanned, 0);

        // And a missing file starts fresh.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).report.domains_scanned, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_survives_a_truncated_checkpoint() {
        // A kill mid-snapshot followed by checkpoint corruption: the rerun
        // silently restarts from scratch and still matches the reference.
        let study = study();
        let dir = std::env::temp_dir().join(format!(
            "mtasts-supervisor-{}-trunc-resume",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let _ = std::fs::remove_file(&path);

        let base = SupervisorConfig {
            checkpoint_path: Some(path.clone()),
            checkpoint_every: 16,
            ..SupervisorConfig::default()
        };
        let reference = study.run_full_supervised(&SupervisorConfig::default());
        let SupervisedOutcome::Complete {
            snapshots: want, ..
        } = reference
        else {
            panic!("reference run must complete")
        };

        let killed = study.run_full_supervised(&SupervisorConfig {
            domain_budget: Some(want.iter().map(Snapshot::len).sum::<usize>() / 3),
            ..base.clone()
        });
        assert!(matches!(killed, SupervisedOutcome::Suspended { .. }));

        // Corrupt the checkpoint the way a crash mid-write would.
        let stored = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &stored[..stored.len() / 2]).unwrap();

        let resumed = study.run_full_supervised(&base);
        let SupervisedOutcome::Complete { snapshots: got, .. } = resumed else {
            panic!("rerun over a corrupt checkpoint must complete")
        };
        assert_eq!(snapshot_fingerprint(&want), snapshot_fingerprint(&got));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_checkpoint_degrades_instead_of_panicking() {
        // The checkpoint path's parent is a regular *file*, so every
        // write attempt fails with ENOTDIR — the shape of a dead disk
        // that even a root test process cannot bypass. The supervisor
        // must finish the campaign anyway and record the degradation.
        let dir = std::env::temp_dir().join(format!(
            "mtasts-supervisor-{}-unwritable",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("not-a-directory");
        std::fs::write(&blocker, b"occupied").unwrap();
        let path = blocker.join("ckpt.json");

        let study = study();
        let reference = study.run_full_supervised(&SupervisorConfig::default());
        let SupervisedOutcome::Complete {
            snapshots: want, ..
        } = reference
        else {
            panic!("reference run must complete")
        };

        let outcome = study.run_full_supervised(&SupervisorConfig {
            checkpoint_path: Some(path),
            checkpoint_every: 16,
            ..SupervisorConfig::default()
        });
        let SupervisedOutcome::Complete { snapshots, report } = outcome else {
            panic!("checkpoint I/O failure must not kill the campaign")
        };
        // Exactly one failure: checkpointing is disabled after the first.
        assert_eq!(report.checkpoint_failures, 1);
        assert_eq!(report.checkpoint_errors.len(), 1);
        assert!(
            report.checkpoint_errors[0].contains("ckpt.json"),
            "{:?}",
            report.checkpoint_errors
        );
        // The scans themselves are untouched by the degradation.
        assert_eq!(
            snapshot_fingerprint(&want),
            snapshot_fingerprint(&snapshots)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_never_clobber_each_other() {
        // Two writers (two studies, or two shards of one) share a
        // checkpoint path. The fixed-`tmp`-sibling scheme let one
        // writer's rename ship the other's half-written file; unique
        // temp names must keep every observable checkpoint complete and
        // verifiable.
        let dir = std::env::temp_dir().join(format!(
            "mtasts-supervisor-{}-concurrent",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");

        std::thread::scope(|scope| {
            for writer in 0u64..4 {
                let path = &path;
                scope.spawn(move || {
                    for round in 0..50 {
                        let mut ckpt = Checkpoint::default();
                        ckpt.report.domains_scanned = writer * 1000 + round;
                        ckpt.store(path).unwrap();
                    }
                });
            }
        });

        // The final file is one writer's complete checkpoint — never a
        // torn mix (load() would fall back to default and lose the
        // count entirely).
        let loaded = Checkpoint::load(&path);
        assert!(
            (0..4).any(|w| {
                let d = loaded.report.domains_scanned;
                d >= w * 1000 && d < w * 1000 + 50
            }),
            "final checkpoint holds an unexpected count: {}",
            loaded.report.domains_scanned
        );
        // No leftover temp files accumulate.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name() != "ckpt.json")
            .collect();
        assert!(leftovers.is_empty(), "leftover temp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervised_runs_agree_across_thread_counts() {
        let study = study();
        let mut fingerprints = Vec::new();
        for threads in [1usize, 2, 8] {
            let outcome = study.run_full_supervised(&SupervisorConfig {
                threads,
                checkpoint_every: 16,
                ..SupervisorConfig::default()
            });
            let SupervisedOutcome::Complete { snapshots, report } = outcome else {
                panic!("no budget set: must complete")
            };
            fingerprints.push((threads, snapshot_fingerprint(&snapshots), report));
        }
        let (_, want_snap, want_report) = &fingerprints[0];
        for (threads, snap, report) in &fingerprints[1..] {
            assert_eq!(snap, want_snap, "snapshots diverge at {threads} threads");
            assert_eq!(report, want_report, "report diverges at {threads} threads");
        }
    }

    #[test]
    fn chaos_domain_is_abandoned_without_killing_the_run() {
        let study = study();
        let date = *study.eco.config.full_scan_dates().last().unwrap();
        let victim = study
            .eco
            .domains_at(date)
            .map(|d| d.name.clone())
            .next()
            .unwrap();
        let outcome = study.run_full_supervised(&SupervisorConfig {
            chaos_panic_domains: vec![victim.clone()],
            ..SupervisorConfig::default()
        });
        let SupervisedOutcome::Complete { snapshots, report } = outcome else {
            panic!("isolation must keep the run alive")
        };
        assert!(report.domains_abandoned >= 1);
        assert!(report.abandoned_domains.contains(&victim.to_string()));
        // The victim is missing from snapshots it would have appeared in.
        let last = snapshots.last().unwrap();
        assert!(last.scan_of(&victim).is_none());
        assert!(!last.is_empty());
    }
}
