//! Snapshot scanning: §4.1's methodology against a world.

use crate::classify::EntityClassifier;
use crate::taxonomy::{DomainScan, MxVerdict, PolicyLayer, PolicyLayerError};
use dns::RecordType;
use mtasts::{classify_policy_mismatches, evaluate_record_set, RecordError};
use netbase::{DomainName, SimDate, TokenBucket};
use simnet::{PolicyFetchError, TlsFailure, World};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One full-component snapshot: scans + classification context.
pub struct Snapshot {
    /// The snapshot date.
    pub date: SimDate,
    /// Per-domain results, in input order.
    pub scans: Vec<DomainScan>,
    /// Resolved policy-host IPs (classification evidence).
    pub policy_ips: HashMap<DomainName, Ipv4Addr>,
    /// The entity classifier built over this snapshot.
    pub classifier: EntityClassifier,
}

impl Snapshot {
    /// Looks up a domain's scan.
    pub fn scan_of(&self, domain: &DomainName) -> Option<&DomainScan> {
        self.scans.iter().find(|s| s.domain == *domain)
    }

    /// Number of domains scanned.
    pub fn len(&self) -> usize {
        self.scans.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.scans.is_empty()
    }
}

/// Maps a fetch error to the layered taxonomy record.
fn layer_error(error: &PolicyFetchError) -> PolicyLayerError {
    let cert_error = match error {
        PolicyFetchError::Tls(TlsFailure::Cert(e)) => Some(e.clone()),
        _ => None,
    };
    PolicyLayerError {
        layer: PolicyLayer::of(error),
        detail: error.to_string(),
        cert_error,
    }
}

/// Scans one domain end to end (§4.1: record, policy over HTTPS,
/// instrumented SMTP probe of every MX, consistency check).
pub fn scan_domain(world: &World, domain: &DomainName, date: SimDate) -> DomainScan {
    let now = date.at_midnight();

    // 1. The `_mta-sts` record.
    let record = match world.mta_sts_txts(domain, now) {
        Ok(txts) => evaluate_record_set(&txts).map(|r| r.id),
        Err(_) => Err(RecordError::NoRecord),
    };

    // 2. Policy retrieval over HTTPS (full §4.3.3 ladder).
    let fetch = world.fetch_policy(domain, now);
    let policy = match fetch.result {
        Ok((policy, _raw)) => Ok(policy),
        Err(e) => Err(layer_error(&e)),
    };

    // 3. MX records and the instrumented SMTP probe (NS records are
    // collected alongside, §3.1).
    let mx_records = world.mx_records(domain, now).unwrap_or_default();
    let ns_records: Vec<DomainName> = world
        .resolve(domain, RecordType::Ns, now)
        .map(|l| {
            l.records
                .iter()
                .filter_map(|r| match &r.data {
                    dns::RecordData::Ns(t) => Some(t.clone()),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default();
    let mx_verdicts: Vec<MxVerdict> = mx_records
        .iter()
        .map(|host| {
            let probe = world.probe_mx(host, now);
            let cert = probe.cert_verdict(host, now, world.pki.trust_store());
            MxVerdict {
                host: host.clone(),
                reachable: probe.reachable,
                starttls: probe.starttls_offered,
                cert,
            }
        })
        .collect();

    // 4. Consistency between mx patterns and MX records (§4.4).
    let mismatches = match &policy {
        Ok(p) if !mx_records.is_empty() => classify_policy_mismatches(p, &mx_records)
            .into_iter()
            .map(|(pattern, kind)| (pattern.to_string(), kind))
            .collect(),
        _ => Vec::new(),
    };

    DomainScan {
        domain: domain.clone(),
        date,
        record,
        policy,
        policy_cname: fetch.cname_chain,
        mx_records,
        ns_records,
        mx_verdicts,
        mismatches,
    }
}

/// Scans a set of domains, optionally rate-limited (§3.1's ethics:
/// the simulated clock advances while the bucket throttles).
pub fn scan_snapshot(
    world: &World,
    domains: &[DomainName],
    date: SimDate,
    mut rate: Option<&mut TokenBucket>,
) -> Snapshot {
    let mut now = date.at_midnight();
    let mut scans = Vec::with_capacity(domains.len());
    let mut policy_ips = HashMap::new();
    for domain in domains {
        if let Some(bucket) = rate.as_deref_mut() {
            now = bucket.acquire_at(now);
        }
        let scan = scan_domain(world, domain, date);
        // Resolve the policy host's address as classification evidence.
        if let Ok(policy_host) = domain.prefixed(mtasts::POLICY_HOST_LABEL) {
            if let Ok(lookup) = world.resolve(&policy_host, RecordType::A, now) {
                if let Some(ip) = lookup.a_addrs().first() {
                    policy_ips.insert(domain.clone(), *ip);
                }
            }
        }
        scans.push(scan);
    }
    let classifier = EntityClassifier::from_scans(scans.iter(), &policy_ips);
    Snapshot {
        date,
        scans,
        policy_ips,
        classifier,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::EntityClass;
    use crate::taxonomy::MisconfigCategory;
    use ecosystem::{Ecosystem, EcosystemConfig, SnapshotDetail};
    use netbase::SimInstant;

    fn eco() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::paper(42, 0.02))
    }

    #[test]
    fn snapshot_scan_matches_ground_truth() {
        let eco = eco();
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        let domains: Vec<DomainName> =
            eco.domains_at(date).map(|d| d.name.clone()).collect();
        let snapshot = scan_snapshot(&world, &domains, date, None);
        assert_eq!(snapshot.len(), domains.len());

        // Ground truth from the spec vs measured categories.
        let mut agreed = 0;
        for spec in eco.domains_at(date) {
            let scan = snapshot.scan_of(&spec.name).unwrap();
            // Record faults are detected exactly.
            assert_eq!(
                scan.record.is_err(),
                spec.faults.record.is_some(),
                "{}: record",
                spec.name
            );
            // Policy faults: a fault is injected iff retrieval fails.
            let injected = eco.effective_policy_fault(spec, date).is_some();
            assert_eq!(
                scan.policy.is_err(),
                injected,
                "{}: policy (fault {:?}, got {:?})",
                spec.name,
                eco.effective_policy_fault(spec, date),
                scan.policy.as_ref().err()
            );
            agreed += 1;
        }
        assert!(agreed > 100);
    }

    #[test]
    fn misconfiguration_rate_matches_paper_shape() {
        let eco = eco();
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        let domains: Vec<DomainName> =
            eco.domains_at(date).map(|d| d.name.clone()).collect();
        let snapshot = scan_snapshot(&world, &domains, date, None);
        let misconfigured = snapshot
            .scans
            .iter()
            .filter(|s| s.is_misconfigured())
            .count() as f64;
        let share = misconfigured / snapshot.len() as f64;
        // Paper: 29.6% at the latest snapshot.
        assert!((0.22..0.38).contains(&share), "misconfigured share {share}");
        // Policy retrieval dominates (70-85% of errors, §4.6).
        let policy_errors = snapshot
            .scans
            .iter()
            .filter(|s| s.categories().contains(&MisconfigCategory::PolicyRetrieval))
            .count() as f64;
        assert!(
            policy_errors / misconfigured > 0.6,
            "policy share of errors {}",
            policy_errors / misconfigured
        );
    }

    #[test]
    fn classification_recovers_hosting_arrangements() {
        // Needs a scale where provider thresholds hold.
        let eco = Ecosystem::generate(EcosystemConfig::paper(11, 0.25));
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        let domains: Vec<DomainName> =
            eco.domains_at(date).map(|d| d.name.clone()).collect();
        let snapshot = scan_snapshot(&world, &domains, date, None);

        let mut policy_ok = 0usize;
        let mut policy_total = 0usize;
        let mut mx_ok = 0usize;
        let mut mx_total = 0usize;
        for spec in eco.domains_at(date) {
            let scan = snapshot.scan_of(&spec.name).unwrap();
            let got_policy = snapshot
                .classifier
                .classify_policy(&spec.name, &scan.policy_cname);
            let want_policy = match &spec.policy {
                ecosystem::PolicyHosting::SelfManaged
                | ecosystem::PolicyHosting::Porkbun
                | ecosystem::PolicyHosting::Mxascen => EntityClass::SelfManaged,
                ecosystem::PolicyHosting::Provider { .. }
                | ecosystem::PolicyHosting::MiscProvider { .. } => EntityClass::ThirdParty,
                ecosystem::PolicyHosting::SmallProvider { .. } => EntityClass::Unclassified,
            };
            policy_total += 1;
            if got_policy == want_policy {
                policy_ok += 1;
            }
            let got_mx = snapshot
                .classifier
                .classify_mx(&spec.name, &scan.mx_records);
            let want_mx = match &spec.mail {
                ecosystem::MailHosting::SelfManaged { .. } | ecosystem::MailHosting::Mxascen => {
                    EntityClass::SelfManaged
                }
                // The registrar parking fleet (all parked domains share the
                // forwarding MX *and* the parking policy IP) is grouped as a
                // single administrator by design — the paper's Porkbun
                // domains land in the self-managed series.
                ecosystem::MailHosting::Provider { key } if *key == "parkmail" => {
                    EntityClass::SelfManaged
                }
                ecosystem::MailHosting::Provider { .. } => EntityClass::ThirdParty,
                ecosystem::MailHosting::SmallProvider { .. } => EntityClass::Unclassified,
            };
            mx_total += 1;
            if got_mx == want_mx {
                mx_ok += 1;
            }
        }
        // DNS hosting: self-managed iff the NS shares the domain's eSLD.
        let mut dns_ok = 0usize;
        let mut dns_total = 0usize;
        for spec in eco.domains_at(date) {
            let scan = snapshot.scan_of(&spec.name).unwrap();
            let got = snapshot.classifier.classify_dns(&spec.name, &scan.ns_records);
            if spec.dns_self_hosted {
                dns_total += 1;
                if got == EntityClass::SelfManaged {
                    dns_ok += 1;
                }
            }
        }
        assert!(
            dns_total > 100 && dns_ok == dns_total,
            "dns classification {dns_ok}/{dns_total}"
        );

        // The heuristics are approximations by design; they should still
        // recover the vast majority of arrangements.
        assert!(
            policy_ok as f64 / policy_total as f64 > 0.9,
            "policy classification accuracy {policy_ok}/{policy_total}"
        );
        assert!(
            mx_ok as f64 / mx_total as f64 > 0.85,
            "mx classification accuracy {mx_ok}/{mx_total}"
        );
    }

    #[test]
    fn rate_limited_scan_advances_time() {
        let eco = eco();
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        let domains: Vec<DomainName> = eco
            .domains_at(date)
            .take(30)
            .map(|d| d.name.clone())
            .collect();
        let mut bucket = TokenBucket::new(10.0, 1, date.at_midnight());
        let t0 = SimInstant::from_unix_secs(date.at_midnight().unix_secs());
        let snapshot = scan_snapshot(&world, &domains, date, Some(&mut bucket));
        assert_eq!(snapshot.len(), 30);
        // The bucket forced simulated time forward.
        let after = bucket.acquire_at(t0);
        assert!(after > t0);
    }
}
