//! Snapshot scanning: §4.1's methodology against a world.

use crate::classify::EntityClassifier;
use crate::parallel::default_scan_threads;
use crate::taxonomy::{
    DomainScan, MxVerdict, PolicyLayer, PolicyLayerError, ScanAttempts, StageAttempts,
};
use dns::RecordType;
use mtasts::{classify_policy_mismatches, evaluate_record_set, MismatchKind, Policy, RecordError};
use netbase::{
    map_sharded, AttemptEvent, DetRng, DomainName, RetryPolicy, SimDate, SimInstant, TokenBucket,
};
use simnet::{
    dns_error_is_transient, MxProbeOutcome, PolicyFetchError, PolicyFetchOutcome, TlsFailure, World,
};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::OnceLock;

/// The scanner's retry discipline, per stage.
///
/// All retry state derives from `seed` and the domain name, so a scan is a
/// pure function of `(world, domain, date, config)` — which is what lets
/// the supervisor resume an interrupted run byte-identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanConfig {
    /// Root seed for backoff jitter.
    pub seed: u64,
    /// Retry policy for DNS lookups (`_mta-sts`, MX, NS).
    pub record_retry: RetryPolicy,
    /// Retry policy for the HTTPS policy fetch.
    pub policy_retry: RetryPolicy,
    /// Retry policy for each SMTP MX probe.
    pub mx_retry: RetryPolicy,
}

impl ScanConfig {
    /// The seed scanner's behaviour: one attempt everywhere.
    pub fn single_shot() -> ScanConfig {
        ScanConfig {
            seed: 0,
            record_retry: RetryPolicy::single_shot(),
            policy_retry: RetryPolicy::single_shot(),
            mx_retry: RetryPolicy::single_shot(),
        }
    }

    /// A production-shaped discipline: up to `attempts` tries per stage.
    pub fn resilient(seed: u64, attempts: u32) -> ScanConfig {
        ScanConfig {
            seed,
            record_retry: RetryPolicy::resilient(attempts),
            policy_retry: RetryPolicy::resilient(attempts),
            mx_retry: RetryPolicy::resilient(attempts),
        }
    }
}

impl Default for ScanConfig {
    /// Resilient with 4 attempts. On a fault-free world this is
    /// indistinguishable from [`ScanConfig::single_shot`] except for the
    /// attempt accounting: persistent errors stop after one try, and
    /// static faults that *look* transient (a permanently dropped port)
    /// exhaust their retries into the same classification.
    fn default() -> ScanConfig {
        ScanConfig::resilient(0, 4)
    }
}

/// One full-component snapshot: scans + classification context.
pub struct Snapshot {
    /// The snapshot date.
    pub date: SimDate,
    /// Per-domain results, in input order.
    pub scans: Vec<DomainScan>,
    /// Resolved policy-host IPs (classification evidence).
    pub policy_ips: HashMap<DomainName, Ipv4Addr>,
    /// The entity classifier built over this snapshot.
    pub classifier: EntityClassifier,
    /// Compact population ids parallel to `scans` (index into the
    /// generating `Population`); empty when assembled without them
    /// (scratch and checkpoint paths). With ids, a snapshot is
    /// O(adopters): ids + scans, no per-domain name keys.
    ids: Vec<u32>,
    /// Domain → index into `scans`, built lazily on the first
    /// [`Snapshot::scan_of`] — analyses probe tens of thousands of
    /// domains per snapshot, and a linear search per lookup is O(n²).
    index: OnceLock<HashMap<DomainName, usize>>,
}

impl Snapshot {
    /// Assembles a snapshot from scan results, building the entity
    /// classifier (a pure function of the scans and policy IPs).
    pub fn assemble(
        date: SimDate,
        scans: Vec<DomainScan>,
        policy_ips: HashMap<DomainName, Ipv4Addr>,
    ) -> Snapshot {
        Snapshot::assemble_indexed(date, scans, policy_ips, Vec::new())
    }

    /// [`Snapshot::assemble`] carrying the population indices of `scans`
    /// as a parallel column, so index-walking consumers skip the name
    /// lookup entirely. The ids never enter serialized digests.
    pub fn assemble_indexed(
        date: SimDate,
        scans: Vec<DomainScan>,
        policy_ips: HashMap<DomainName, Ipv4Addr>,
        ids: Vec<u32>,
    ) -> Snapshot {
        debug_assert!(ids.is_empty() || ids.len() == scans.len());
        let classifier = EntityClassifier::from_scans(scans.iter(), &policy_ips);
        Snapshot {
            date,
            scans,
            policy_ips,
            classifier,
            ids,
            index: OnceLock::new(),
        }
    }

    /// Population ids parallel to `scans`; empty when the snapshot was
    /// assembled without them.
    pub fn population_ids(&self) -> &[u32] {
        &self.ids
    }

    /// Looks up a domain's scan.
    pub fn scan_of(&self, domain: &DomainName) -> Option<&DomainScan> {
        let index = self.index.get_or_init(|| {
            self.scans
                .iter()
                .enumerate()
                .map(|(i, s)| (s.domain.clone(), i))
                .collect()
        });
        index.get(domain).map(|&i| &self.scans[i])
    }

    /// Number of domains scanned.
    pub fn len(&self) -> usize {
        self.scans.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.scans.is_empty()
    }
}

/// Maps a fetch error to the layered taxonomy record.
fn layer_error(error: &PolicyFetchError) -> PolicyLayerError {
    let cert_error = match error {
        PolicyFetchError::Tls(TlsFailure::Cert(e)) => Some(e.clone()),
        _ => None,
    };
    PolicyLayerError {
        layer: PolicyLayer::of(error),
        detail: error.to_string(),
        cert_error,
    }
}

/// The record stage's output: the `_mta-sts` TXT evaluation.
pub(crate) struct RecordStage {
    pub record: Result<String, RecordError>,
    pub attempts: StageAttempts,
}

/// The policy stage's output: the HTTPS fetch ladder's result plus the
/// CNAME delegation evidence.
pub(crate) struct PolicyStage {
    pub policy: Result<Policy, PolicyLayerError>,
    pub cname: Vec<DomainName>,
    pub attempts: StageAttempts,
}

/// The MX stage's output: records, NS evidence, and per-host probes.
pub(crate) struct MxStage {
    pub mx_records: Vec<DomainName>,
    pub ns_records: Vec<DomainName>,
    pub mx_verdicts: Vec<MxVerdict>,
    pub attempts: StageAttempts,
}

/// Telemetry for one retry attempt (a side channel only: counters read
/// nothing back). Recovered transients, failed attempts, retries and
/// real backoff sleeps each get a counter, matching the taxonomy's
/// retry vocabulary.
pub(crate) fn note_attempt(ev: AttemptEvent) {
    match ev {
        AttemptEvent::Success { attempt } => {
            if attempt > 1 {
                obsv::counter!("scan_recovered_transients_total");
            }
        }
        AttemptEvent::Failure { backoff, .. } => {
            obsv::counter!("scan_failed_attempts_total");
            if let Some(delay) = backoff {
                obsv::counter!("scan_retries_total");
                if delay > netbase::Duration::ZERO {
                    obsv::counter!("scan_backoff_sleeps_total");
                }
            }
        }
    }
}

/// An attempt observer that accumulates the stage's taxonomy accounting
/// (total attempts; whether a transient recovered) and emits the retry
/// telemetry. This is the migration target for the per-call-site
/// `RetryOutcome.attempts` bookkeeping: stages hand this to
/// [`RetryPolicy::run_observed`] instead of reading outcome fields back.
pub(crate) fn tally(acc: &mut StageAttempts) -> impl FnMut(AttemptEvent) + '_ {
    move |ev| {
        acc.attempts += 1;
        if let AttemptEvent::Success { attempt } = ev {
            if attempt > 1 {
                acc.recovered = true;
            }
        }
        note_attempt(ev);
    }
}

/// The per-domain retry RNG. Each stage forks its own scope off this, so
/// stages are independent: re-running one stage in isolation (the
/// incremental engine's partial re-scan) draws exactly the jitter the
/// full scan would have drawn for it.
pub(crate) fn stage_rng(config: &ScanConfig, domain: &DomainName) -> DetRng {
    DetRng::new(config.seed).fork(&domain.to_string())
}

/// Stage 1: the `_mta-sts` record, retrying SERVFAIL/timeout shapes.
pub(crate) fn record_stage(
    world: &World,
    domain: &DomainName,
    now: SimInstant,
    config: &ScanConfig,
    rng: &DetRng,
) -> RecordStage {
    let mut span = obsv::span!("scan.record");
    let mut attempts = StageAttempts::default();
    let record_out = config.record_retry.run_observed(
        rng,
        "record",
        now,
        dns_error_is_transient,
        |at, _| world.mta_sts_txts(domain, at),
        tally(&mut attempts),
    );
    span.set_sim_secs(record_out.finished_at.since(now).as_secs());
    RecordStage {
        attempts,
        record: match record_out.result {
            Ok(txts) => evaluate_record_set(&txts).map(|r| r.id),
            Err(_) => Err(RecordError::NoRecord),
        },
    }
}

/// Stage 2: policy retrieval over HTTPS (full §4.3.3 ladder). The whole
/// outcome travels through the retry loop so delegation evidence from
/// the final attempt is preserved either way.
// The policy-retry closure's Err carries the whole fetch outcome on
// purpose — delegation evidence from the final attempt must survive.
#[allow(clippy::result_large_err)]
pub(crate) fn policy_stage(
    world: &World,
    domain: &DomainName,
    now: SimInstant,
    config: &ScanConfig,
    rng: &DetRng,
) -> PolicyStage {
    let mut span = obsv::span!("scan.policy");
    let mut attempts = StageAttempts::default();
    let policy_out = config.policy_retry.run_observed(
        rng,
        "policy",
        now,
        |o: &PolicyFetchOutcome| {
            o.result
                .as_ref()
                .err()
                .is_some_and(PolicyFetchError::is_transient)
        },
        |at, _| {
            let outcome = world.fetch_policy(domain, at);
            if outcome.result.is_ok() {
                Ok(outcome)
            } else {
                Err(outcome)
            }
        },
        tally(&mut attempts),
    );
    span.set_sim_secs(policy_out.finished_at.since(now).as_secs());
    let fetch = match policy_out.result {
        Ok(outcome) | Err(outcome) => outcome,
    };
    PolicyStage {
        policy: match &fetch.result {
            Ok((policy, _raw)) => Ok(policy.clone()),
            Err(e) => Err(layer_error(e)),
        },
        cname: fetch.cname_chain,
        attempts,
    }
}

/// Stage 3: MX records and the instrumented SMTP probe (NS records are
/// collected alongside, §3.1). The MX-record lookup and every per-host
/// probe count toward the MX stage's attempt budget; a probe that still
/// tempfails after its last retry is kept with `chain: None`, excluding
/// the host from certificate analysis rather than miscounting it.
pub(crate) fn mx_stage(
    world: &World,
    domain: &DomainName,
    now: SimInstant,
    config: &ScanConfig,
    rng: &DetRng,
) -> MxStage {
    let mut span = obsv::span!("scan.mx");
    let mut attempts = StageAttempts::default();
    let mx_out = config.record_retry.run_observed(
        rng,
        "mx-records",
        now,
        dns_error_is_transient,
        |at, _| world.mx_records(domain, at),
        tally(&mut attempts),
    );
    let mx_records = mx_out.result.unwrap_or_default();
    // NS evidence rides along for classification but has never counted
    // toward the MX stage's attempt budget; telemetry still sees it.
    let ns_out = config.record_retry.run_observed(
        rng,
        "ns-records",
        now,
        dns_error_is_transient,
        |at, _| world.resolve(domain, RecordType::Ns, at),
        note_attempt,
    );
    let ns_records: Vec<DomainName> = ns_out
        .result
        .map(|l| {
            l.records
                .iter()
                .filter_map(|r| match &r.data {
                    dns::RecordData::Ns(t) => Some(t.clone()),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default();
    let mut sim_end = mx_out.finished_at;
    let mx_verdicts: Vec<MxVerdict> = mx_records
        .iter()
        .map(|host| {
            let mut probe_span = obsv::span!("scan.probe");
            let probe_out = config.mx_retry.run_observed(
                rng,
                &format!("mx/{host}"),
                now,
                MxProbeOutcome::is_transient_failure,
                |at, _| {
                    let probe = world.probe_mx(host, at);
                    if probe.is_transient_failure() {
                        Err(probe)
                    } else {
                        Ok(probe)
                    }
                },
                tally(&mut attempts),
            );
            probe_span.set_sim_secs(probe_out.finished_at.since(now).as_secs());
            if probe_out.finished_at > sim_end {
                sim_end = probe_out.finished_at;
            }
            let probe = match probe_out.result {
                Ok(p) | Err(p) => p,
            };
            let cert = probe.cert_verdict(host, now, world.pki.trust_store());
            MxVerdict {
                host: host.clone(),
                reachable: probe.reachable,
                starttls: probe.starttls_offered,
                cert,
            }
        })
        .collect();
    span.set_sim_secs(sim_end.since(now).as_secs());
    MxStage {
        mx_records,
        ns_records,
        mx_verdicts,
        attempts,
    }
}

/// Stage 4: consistency between mx patterns and MX records (§4.4). A
/// pure function of the policy- and MX-stage outputs, recomputed by the
/// incremental engine whenever either input stage re-ran.
pub(crate) fn consistency_mismatches(
    policy: &Result<Policy, PolicyLayerError>,
    mx_records: &[DomainName],
) -> Vec<(String, MismatchKind)> {
    match policy {
        Ok(p) if !mx_records.is_empty() => classify_policy_mismatches(p, mx_records)
            .into_iter()
            .map(|(pattern, kind)| (pattern.to_string(), kind))
            .collect(),
        _ => Vec::new(),
    }
}

/// Scans one domain end to end (§4.1: record, policy over HTTPS,
/// instrumented SMTP probe of every MX, consistency check), retrying
/// transient failures per `config` before anything reaches the taxonomy.
///
/// `now` is the instant the rate limiter admitted this domain — every
/// per-second fault and attack draw keys off it, so a throttled campaign
/// really does sweep across the simulated day instead of replaying
/// midnight for every domain. Unthrottled callers pass
/// `date.at_midnight()`.
///
/// Classification only ever sees the *final* attempt of each stage, so a
/// failure that a retry recovered never inflates the misconfiguration
/// statistics; the attempt counts land in [`DomainScan::attempts`].
pub fn scan_domain(
    world: &World,
    domain: &DomainName,
    date: SimDate,
    now: SimInstant,
    config: &ScanConfig,
) -> DomainScan {
    let domain_start = obsv::enabled().then(std::time::Instant::now);
    let rng = stage_rng(config, domain);
    let record = record_stage(world, domain, now, config, &rng);
    let policy = policy_stage(world, domain, now, config, &rng);
    let mx = mx_stage(world, domain, now, config, &rng);
    let mismatches = consistency_mismatches(&policy.policy, &mx.mx_records);
    if let Some(started) = domain_start {
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        obsv::histogram!("scan_domain_real_us", micros);
    }
    DomainScan {
        domain: domain.clone(),
        date,
        record: record.record,
        policy: policy.policy,
        policy_cname: policy.cname,
        mx_records: mx.mx_records,
        ns_records: mx.ns_records,
        mx_verdicts: mx.mx_verdicts,
        mismatches,
        attempts: ScanAttempts {
            record: record.attempts,
            policy: policy.attempts,
            mx: mx.attempts,
        },
    }
}

/// Plans each domain's admitted instant: the whole throttled timeline is
/// derived from one logical bucket up front, so it is the same for every
/// thread count (the parallel engine's per-shard clock slices this plan).
/// Unthrottled scans run the entire population at midnight, as before.
pub(crate) fn plan_admissions(
    date: SimDate,
    rate: Option<&mut TokenBucket>,
    n: usize,
) -> Vec<SimInstant> {
    let midnight = date.at_midnight();
    match rate {
        Some(bucket) => bucket.plan_admissions(midnight, n),
        None => vec![midnight; n],
    }
}

/// Scans a set of domains, optionally rate-limited (§3.1's ethics:
/// the simulated clock advances while the bucket throttles), across the
/// default thread count (`SCAN_THREADS` or the machine's parallelism).
pub fn scan_snapshot(
    world: &World,
    domains: &[DomainName],
    date: SimDate,
    rate: Option<&mut TokenBucket>,
    config: &ScanConfig,
) -> Snapshot {
    scan_snapshot_with_threads(world, domains, date, rate, config, default_scan_threads())
}

/// [`scan_snapshot`] with an explicit thread count. The output is
/// byte-identical for every `threads` value (see `parallel` module docs
/// for the argument); `threads <= 1` is the sequential engine.
pub fn scan_snapshot_with_threads(
    world: &World,
    domains: &[DomainName],
    date: SimDate,
    rate: Option<&mut TokenBucket>,
    config: &ScanConfig,
    threads: usize,
) -> Snapshot {
    let admissions = plan_admissions(date, rate, domains.len());
    let results = map_sharded(threads, domains, |i, domain| {
        let now = admissions[i];
        let scan = scan_domain(world, domain, date, now, config);
        let ip = resolve_policy_ip(world, domain, now, config);
        (scan, ip)
    });
    let mut scans = Vec::with_capacity(domains.len());
    let mut policy_ips = HashMap::new();
    for (scan, ip) in results {
        if let Some(ip) = ip {
            policy_ips.insert(scan.domain.clone(), ip);
        }
        scans.push(scan);
    }
    Snapshot::assemble(date, scans, policy_ips)
}

/// Resolves the policy host's address as classification evidence, retrying
/// transient DNS failures so flaky resolution doesn't degrade clustering.
/// Keyed on the same admitted instant as the domain's scan.
pub(crate) fn resolve_policy_ip(
    world: &World,
    domain: &DomainName,
    now: SimInstant,
    config: &ScanConfig,
) -> Option<Ipv4Addr> {
    let policy_host = domain.prefixed(mtasts::POLICY_HOST_LABEL).ok()?;
    let rng = DetRng::new(config.seed).fork(&domain.to_string());
    let mut span = obsv::span!("scan.policy_ip");
    let out = config.record_retry.run_observed(
        &rng,
        "policy-ip",
        now,
        dns_error_is_transient,
        |at, _| world.resolve(&policy_host, RecordType::A, at),
        note_attempt,
    );
    span.set_sim_secs(out.finished_at.since(now).as_secs());
    out.result.ok()?.a_addrs().first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::EntityClass;
    use crate::taxonomy::MisconfigCategory;
    use ecosystem::{Ecosystem, EcosystemConfig, SnapshotDetail};
    use netbase::SimInstant;

    fn eco() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::paper(42, 0.02))
    }

    #[test]
    fn snapshot_scan_matches_ground_truth() {
        let eco = eco();
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        let domains: Vec<DomainName> = eco.domains_at(date).map(|d| d.name.clone()).collect();
        let snapshot = scan_snapshot(&world, &domains, date, None, &ScanConfig::default());
        assert_eq!(snapshot.len(), domains.len());

        // Ground truth from the spec vs measured categories.
        let mut agreed = 0;
        for spec in eco.domains_at(date) {
            let scan = snapshot.scan_of(&spec.name).unwrap();
            // Record faults are detected exactly.
            assert_eq!(
                scan.record.is_err(),
                spec.faults.record.is_some(),
                "{}: record",
                spec.name
            );
            // Policy faults: a fault is injected iff retrieval fails.
            let injected = eco.effective_policy_fault(spec, date).is_some();
            assert_eq!(
                scan.policy.is_err(),
                injected,
                "{}: policy (fault {:?}, got {:?})",
                spec.name,
                eco.effective_policy_fault(spec, date),
                scan.policy.as_ref().err()
            );
            agreed += 1;
        }
        assert!(agreed > 100);
    }

    #[test]
    fn misconfiguration_rate_matches_paper_shape() {
        let eco = eco();
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        let domains: Vec<DomainName> = eco.domains_at(date).map(|d| d.name.clone()).collect();
        let snapshot = scan_snapshot(&world, &domains, date, None, &ScanConfig::default());
        let misconfigured = snapshot
            .scans
            .iter()
            .filter(|s| s.is_misconfigured())
            .count() as f64;
        let share = misconfigured / snapshot.len() as f64;
        // Paper: 29.6% at the latest snapshot.
        assert!((0.22..0.38).contains(&share), "misconfigured share {share}");
        // Policy retrieval dominates (70-85% of errors, §4.6).
        let policy_errors = snapshot
            .scans
            .iter()
            .filter(|s| s.categories().contains(&MisconfigCategory::PolicyRetrieval))
            .count() as f64;
        assert!(
            policy_errors / misconfigured > 0.6,
            "policy share of errors {}",
            policy_errors / misconfigured
        );
    }

    #[test]
    fn classification_recovers_hosting_arrangements() {
        // Needs a scale where provider thresholds hold.
        let eco = Ecosystem::generate(EcosystemConfig::paper(11, 0.25));
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        let domains: Vec<DomainName> = eco.domains_at(date).map(|d| d.name.clone()).collect();
        let snapshot = scan_snapshot(&world, &domains, date, None, &ScanConfig::default());

        let mut policy_ok = 0usize;
        let mut policy_total = 0usize;
        let mut mx_ok = 0usize;
        let mut mx_total = 0usize;
        for spec in eco.domains_at(date) {
            let scan = snapshot.scan_of(&spec.name).unwrap();
            let got_policy = snapshot
                .classifier
                .classify_policy(&spec.name, &scan.policy_cname);
            let want_policy = match &spec.policy {
                ecosystem::PolicyHosting::SelfManaged
                | ecosystem::PolicyHosting::Porkbun
                | ecosystem::PolicyHosting::Mxascen => EntityClass::SelfManaged,
                ecosystem::PolicyHosting::Provider { .. }
                | ecosystem::PolicyHosting::MiscProvider { .. } => EntityClass::ThirdParty,
                ecosystem::PolicyHosting::SmallProvider { .. } => EntityClass::Unclassified,
            };
            policy_total += 1;
            if got_policy == want_policy {
                policy_ok += 1;
            }
            let got_mx = snapshot
                .classifier
                .classify_mx(&spec.name, &scan.mx_records);
            let want_mx = match &spec.mail {
                ecosystem::MailHosting::SelfManaged { .. } | ecosystem::MailHosting::Mxascen => {
                    EntityClass::SelfManaged
                }
                // The registrar parking fleet (all parked domains share the
                // forwarding MX *and* the parking policy IP) is grouped as a
                // single administrator by design — the paper's Porkbun
                // domains land in the self-managed series.
                ecosystem::MailHosting::Provider { key } if *key == "parkmail" => {
                    EntityClass::SelfManaged
                }
                ecosystem::MailHosting::Provider { .. } => EntityClass::ThirdParty,
                ecosystem::MailHosting::SmallProvider { .. } => EntityClass::Unclassified,
            };
            mx_total += 1;
            if got_mx == want_mx {
                mx_ok += 1;
            }
        }
        // DNS hosting: self-managed iff the NS shares the domain's eSLD.
        let mut dns_ok = 0usize;
        let mut dns_total = 0usize;
        for spec in eco.domains_at(date) {
            let scan = snapshot.scan_of(&spec.name).unwrap();
            let got = snapshot
                .classifier
                .classify_dns(&spec.name, &scan.ns_records);
            if spec.dns_self_hosted {
                dns_total += 1;
                if got == EntityClass::SelfManaged {
                    dns_ok += 1;
                }
            }
        }
        assert!(
            dns_total > 100 && dns_ok == dns_total,
            "dns classification {dns_ok}/{dns_total}"
        );

        // The heuristics are approximations by design; they should still
        // recover the vast majority of arrangements.
        assert!(
            policy_ok as f64 / policy_total as f64 > 0.9,
            "policy classification accuracy {policy_ok}/{policy_total}"
        );
        assert!(
            mx_ok as f64 / mx_total as f64 > 0.85,
            "mx classification accuracy {mx_ok}/{mx_total}"
        );
    }

    #[test]
    fn layer_error_maps_every_fetch_error_shape() {
        use crate::taxonomy::PolicyLayer;
        use mtasts::PolicyError;
        use pkix::CertError;
        use simnet::TlsFailure;

        // Non-TLS layers never carry a certificate error.
        let cases = [
            (
                PolicyFetchError::Dns("no A records".into()),
                PolicyLayer::Dns,
            ),
            (PolicyFetchError::Tcp("refused".into()), PolicyLayer::Tcp),
            (PolicyFetchError::Http(404), PolicyLayer::Http),
            (PolicyFetchError::Http(503), PolicyLayer::Http),
            (
                PolicyFetchError::Syntax(PolicyError::EmptyDocument),
                PolicyLayer::Syntax,
            ),
            (
                PolicyFetchError::Syntax(PolicyError::InvalidMxPattern {
                    pattern: "*.*.a".into(),
                    why: "nested wildcard".into(),
                }),
                PolicyLayer::Syntax,
            ),
            (
                PolicyFetchError::Tls(TlsFailure::Handshake("alert".into())),
                PolicyLayer::Tls,
            ),
        ];
        for (error, want_layer) in cases {
            let mapped = layer_error(&error);
            assert_eq!(mapped.layer, want_layer, "{error:?}");
            assert_eq!(mapped.cert_error, None, "{error:?}");
            assert_eq!(mapped.detail, error.to_string());
        }

        // TLS certificate failures: every variant surfaces its cert error.
        let cert_errors = vec![
            CertError::NoCertificate,
            CertError::Expired,
            CertError::NotYetValid,
            CertError::SelfSigned,
            CertError::UnknownIssuer,
            CertError::BadSignature,
            CertError::NotACa,
            CertError::IntermediateExpired,
            CertError::NameMismatch {
                wanted: "mta-sts.a.com".parse().unwrap(),
                presented: vec!["shared.host.net".into()],
            },
            CertError::BrokenChain,
        ];
        for cert in cert_errors {
            let error = PolicyFetchError::Tls(TlsFailure::Cert(cert.clone()));
            let mapped = layer_error(&error);
            assert_eq!(mapped.layer, PolicyLayer::Tls, "{cert:?}");
            assert_eq!(mapped.cert_error, Some(cert.clone()), "{cert:?}");
            assert_eq!(mapped.detail, error.to_string());
        }
    }

    #[test]
    fn throttled_scan_sees_midday_fault_windows() {
        // Regression: `scan_snapshot` used to advance `now` through the
        // bucket but then scan every domain at `date.at_midnight()`, so
        // time-windowed faults could never hit a throttled campaign. With
        // the admitted instant threaded through, a DNS outage window must
        // hit exactly the domains the rate limiter schedules inside it.
        use simnet::{FaultKind, FaultSchedule};

        let world = World::new();
        let apex: DomainName = "example.com".parse().unwrap();
        world.ensure_zone(&apex);
        let domains: Vec<DomainName> = (0..25)
            .map(|i| format!("d{i}.example.com").parse().unwrap())
            .collect();
        world.with_zone(&apex, |z| {
            for d in &domains {
                z.add_rr(
                    &d.prefixed(mtasts::RECORD_LABEL).unwrap(),
                    300,
                    dns::RecordData::Txt(vec!["v=STSv1; id=20240601;".into()]),
                );
            }
        });

        let date = SimDate::ymd(2024, 6, 1);
        let t0 = date.at_midnight();
        // Outage: DNS drops everything for 10 s starting 5 s into the
        // scan. At 1 domain/s (burst 1), domain i is admitted at t0 + i.
        world.set_dns_faults(FaultSchedule::new(0).with_window(
            FaultKind::DnsDrop,
            t0 + netbase::Duration::seconds(5),
            t0 + netbase::Duration::seconds(15),
        ));

        let mut bucket = TokenBucket::new(1.0, 1, t0);
        let snapshot = scan_snapshot(
            &world,
            &domains,
            date,
            Some(&mut bucket),
            &ScanConfig::single_shot(),
        );
        for (i, scan) in snapshot.scans.iter().enumerate() {
            let in_window = (5..15).contains(&i);
            assert_eq!(
                scan.record.is_err(),
                in_window,
                "domain {i} admitted at t0+{i}s: record {:?}",
                scan.record
            );
        }

        // The unthrottled scan runs entirely at midnight and never
        // enters the window — the pre-fix behaviour, still correct for
        // rate-unlimited callers.
        let unthrottled = scan_snapshot(&world, &domains, date, None, &ScanConfig::single_shot());
        assert!(unthrottled.scans.iter().all(|s| s.record.is_ok()));
    }

    #[test]
    fn parallel_snapshot_is_byte_identical_to_sequential() {
        // The determinism contract of the parallel engine, on a faulted,
        // rate-limited world: thread counts 1, 2 and 8 must produce the
        // same bytes (scan order, policy IPs, attempt accounting).
        let eco = eco();
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        world.inject_transient_faults(&simnet::TransientFaultConfig::uniform(7, 0.05));
        let domains: Vec<DomainName> = eco.domains_at(date).map(|d| d.name.clone()).collect();

        let digest = |threads: usize| {
            let mut bucket = TokenBucket::new(50.0, 10, date.at_midnight());
            let snap = crate::scan::scan_snapshot_with_threads(
                &world,
                &domains,
                date,
                Some(&mut bucket),
                &ScanConfig::default(),
                threads,
            );
            let mut ips: Vec<(String, String)> = snap
                .policy_ips
                .iter()
                .map(|(d, ip)| (d.to_string(), ip.to_string()))
                .collect();
            ips.sort();
            serde_json::to_string(&(&snap.scans, ips)).unwrap()
        };

        let sequential = digest(1);
        for threads in [2usize, 8] {
            assert_eq!(
                sequential,
                digest(threads),
                "parallel scan diverges at {threads} threads"
            );
        }
    }

    #[test]
    fn rate_limited_scan_advances_time() {
        let eco = eco();
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        let domains: Vec<DomainName> = eco
            .domains_at(date)
            .take(30)
            .map(|d| d.name.clone())
            .collect();
        let mut bucket = TokenBucket::new(10.0, 1, date.at_midnight());
        let t0 = SimInstant::from_unix_secs(date.at_midnight().unix_secs());
        let snapshot = scan_snapshot(
            &world,
            &domains,
            date,
            Some(&mut bucket),
            &ScanConfig::default(),
        );
        assert_eq!(snapshot.len(), 30);
        // The bucket forced simulated time forward.
        let after = bucket.acquire_at(t0);
        assert!(after > t0);
    }
}
