//! `danelite` — DANE (RFC 6698/7672) for SMTP, the baseline protocol.
//!
//! The paper contrasts MTA-STS with DANE throughout: DANE binds MX
//! certificates through DNSSEC-signed TLSA records instead of the web PKI
//! plus HTTPS (§1, §8), and §6.2 measures senders validating one, the
//! other, or both — including the Postfix-milter bug that prefers MTA-STS
//! over DANE against RFC 8461's advice. This crate implements enough of
//! DANE to drive those experiments:
//!
//! - TLSA association data computation over [`pkix::SimCert`]s (selector:
//!   full certificate or SPKI; matching type: exact or digest);
//! - certificate-usage semantics: DANE-EE(3) and DANE-TA(2) fully, with
//!   PKIX-EE(1)/PKIX-TA(0) additionally requiring WebPKI validation;
//! - the DNSSEC gate: TLSA records from unsigned zones are unusable
//!   (RFC 7672 §2.2), which is exactly why DANE adoption trails — the 4%
//!   DNSSEC deployment the paper cites.

use dns::TlsaRecord;
use netbase::{DomainName, SimInstant};
use pkix::digest::digest;
use pkix::{validate_chain, SimCert, TrustStore};
use serde::{Deserialize, Serialize};
use std::fmt;

/// TLSA certificate usages (RFC 6698 §2.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CertUsage {
    /// 0: CA constraint (PKIX-TA).
    PkixTa,
    /// 1: service certificate constraint (PKIX-EE).
    PkixEe,
    /// 2: trust anchor assertion (DANE-TA).
    DaneTa,
    /// 3: domain-issued certificate (DANE-EE).
    DaneEe,
}

impl CertUsage {
    /// Decodes the wire value.
    pub fn from_u8(v: u8) -> Option<CertUsage> {
        match v {
            0 => Some(CertUsage::PkixTa),
            1 => Some(CertUsage::PkixEe),
            2 => Some(CertUsage::DaneTa),
            3 => Some(CertUsage::DaneEe),
            _ => None,
        }
    }
}

/// TLSA selectors (RFC 6698 §2.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Selector {
    /// 0: the full certificate.
    FullCert,
    /// 1: the SubjectPublicKeyInfo.
    Spki,
}

impl Selector {
    /// Decodes the wire value.
    pub fn from_u8(v: u8) -> Option<Selector> {
        match v {
            0 => Some(Selector::FullCert),
            1 => Some(Selector::Spki),
            _ => None,
        }
    }
}

/// TLSA matching types (RFC 6698 §2.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchingType {
    /// 0: exact contents.
    Exact,
    /// 1: SHA-256 (simulated 32-byte digest here).
    Sha256,
}

impl MatchingType {
    /// Decodes the wire value (512-bit digests are not simulated).
    pub fn from_u8(v: u8) -> Option<MatchingType> {
        match v {
            0 => Some(MatchingType::Exact),
            1 => Some(MatchingType::Sha256),
            _ => None,
        }
    }
}

/// DANE validation failures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DaneError {
    /// The zone holding the TLSA records is not DNSSEC-signed, so the
    /// records are unusable (RFC 7672 §2.2).
    ZoneNotSigned,
    /// No TLSA records at `_25._tcp.<mx>`.
    NoTlsaRecords,
    /// A record carried an unknown usage/selector/matching type and no
    /// usable record remained.
    NoUsableRecords,
    /// The server presented no certificate.
    NoCertificate,
    /// No TLSA record matched the presented chain.
    NoMatch,
    /// A PKIX-usage record matched but WebPKI validation failed.
    PkixFailed(pkix::CertError),
}

impl fmt::Display for DaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaneError::ZoneNotSigned => write!(f, "TLSA zone is not DNSSEC-signed"),
            DaneError::NoTlsaRecords => write!(f, "no TLSA records"),
            DaneError::NoUsableRecords => write!(f, "no usable TLSA records"),
            DaneError::NoCertificate => write!(f, "server presented no certificate"),
            DaneError::NoMatch => write!(f, "no TLSA record matches the presented chain"),
            DaneError::PkixFailed(e) => write!(f, "PKIX-usage TLSA matched but PKIX failed: {e}"),
        }
    }
}

impl std::error::Error for DaneError {}

/// The TLSA owner name for SMTP on port 25: `_25._tcp.<mx>`.
pub fn tlsa_name(mx: &DomainName) -> DomainName {
    mx.prefixed("_tcp")
        .and_then(|n| n.prefixed("_25"))
        .expect("static labels are valid")
}

/// Computes the association data of `cert` under a selector/matching pair.
pub fn association_data(cert: &SimCert, selector: Selector, matching: MatchingType) -> Vec<u8> {
    let selected: Vec<u8> = match selector {
        Selector::FullCert => cert.to_bytes(),
        Selector::Spki => cert.subject_key_id.to_be_bytes().to_vec(),
    };
    match matching {
        MatchingType::Exact => selected,
        MatchingType::Sha256 => digest(&selected).to_vec(),
    }
}

/// Builds a TLSA record asserting `cert` (the common DANE-EE(3)/SPKI(1)/
/// SHA-256(1) profile operators publish).
pub fn tlsa_for_cert(cert: &SimCert) -> TlsaRecord {
    TlsaRecord {
        usage: 3,
        selector: 1,
        matching_type: 1,
        data: association_data(cert, Selector::Spki, MatchingType::Sha256),
    }
}

/// Validates a presented chain against TLSA records.
///
/// `zone_signed` is the DNSSEC gate; `roots`/`now`/`host` feed the PKIX
/// check required by usages 0/1 (and by DANE-TA for chain validity).
pub fn validate_dane(
    tlsa_records: &[TlsaRecord],
    chain: &[SimCert],
    zone_signed: bool,
    host: &DomainName,
    now: SimInstant,
    roots: &TrustStore,
) -> Result<CertUsage, DaneError> {
    if !zone_signed {
        return Err(DaneError::ZoneNotSigned);
    }
    if tlsa_records.is_empty() {
        return Err(DaneError::NoTlsaRecords);
    }
    let Some(leaf) = chain.first() else {
        return Err(DaneError::NoCertificate);
    };
    let mut any_usable = false;
    let mut pkix_failure: Option<pkix::CertError> = None;
    for record in tlsa_records {
        let (Some(usage), Some(selector), Some(matching)) = (
            CertUsage::from_u8(record.usage),
            Selector::from_u8(record.selector),
            MatchingType::from_u8(record.matching_type),
        ) else {
            continue; // unusable record: skip (RFC 7672 §3.1)
        };
        any_usable = true;
        match usage {
            CertUsage::DaneEe => {
                // Matches the leaf; PKIX validity and name checks are
                // explicitly NOT applied (RFC 7672 §3.1.1).
                if association_data(leaf, selector, matching) == record.data {
                    return Ok(CertUsage::DaneEe);
                }
            }
            CertUsage::DaneTa => {
                // Matches any issuer certificate in the chain; the chain
                // below the anchor must be internally valid.
                let anchored = chain[1..]
                    .iter()
                    .any(|c| association_data(c, selector, matching) == record.data);
                if anchored && chain.iter().all(|c| c.signature_valid()) {
                    return Ok(CertUsage::DaneTa);
                }
            }
            CertUsage::PkixEe | CertUsage::PkixTa => {
                let target = if usage == CertUsage::PkixEe {
                    association_data(leaf, selector, matching) == record.data
                } else {
                    chain[1..]
                        .iter()
                        .any(|c| association_data(c, selector, matching) == record.data)
                };
                if target {
                    match validate_chain(chain, host, now, roots) {
                        Ok(()) => return Ok(usage),
                        Err(e) => pkix_failure = Some(e),
                    }
                }
            }
        }
    }
    if !any_usable {
        return Err(DaneError::NoUsableRecords);
    }
    if let Some(e) = pkix_failure {
        return Err(DaneError::PkixFailed(e));
    }
    Err(DaneError::NoMatch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbase::SimDate;
    use pkix::authority::{self_signed_leaf, CertAuthority};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn now() -> SimInstant {
        SimDate::ymd(2024, 9, 29).at_midnight()
    }

    fn window() -> (SimInstant, SimInstant) {
        (
            SimDate::ymd(2023, 1, 1).at_midnight(),
            SimDate::ymd(2026, 1, 1).at_midnight(),
        )
    }

    #[test]
    fn tlsa_owner_name() {
        assert_eq!(
            tlsa_name(&n("mx.example.com")).to_string(),
            "_25._tcp.mx.example.com"
        );
    }

    #[test]
    fn dane_ee_matches_even_self_signed() {
        // The key property: DANE-EE works with self-signed certificates —
        // no web PKI needed (the paper's "superior security" argument from
        // operators).
        let (nb, na) = window();
        let cert = self_signed_leaf(&[n("mx.example.com")], nb, na);
        let tlsa = tlsa_for_cert(&cert);
        let verdict = validate_dane(
            &[tlsa],
            &[cert],
            true,
            &n("mx.example.com"),
            now(),
            &TrustStore::empty(),
        );
        assert_eq!(verdict, Ok(CertUsage::DaneEe));
    }

    #[test]
    fn unsigned_zone_blocks_dane() {
        let (nb, na) = window();
        let cert = self_signed_leaf(&[n("mx.example.com")], nb, na);
        let tlsa = tlsa_for_cert(&cert);
        assert_eq!(
            validate_dane(
                &[tlsa],
                &[cert],
                false,
                &n("mx.example.com"),
                now(),
                &TrustStore::empty()
            ),
            Err(DaneError::ZoneNotSigned)
        );
    }

    #[test]
    fn mismatched_key_is_rejected() {
        // Rotated server key without a TLSA update: the DANE failure mode
        // the paper's prior work (Lee et al.) documents.
        let (nb, na) = window();
        let old = self_signed_leaf(&[n("mx.example.com")], nb, na);
        let new = self_signed_leaf(&[n("mx.example.com")], nb, na);
        let tlsa = tlsa_for_cert(&old);
        assert_eq!(
            validate_dane(
                &[tlsa],
                &[new],
                true,
                &n("mx.example.com"),
                now(),
                &TrustStore::empty()
            ),
            Err(DaneError::NoMatch)
        );
    }

    #[test]
    fn dane_ta_anchors_on_intermediate() {
        let (nb, na) = window();
        let mut root = CertAuthority::new_root("DANE Root", nb, na);
        let mut inter = root.issue_intermediate("DANE Inter", nb, na);
        let leaf = inter.issue_leaf(&[n("mx.example.com")], nb, na);
        let tlsa = TlsaRecord {
            usage: 2,
            selector: 0,
            matching_type: 1,
            data: association_data(&inter.cert, Selector::FullCert, MatchingType::Sha256),
        };
        let chain = vec![leaf, inter.cert.clone()];
        let verdict = validate_dane(
            &[tlsa],
            &chain,
            true,
            &n("mx.example.com"),
            now(),
            &TrustStore::empty(),
        );
        assert_eq!(verdict, Ok(CertUsage::DaneTa));
    }

    #[test]
    fn pkix_ee_requires_webpki_too() {
        let (nb, na) = window();
        // Self-signed cert: the TLSA data matches, but usage 1 also needs
        // PKIX validation, which fails.
        let cert = self_signed_leaf(&[n("mx.example.com")], nb, na);
        let tlsa = TlsaRecord {
            usage: 1,
            selector: 1,
            matching_type: 1,
            data: association_data(&cert, Selector::Spki, MatchingType::Sha256),
        };
        let verdict = validate_dane(
            &[tlsa],
            std::slice::from_ref(&cert),
            true,
            &n("mx.example.com"),
            now(),
            &TrustStore::empty(),
        );
        assert!(matches!(verdict, Err(DaneError::PkixFailed(_))));

        // With a proper CA-issued cert it passes.
        let mut root = CertAuthority::new_root("Root", nb, na);
        let mut store = TrustStore::empty();
        store.add_root(&root);
        let good = root.issue_leaf(&[n("mx.example.com")], nb, na);
        let tlsa_good = TlsaRecord {
            usage: 1,
            selector: 1,
            matching_type: 1,
            data: association_data(&good, Selector::Spki, MatchingType::Sha256),
        };
        assert_eq!(
            validate_dane(
                &[tlsa_good],
                &[good],
                true,
                &n("mx.example.com"),
                now(),
                &store
            ),
            Ok(CertUsage::PkixEe)
        );
    }

    #[test]
    fn exact_matching_type() {
        let (nb, na) = window();
        let cert = self_signed_leaf(&[n("mx.example.com")], nb, na);
        let tlsa = TlsaRecord {
            usage: 3,
            selector: 0,
            matching_type: 0,
            data: cert.to_bytes(),
        };
        assert_eq!(
            validate_dane(
                &[tlsa],
                &[cert],
                true,
                &n("mx.example.com"),
                now(),
                &TrustStore::empty()
            ),
            Ok(CertUsage::DaneEe)
        );
    }

    #[test]
    fn unknown_parameter_records_are_skipped() {
        let (nb, na) = window();
        let cert = self_signed_leaf(&[n("mx.example.com")], nb, na);
        let junk = TlsaRecord {
            usage: 9,
            selector: 0,
            matching_type: 0,
            data: vec![1, 2, 3],
        };
        assert_eq!(
            validate_dane(
                std::slice::from_ref(&junk),
                std::slice::from_ref(&cert),
                true,
                &n("mx.example.com"),
                now(),
                &TrustStore::empty()
            ),
            Err(DaneError::NoUsableRecords)
        );
        // A junk record plus a good one: the good one wins.
        let good = tlsa_for_cert(&cert);
        assert_eq!(
            validate_dane(
                &[junk, good],
                &[cert],
                true,
                &n("mx.example.com"),
                now(),
                &TrustStore::empty()
            ),
            Ok(CertUsage::DaneEe)
        );
    }

    #[test]
    fn empty_inputs() {
        let (nb, na) = window();
        let cert = self_signed_leaf(&[n("mx.example.com")], nb, na);
        assert_eq!(
            validate_dane(
                &[],
                std::slice::from_ref(&cert),
                true,
                &n("mx.example.com"),
                now(),
                &TrustStore::empty()
            ),
            Err(DaneError::NoTlsaRecords)
        );
        assert_eq!(
            validate_dane(
                &[tlsa_for_cert(&cert)],
                &[],
                true,
                &n("mx.example.com"),
                now(),
                &TrustStore::empty()
            ),
            Err(DaneError::NoCertificate)
        );
    }
}
