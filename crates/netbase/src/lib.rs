//! Foundation types shared across the `mta-sts-lab` workspace.
//!
//! This crate provides the non-protocol building blocks the measurement
//! study rests on:
//!
//! - [`name`]: DNS domain names with label arithmetic and effective-SLD
//!   computation (needed by the managing-entity heuristics of §4.3.1 of the
//!   paper and the mx-pattern mismatch taxonomy of §4.4);
//! - [`time`]: a proleptic-Gregorian civil date/instant implementation so the
//!   2021-09-09 .. 2024-09-29 measurement timeline can be replayed
//!   deterministically without pulling in a calendar crate;
//! - [`editdist`]: Levenshtein distance (typo detection, edit distance ≤ 3,
//!   §4.4 of the paper);
//! - [`rate`]: a token-bucket rate limiter (the paper rate-limits its DNS
//!   scans to protect small authoritative servers, §3.1);
//! - [`pool`]: a scoped worker pool with contiguous, stable sharding and
//!   in-order merge — the substrate of the deterministic parallel scan
//!   engine;
//! - [`retry`]: clock-agnostic retry policies with deterministic backoff,
//!   so transient network failures are retried before anything is
//!   classified as a misconfiguration;
//! - [`rng`]: deterministic, forkable randomness so every experiment is
//!   reproducible from a single seed.

pub mod editdist;
pub mod name;
pub mod pool;
pub mod rate;
pub mod retry;
pub mod rng;
pub mod time;

pub use editdist::{levenshtein, levenshtein_within};
pub use name::{DomainName, NameError};
pub use pool::{map_sharded, shard_bounds};
pub use rate::TokenBucket;
pub use retry::{AttemptEvent, RetryOutcome, RetryPolicy, RetryVerdict};
pub use rng::DetRng;
pub use time::{Duration, SimDate, SimInstant};
