//! Simulated civil time.
//!
//! The study replays a fixed historical window (2021-09-09 through
//! 2024-09-29, §3.1 of the paper) with weekly DNS snapshots and monthly
//! full-component scans. Experiments must therefore be able to name civil
//! dates, advance them by days/weeks/months, and convert to seconds for
//! policy `max_age` arithmetic — all deterministically and without a system
//! clock.
//!
//! [`SimDate`] is a day-precision civil date backed by a days-since-epoch
//! count (proleptic Gregorian, Howard Hinnant's `days_from_civil`
//! algorithm). [`SimInstant`] is second-precision, used by the sender policy
//! cache where `max_age` is specified in seconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::str::FromStr;

/// Seconds in one civil day.
pub const SECS_PER_DAY: i64 = 86_400;

/// A signed span of time with second precision.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration {
    secs: i64,
}

impl Duration {
    /// A zero-length duration.
    pub const ZERO: Duration = Duration { secs: 0 };

    /// Duration of `secs` seconds.
    pub const fn seconds(secs: i64) -> Duration {
        Duration { secs }
    }

    /// Duration of `mins` minutes.
    pub const fn minutes(mins: i64) -> Duration {
        Duration { secs: mins * 60 }
    }

    /// Duration of `hours` hours.
    pub const fn hours(hours: i64) -> Duration {
        Duration { secs: hours * 3600 }
    }

    /// Duration of `days` civil days.
    pub const fn days(days: i64) -> Duration {
        Duration {
            secs: days * SECS_PER_DAY,
        }
    }

    /// Duration of `weeks` weeks.
    pub const fn weeks(weeks: i64) -> Duration {
        Duration::days(weeks * 7)
    }

    /// Total number of whole seconds.
    pub const fn as_secs(self) -> i64 {
        self.secs
    }

    /// Total number of whole days (truncating).
    pub const fn as_days(self) -> i64 {
        self.secs / SECS_PER_DAY
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration::seconds(self.secs + rhs.secs)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration::seconds(self.secs - rhs.secs)
    }
}

/// A civil date (proleptic Gregorian), day precision.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct SimDate {
    /// Days since 1970-01-01 (may be negative).
    days: i64,
}

/// Day of the week; `Monday` through `Sunday`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Weekday {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl SimDate {
    /// 1970-01-01.
    pub const EPOCH: SimDate = SimDate { days: 0 };

    /// Constructs a date from a civil year/month/day triple.
    ///
    /// # Panics
    ///
    /// Panics if the month or day are outside their civil range (the
    /// experiment timeline is authored in source; invalid literals are bugs).
    pub fn ymd(year: i32, month: u32, day: u32) -> SimDate {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day out of range: {year:04}-{month:02}-{day:02}"
        );
        SimDate {
            days: days_from_civil(year, month, day),
        }
    }

    /// Days since the Unix epoch.
    pub const fn days_since_epoch(self) -> i64 {
        self.days
    }

    /// Builds a date from a days-since-epoch count.
    pub const fn from_days_since_epoch(days: i64) -> SimDate {
        SimDate { days }
    }

    /// The civil (year, month, day) triple.
    pub fn civil(self) -> (i32, u32, u32) {
        civil_from_days(self.days)
    }

    /// Civil year.
    pub fn year(self) -> i32 {
        self.civil().0
    }

    /// Civil month, 1-12.
    pub fn month(self) -> u32 {
        self.civil().1
    }

    /// Civil day of month, 1-31.
    pub fn day(self) -> u32 {
        self.civil().2
    }

    /// Day of week (epoch 1970-01-01 was a Thursday).
    pub fn weekday(self) -> Weekday {
        match self.days.rem_euclid(7) {
            0 => Weekday::Thursday,
            1 => Weekday::Friday,
            2 => Weekday::Saturday,
            3 => Weekday::Sunday,
            4 => Weekday::Monday,
            5 => Weekday::Tuesday,
            _ => Weekday::Wednesday,
        }
    }

    /// The date `n` days later (or earlier for negative `n`).
    pub fn add_days(self, n: i64) -> SimDate {
        SimDate {
            days: self.days + n,
        }
    }

    /// Adds `n` calendar months, clamping the day-of-month to the target
    /// month's length (2024-01-31 + 1 month = 2024-02-29).
    pub fn add_months(self, n: i32) -> SimDate {
        let (y, m, d) = self.civil();
        let total = (y * 12 + (m as i32 - 1)) + n;
        let ny = total.div_euclid(12);
        let nm = (total.rem_euclid(12) + 1) as u32;
        let nd = d.min(days_in_month(ny, nm));
        SimDate::ymd(ny, nm, nd)
    }

    /// Whole days from `earlier` to `self` (negative if `self` is earlier).
    pub fn days_since(self, earlier: SimDate) -> i64 {
        self.days - earlier.days
    }

    /// Midnight (00:00:00) of this date as an instant.
    pub fn at_midnight(self) -> SimInstant {
        SimInstant {
            secs: self.days * SECS_PER_DAY,
        }
    }

    /// Iterator over dates from `self` to `end` inclusive, stepping by
    /// `step_days`. This is how the scanner walks its weekly (7) and the
    /// deployment figures their plotting (varying) cadences.
    pub fn iter_to(self, end: SimDate, step_days: i64) -> DateRange {
        assert!(step_days > 0, "step must be positive");
        DateRange {
            next: self,
            end,
            step_days,
        }
    }
}

impl fmt::Display for SimDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.civil();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl fmt::Debug for SimDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error when parsing a `YYYY-MM-DD` date string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DateParseError(pub String);

impl fmt::Display for DateParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid date (expected YYYY-MM-DD): {:?}", self.0)
    }
}

impl std::error::Error for DateParseError {}

impl FromStr for SimDate {
    type Err = DateParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || DateParseError(s.to_string());
        let mut it = s.split('-');
        let y: i32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let m: u32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let d: u32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if it.next().is_some() || !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
            return Err(err());
        }
        Ok(SimDate::ymd(y, m, d))
    }
}

impl TryFrom<String> for SimDate {
    type Error = DateParseError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        s.parse()
    }
}

impl From<SimDate> for String {
    fn from(d: SimDate) -> String {
        d.to_string()
    }
}

impl Add<Duration> for SimDate {
    type Output = SimDate;
    fn add(self, rhs: Duration) -> SimDate {
        self.add_days(rhs.as_days())
    }
}

/// Inclusive date range iterator, see [`SimDate::iter_to`].
#[derive(Debug, Clone)]
pub struct DateRange {
    next: SimDate,
    end: SimDate,
    step_days: i64,
}

impl Iterator for DateRange {
    type Item = SimDate;

    fn next(&mut self) -> Option<SimDate> {
        if self.next > self.end {
            return None;
        }
        let out = self.next;
        self.next = self.next.add_days(self.step_days);
        Some(out)
    }
}

/// A second-precision simulated instant, used wherever `max_age` (seconds)
/// interacts with the timeline.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct SimInstant {
    /// Seconds since the Unix epoch.
    secs: i64,
}

impl SimInstant {
    /// Seconds since the Unix epoch.
    pub const fn unix_secs(self) -> i64 {
        self.secs
    }

    /// Builds an instant from seconds since the Unix epoch.
    pub const fn from_unix_secs(secs: i64) -> SimInstant {
        SimInstant { secs }
    }

    /// The civil date this instant falls on.
    pub fn date(self) -> SimDate {
        SimDate {
            days: self.secs.div_euclid(SECS_PER_DAY),
        }
    }

    /// Elapsed time since `earlier` (negative if `self` is earlier).
    pub fn since(self, earlier: SimInstant) -> Duration {
        Duration::seconds(self.secs - earlier.secs)
    }
}

impl Add<Duration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: Duration) -> SimInstant {
        SimInstant {
            secs: self.secs + rhs.as_secs(),
        }
    }
}

impl AddAssign<Duration> for SimInstant {
    fn add_assign(&mut self, rhs: Duration) {
        self.secs += rhs.as_secs();
    }
}

impl Sub<Duration> for SimInstant {
    type Output = SimInstant;
    fn sub(self, rhs: Duration) -> SimInstant {
        SimInstant {
            secs: self.secs - rhs.as_secs(),
        }
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let date = self.date();
        let tod = self.secs.rem_euclid(SECS_PER_DAY);
        write!(
            f,
            "{date}T{:02}:{:02}:{:02}Z",
            tod / 3600,
            (tod % 3600) / 60,
            tod % 60
        )
    }
}

impl fmt::Debug for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// True for Gregorian leap years.
pub fn is_leap_year(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Number of days in the given civil month.
pub fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap_year(y) => 29,
        2 => 28,
        _ => panic!("month out of range: {m}"),
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for a days-since-1970-01-01 count (Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(SimDate::EPOCH.civil(), (1970, 1, 1));
        assert_eq!(SimDate::ymd(1970, 1, 1).days_since_epoch(), 0);
        assert_eq!(SimDate::EPOCH.weekday(), Weekday::Thursday);
    }

    #[test]
    fn known_dates() {
        // The paper's measurement window endpoints.
        assert_eq!(SimDate::ymd(2021, 9, 9).days_since_epoch(), 18_879);
        assert_eq!(SimDate::ymd(2024, 9, 29).to_string(), "2024-09-29");
        // Leap day.
        assert_eq!(SimDate::ymd(2024, 2, 29).add_days(1).civil(), (2024, 3, 1));
    }

    #[test]
    fn civil_roundtrip_many_days() {
        // Every day across the measurement window plus margin round-trips.
        let start = SimDate::ymd(2020, 1, 1).days_since_epoch();
        let end = SimDate::ymd(2026, 1, 1).days_since_epoch();
        for days in start..=end {
            let d = SimDate::from_days_since_epoch(days);
            let (y, m, dd) = d.civil();
            assert_eq!(SimDate::ymd(y, m, dd).days_since_epoch(), days);
        }
    }

    #[test]
    fn parse_and_display() {
        let d: SimDate = "2024-06-08".parse().unwrap();
        assert_eq!(d, SimDate::ymd(2024, 6, 8));
        assert_eq!(d.to_string(), "2024-06-08");
        assert!("2024-13-01".parse::<SimDate>().is_err());
        assert!("2023-02-29".parse::<SimDate>().is_err());
        assert!("2024-1".parse::<SimDate>().is_err());
        assert!("nonsense".parse::<SimDate>().is_err());
    }

    #[test]
    fn month_arithmetic_clamps() {
        assert_eq!(
            SimDate::ymd(2024, 1, 31).add_months(1),
            SimDate::ymd(2024, 2, 29)
        );
        assert_eq!(
            SimDate::ymd(2023, 1, 31).add_months(1),
            SimDate::ymd(2023, 2, 28)
        );
        assert_eq!(
            SimDate::ymd(2023, 11, 7).add_months(2),
            SimDate::ymd(2024, 1, 7)
        );
        assert_eq!(
            SimDate::ymd(2024, 3, 15).add_months(-3),
            SimDate::ymd(2023, 12, 15)
        );
    }

    #[test]
    fn weekly_range_covers_study_window() {
        let start = SimDate::ymd(2021, 9, 9);
        let end = SimDate::ymd(2024, 9, 29);
        let snaps: Vec<_> = start.iter_to(end, 7).collect();
        assert_eq!(snaps.first().copied(), Some(start));
        assert!(snaps.last().copied().unwrap() <= end);
        // ~36 months of weekly snapshots.
        assert_eq!(snaps.len(), 160);
        for w in snaps.windows(2) {
            assert_eq!(w[1].days_since(w[0]), 7);
        }
    }

    #[test]
    fn instants_and_durations() {
        let t0 = SimDate::ymd(2024, 1, 1).at_midnight();
        let t1 = t0 + Duration::days(1) + Duration::hours(2) + Duration::seconds(30);
        assert_eq!(t1.to_string(), "2024-01-02T02:00:30Z");
        assert_eq!(t1.since(t0).as_secs(), 86_400 + 7_200 + 30);
        assert_eq!(t1.date(), SimDate::ymd(2024, 1, 2));
        assert_eq!((t1 - Duration::hours(3)).date(), SimDate::ymd(2024, 1, 1));
    }

    #[test]
    fn max_age_style_arithmetic() {
        // A policy cached at t0 with max_age 604800 (one week) expires
        // exactly one week later.
        let t0 = SimDate::ymd(2024, 5, 1).at_midnight();
        let max_age = Duration::seconds(604_800);
        let expiry = t0 + max_age;
        assert_eq!(expiry.date(), SimDate::ymd(2024, 5, 8));
    }

    #[test]
    fn weekdays() {
        assert_eq!(SimDate::ymd(2024, 9, 29).weekday(), Weekday::Sunday);
        assert_eq!(SimDate::ymd(2024, 1, 23).weekday(), Weekday::Tuesday);
    }
}
