//! Levenshtein edit distance.
//!
//! §4.4 of the paper classifies an mx-pattern mismatch as a *typographical
//! error* when the pattern is within edit distance ≤ 3 of one of the
//! domain's actual MX hosts (and the mismatch is not a TLD mismatch). The
//! scanner evaluates this over every (pattern, MX) pair, so a banded
//! early-exit variant is provided alongside the plain distance.

/// Classic Levenshtein distance between two byte strings (unit costs for
/// insert / delete / substitute), O(|a|·|b|) time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Keep the shorter string on the column axis to minimize the row buffer.
    let (cols, rows) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut prev: Vec<usize> = (0..=cols.len()).collect();
    let mut cur = vec![0usize; cols.len() + 1];
    for (i, &rc) in rows.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cc) in cols.iter().enumerate() {
            let sub = prev[j] + usize::from(rc != cc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[cols.len()]
}

/// Returns `Some(distance)` if `levenshtein(a, b) <= bound`, `None`
/// otherwise, using the banded algorithm (only cells within `bound` of the
/// diagonal are computed) for an early exit on distant strings.
pub fn levenshtein_within(a: &str, b: &str, bound: usize) -> Option<usize> {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > bound {
        return None;
    }
    if n == 0 {
        return Some(m); // m <= bound given the check above
    }
    if m == 0 {
        return Some(n);
    }
    const INF: usize = usize::MAX / 2;
    let mut prev = vec![INF; m + 1];
    let mut cur = vec![INF; m + 1];
    for (j, p) in prev.iter_mut().enumerate().take(bound.min(m) + 1) {
        *p = j;
    }
    for i in 1..=n {
        // Band of columns within `bound` of the diagonal.
        let lo = i.saturating_sub(bound).max(1);
        let hi = (i + bound).min(m);
        cur[lo - 1] = if lo == 1 { i } else { INF };
        let mut row_min = cur[lo - 1];
        for j in lo..=hi {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            let del = prev[j] + 1;
            let ins = cur[j - 1] + 1;
            cur[j] = sub.min(del).min(ins);
            row_min = row_min.min(cur[j]);
        }
        if hi < m {
            cur[hi + 1..].fill(INF);
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[m];
    (d <= bound).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn typo_examples_from_mx_hosts() {
        // Typical typos the paper attributes to manual pattern entry.
        assert_eq!(levenshtein("mx1.example.com", "mx.example.com"), 1);
        assert_eq!(levenshtein("mail.example.com", "mial.example.com"), 2);
        assert!(levenshtein("mx.google.com", "mx.example.com") > 3);
    }

    #[test]
    fn bounded_agrees_with_exact() {
        let words = [
            "",
            "a",
            "mail",
            "mial",
            "mx1.example.com",
            "mx.example.com",
            "aspmx.l.google.com",
            "alt1.aspmx.l.google.com",
            "smtp.se",
            "smtp.de",
        ];
        for a in words {
            for b in words {
                let d = levenshtein(a, b);
                for bound in 0..6 {
                    let got = levenshtein_within(a, b, bound);
                    if d <= bound {
                        assert_eq!(got, Some(d), "a={a:?} b={b:?} bound={bound}");
                    } else {
                        assert_eq!(got, None, "a={a:?} b={b:?} bound={bound}");
                    }
                }
            }
        }
    }

    #[test]
    fn bound_zero_is_equality() {
        assert_eq!(levenshtein_within("abc", "abc", 0), Some(0));
        assert_eq!(levenshtein_within("abc", "abd", 0), None);
    }
}
