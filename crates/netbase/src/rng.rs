//! Deterministic, forkable randomness.
//!
//! Every experiment in this repository must be exactly reproducible from a
//! single seed, *and* insensitive to the order in which independent entities
//! are generated (adding a new analysis must not reshuffle the ecosystem).
//! [`DetRng`] therefore derives per-entity substreams by hashing a textual
//! path (e.g. `"ecosystem/domain/example.com/adoption"`) together with the
//! root seed, rather than drawing sequentially from one global stream.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG factory rooted at a single `u64` seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetRng {
    seed: u64,
}

impl DetRng {
    /// Creates a factory from a root seed.
    pub fn new(seed: u64) -> DetRng {
        DetRng { seed }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives a child factory for a labelled sub-scope. Children derived
    /// with different labels are statistically independent; the same label
    /// always yields the same child.
    pub fn fork(&self, label: &str) -> DetRng {
        DetRng {
            seed: fnv1a64(label.as_bytes(), self.seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// A concrete RNG stream for this scope.
    pub fn stream(&self) -> SmallRng {
        // Mix the seed through SplitMix64 so nearby seeds give unrelated
        // streams.
        SmallRng::seed_from_u64(splitmix64(self.seed))
    }

    /// Convenience: a stream for the sub-scope `label`.
    pub fn stream_for(&self, label: &str) -> SmallRng {
        self.fork(label).stream()
    }

    /// Bernoulli draw in the sub-scope `label`.
    pub fn chance(&self, label: &str, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
        self.stream_for(label).gen::<f64>() < p
    }

    /// Uniform integer in `[0, n)` in the sub-scope `label`.
    pub fn index(&self, label: &str, n: usize) -> usize {
        assert!(n > 0, "index over empty range");
        self.stream_for(label).gen_range(0..n)
    }

    /// Picks an item from `weights` (relative, not necessarily normalized)
    /// in the sub-scope `label`, returning its index.
    pub fn weighted_index(&self, label: &str, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.stream_for(label).gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0, "negative weight");
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

/// FNV-1a with a caller-supplied basis, used for label→seed derivation.
fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis ^ 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let root = DetRng::new(42);
        let a: Vec<u64> = {
            let mut s = root.stream_for("domain/x");
            (0..8).map(|_| s.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut s = root.stream_for("domain/x");
            (0..8).map(|_| s.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let root = DetRng::new(42);
        let a: u64 = root.stream_for("domain/x").gen();
        let b: u64 = root.stream_for("domain/y").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = DetRng::new(1).stream_for("x").gen();
        let b: u64 = DetRng::new(2).stream_for("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn fork_is_hierarchical() {
        let root = DetRng::new(7);
        let via_fork: u64 = root.fork("eco").stream_for("d1").gen();
        let again: u64 = root.fork("eco").stream_for("d1").gen();
        assert_eq!(via_fork, again);
        let sibling: u64 = root.fork("eco2").stream_for("d1").gen();
        assert_ne!(via_fork, sibling);
    }

    #[test]
    fn chance_extremes() {
        let root = DetRng::new(3);
        assert!(!root.chance("never", 0.0));
        assert!(root.chance("always", 1.0));
    }

    #[test]
    fn chance_is_calibrated() {
        let root = DetRng::new(11);
        let hits = (0..10_000)
            .filter(|i| root.chance(&format!("c/{i}"), 0.3))
            .count();
        // Binomial(10_000, 0.3): mean 3000, sd ≈ 46. Allow ±5 sd.
        assert!((2770..=3230).contains(&hits), "hits={hits}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let root = DetRng::new(5);
        let mut counts = [0usize; 3];
        for i in 0..30_000 {
            counts[root.weighted_index(&format!("w/{i}"), &[1.0, 2.0, 7.0])] += 1;
        }
        assert!((2400..=3600).contains(&counts[0]), "{counts:?}");
        assert!((5200..=6800).contains(&counts[1]), "{counts:?}");
        assert!((20000..=22000).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn index_bounds() {
        let root = DetRng::new(9);
        for i in 0..100 {
            let v = root.index(&format!("i/{i}"), 4);
            assert!(v < 4);
        }
    }
}
