//! Retry policies with deterministic backoff.
//!
//! The paper's scanner runs for 31–36 months against flaky real-world
//! infrastructure; transient failures (greylisting, intermittent SERVFAIL,
//! connection resets) must be retried before anything is classified as a
//! misconfiguration, or the measured rates inflate (cf. "No Need for Black
//! Chambers" and "Lazy Gatekeepers", PAPERS.md). [`RetryPolicy`] captures
//! the retry discipline — attempt cap, exponential backoff with seeded
//! jitter, per-attempt timeout, total deadline — and, like
//! [`crate::TokenBucket`], is driven entirely by explicit [`SimInstant`]
//! timestamps so the same policy runs in simulated and wall-clock time.

use crate::rng::DetRng;
use crate::time::{Duration, SimInstant};
use rand::Rng;

/// A retry discipline. All durations are in simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (≥ 1; 1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub initial_backoff: Duration,
    /// Multiplier applied to the backoff after each failure.
    pub multiplier: u32,
    /// Upper bound on any single backoff delay.
    pub max_backoff: Duration,
    /// Jitter as a fraction of the raw delay, in `[0, 1]`: each delay is
    /// stretched by up to this factor, deterministically per seed.
    pub jitter: f64,
    /// Simulated cost charged to each *failed* attempt (a failed fetch
    /// occupies the scanner until its timeout fires).
    pub attempt_timeout: Duration,
    /// Budget for the whole retry sequence, measured from the first
    /// attempt's start. No backoff sleep may cross this deadline.
    pub total_deadline: Duration,
}

impl RetryPolicy {
    /// One attempt, no waiting: the seed scanner's behaviour.
    pub fn single_shot() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            initial_backoff: Duration::ZERO,
            multiplier: 2,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
            attempt_timeout: Duration::ZERO,
            total_deadline: Duration::seconds(i64::MAX / 4),
        }
    }

    /// A production-shaped discipline: `attempts` tries, exponential
    /// doubling from 2 s capped at 60 s, 50% jitter, 5 s attempt timeout,
    /// 10 min total deadline.
    pub fn resilient(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts.max(1),
            initial_backoff: Duration::seconds(2),
            multiplier: 2,
            max_backoff: Duration::seconds(60),
            jitter: 0.5,
            attempt_timeout: Duration::seconds(5),
            total_deadline: Duration::minutes(10),
        }
    }

    /// The backoff delays this policy sleeps before attempts `2..=n`,
    /// jittered deterministically from `rng`/`label`.
    ///
    /// The sequence is non-decreasing by construction (each jittered delay
    /// is clamped below by its predecessor) and capped at `max_backoff`,
    /// so a jitter draw can never shrink a later delay below an earlier
    /// one — the property the backoff proptest pins down.
    pub fn backoff_delays(&self, rng: &DetRng, label: &str) -> Vec<Duration> {
        let scope = rng.fork("retry-backoff").fork(label);
        let cap = self.max_backoff.as_secs().max(0);
        let mut delays = Vec::new();
        let mut prev: i64 = 0;
        let mut raw = self.initial_backoff.as_secs().max(0) as f64;
        for attempt in 2..=self.max_attempts {
            let u: f64 = scope.stream_for(&format!("attempt/{attempt}")).gen();
            let jittered = (raw * (1.0 + self.jitter * u)).ceil() as i64;
            let delay = jittered.max(prev).min(cap);
            delays.push(Duration::seconds(delay));
            prev = delay;
            raw = (raw * f64::from(self.multiplier)).min(1e15);
        }
        delays
    }

    /// The worst-case instants at which attempts `1..=max_attempts` would
    /// start if every attempt failed transiently: attempt 1 starts at
    /// `start`, and each later attempt starts one `attempt_timeout` plus
    /// one backoff delay after its predecessor.
    ///
    /// All arithmetic saturates, so extreme `multiplier`/`max_backoff`
    /// combinations (or a `start` near the representable edge) can never
    /// overflow — the schedule just pins at the horizon while staying
    /// monotone non-decreasing. The `total_deadline` is *not* applied
    /// here: this is the uncut ladder, an upper bound on when each
    /// attempt could begin (the outbound queue uses it to size retry
    /// windows before committing to a run).
    pub fn attempt_schedule(
        &self,
        rng: &DetRng,
        label: &str,
        start: SimInstant,
    ) -> Vec<SimInstant> {
        let delays = self.backoff_delays(rng, label);
        let timeout = self.attempt_timeout.as_secs().max(0);
        let mut out = Vec::with_capacity(self.max_attempts as usize);
        let mut at = start.unix_secs();
        for attempt in 1..=self.max_attempts {
            out.push(SimInstant::from_unix_secs(at));
            if let Some(delay) = delays.get(attempt as usize - 1) {
                at = at
                    .saturating_add(timeout)
                    .saturating_add(delay.as_secs().max(0));
            }
        }
        out
    }

    /// Drives `op` under this policy, starting at `start`.
    ///
    /// `op` receives the current simulated instant and the 1-based attempt
    /// number. A failed attempt is charged [`RetryPolicy::attempt_timeout`],
    /// then — if the error is transient per `is_transient`, attempts
    /// remain, and the next backoff sleep fits inside
    /// [`RetryPolicy::total_deadline`] — the clock advances by the backoff
    /// delay and `op` runs again.
    pub fn run<T, E>(
        &self,
        rng: &DetRng,
        label: &str,
        start: SimInstant,
        is_transient: impl FnMut(&E) -> bool,
        op: impl FnMut(SimInstant, u32) -> Result<T, E>,
    ) -> RetryOutcome<T, E> {
        self.run_observed(rng, label, start, is_transient, op, |_| {})
    }

    /// [`RetryPolicy::run`] with an attempt observer: `observe` is called
    /// once per completed attempt, in order, with the attempt's outcome
    /// and — on failure — the backoff sleep taken before the next try.
    ///
    /// This is the hook taxonomy attempt accounting and telemetry hang
    /// off: callers accumulate whatever view they need (the scanner
    /// derives its per-stage `StageAttempts` and retry counters here)
    /// instead of each call site re-deriving it from [`RetryOutcome`]
    /// fields. The observer runs *after* the attempt and all of its
    /// clock/jitter arithmetic, so it cannot perturb the retry schedule:
    /// the outcome is byte-identical whether or not an observer is
    /// attached.
    pub fn run_observed<T, E>(
        &self,
        rng: &DetRng,
        label: &str,
        start: SimInstant,
        mut is_transient: impl FnMut(&E) -> bool,
        mut op: impl FnMut(SimInstant, u32) -> Result<T, E>,
        mut observe: impl FnMut(AttemptEvent),
    ) -> RetryOutcome<T, E> {
        assert!(self.max_attempts >= 1, "max_attempts must be at least 1");
        let deadline = start + self.total_deadline;
        let delays = self.backoff_delays(rng, label);
        let mut now = start;
        let mut attempts = 0;
        loop {
            attempts += 1;
            match op(now, attempts) {
                Ok(value) => {
                    observe(AttemptEvent::Success { attempt: attempts });
                    let verdict = if attempts == 1 {
                        RetryVerdict::FirstTry
                    } else {
                        RetryVerdict::RecoveredTransient
                    };
                    return RetryOutcome {
                        result: Ok(value),
                        attempts,
                        finished_at: now,
                        verdict,
                    };
                }
                Err(e) => {
                    now += self.attempt_timeout;
                    let transient = is_transient(&e);
                    let next_delay = delays.get(attempts as usize - 1).copied();
                    let (verdict, stop) = if !transient {
                        (RetryVerdict::Persistent, true)
                    } else {
                        match next_delay {
                            None => (RetryVerdict::Exhausted, true),
                            Some(d) if now + d > deadline => (RetryVerdict::Exhausted, true),
                            Some(_) => (RetryVerdict::Exhausted, false),
                        }
                    };
                    observe(AttemptEvent::Failure {
                        attempt: attempts,
                        transient,
                        backoff: if stop { None } else { next_delay },
                    });
                    if stop {
                        return RetryOutcome {
                            result: Err(e),
                            attempts,
                            finished_at: now,
                            verdict,
                        };
                    }
                    now += next_delay.expect("checked above");
                }
            }
        }
    }
}

/// One completed attempt, as delivered to a
/// [`RetryPolicy::run_observed`] observer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptEvent {
    /// The attempt succeeded (attempt > 1 means a transient recovered).
    Success {
        /// 1-based attempt number.
        attempt: u32,
    },
    /// The attempt failed.
    Failure {
        /// 1-based attempt number.
        attempt: u32,
        /// Whether the error was classed transient (retry-worthy).
        transient: bool,
        /// The backoff slept before the next attempt; `None` when the
        /// sequence stops here (persistent error, attempts exhausted, or
        /// the deadline leaves no room to sleep).
        backoff: Option<Duration>,
    },
}

/// How a retry sequence ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryVerdict {
    /// Succeeded on the first attempt.
    FirstTry,
    /// Failed at least once, then succeeded: a recovered transient.
    RecoveredTransient,
    /// Ended on a non-transient error (no point retrying).
    Persistent,
    /// Still failing transiently when attempts or the deadline ran out.
    Exhausted,
}

/// The result of driving an operation under a [`RetryPolicy`].
#[derive(Debug, Clone)]
pub struct RetryOutcome<T, E> {
    /// The final attempt's result.
    pub result: Result<T, E>,
    /// Number of attempts made (≥ 1).
    pub attempts: u32,
    /// The simulated instant the sequence ended at.
    pub finished_at: SimInstant,
    /// How the sequence ended.
    pub verdict: RetryVerdict,
}

impl<T, E> RetryOutcome<T, E> {
    /// Retries issued beyond the first attempt.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }

    /// Whether a transient failure was observed and later recovered.
    pub fn recovered(&self) -> bool {
        self.verdict == RetryVerdict::RecoveredTransient
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDate;

    fn t0() -> SimInstant {
        SimDate::ymd(2024, 1, 1).at_midnight()
    }

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            initial_backoff: Duration::seconds(2),
            multiplier: 2,
            max_backoff: Duration::seconds(60),
            jitter: 0.5,
            attempt_timeout: Duration::seconds(5),
            total_deadline: Duration::minutes(10),
        }
    }

    #[test]
    fn first_try_success_makes_no_retries() {
        let out = policy().run(
            &DetRng::new(1),
            "x",
            t0(),
            |_: &&str| true,
            |_, _| Ok::<_, &str>(7),
        );
        assert_eq!(out.result, Ok(7));
        assert_eq!(out.attempts, 1);
        assert_eq!(out.verdict, RetryVerdict::FirstTry);
        assert_eq!(out.finished_at, t0());
    }

    #[test]
    fn transient_then_success_recovers() {
        let out = policy().run(
            &DetRng::new(1),
            "x",
            t0(),
            |_: &&str| true,
            |_, attempt| {
                if attempt < 3 {
                    Err("flaky")
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(out.result, Ok(3));
        assert_eq!(out.attempts, 3);
        assert!(out.recovered());
        // Two failed attempts cost two timeouts plus two backoff sleeps.
        assert!(out.finished_at > t0() + Duration::seconds(10));
    }

    #[test]
    fn persistent_error_stops_immediately() {
        let out = policy().run(
            &DetRng::new(1),
            "x",
            t0(),
            |e: &&str| *e != "fatal",
            |_, _| Err::<u32, _>("fatal"),
        );
        assert_eq!(out.attempts, 1);
        assert_eq!(out.verdict, RetryVerdict::Persistent);
    }

    #[test]
    fn transient_exhaustion_uses_all_attempts() {
        let out = policy().run(
            &DetRng::new(1),
            "x",
            t0(),
            |_: &&str| true,
            |_, _| Err::<u32, _>("flaky"),
        );
        assert_eq!(out.attempts, 4);
        assert_eq!(out.verdict, RetryVerdict::Exhausted);
    }

    #[test]
    fn deadline_cuts_retries_short() {
        let mut p = policy();
        p.total_deadline = Duration::seconds(6); // one timeout + no room to sleep
        let out = p.run(
            &DetRng::new(1),
            "x",
            t0(),
            |_: &&str| true,
            |_, _| Err::<u32, _>("flaky"),
        );
        assert!(out.attempts < 4, "attempts={}", out.attempts);
        assert_eq!(out.verdict, RetryVerdict::Exhausted);
    }

    #[test]
    fn delays_are_deterministic_and_monotone() {
        let p = policy();
        let a = p.backoff_delays(&DetRng::new(9), "domain/example.com");
        let b = p.backoff_delays(&DetRng::new(9), "domain/example.com");
        assert_eq!(a, b);
        let c = p.backoff_delays(&DetRng::new(9), "domain/other.org");
        assert_ne!(a, c, "different labels should jitter differently");
        assert_eq!(a.len(), 3);
        for w in a.windows(2) {
            assert!(w[1] >= w[0], "{a:?}");
        }
        for d in &a {
            assert!(*d <= p.max_backoff);
        }
    }

    #[test]
    fn observer_sees_every_attempt_in_order() {
        let mut events = Vec::new();
        let out = policy().run_observed(
            &DetRng::new(1),
            "x",
            t0(),
            |_: &&str| true,
            |_, attempt| {
                if attempt < 3 {
                    Err("flaky")
                } else {
                    Ok(attempt)
                }
            },
            |ev| events.push(ev),
        );
        assert_eq!(out.attempts, 3);
        assert_eq!(events.len(), 3);
        // Two failures with a backoff each, then the recovery.
        for (i, ev) in events.iter().take(2).enumerate() {
            match ev {
                AttemptEvent::Failure {
                    attempt,
                    transient,
                    backoff,
                } => {
                    assert_eq!(*attempt as usize, i + 1);
                    assert!(*transient);
                    assert!(backoff.is_some(), "non-final failure sleeps");
                }
                other => panic!("expected failure, got {other:?}"),
            }
        }
        assert_eq!(events[2], AttemptEvent::Success { attempt: 3 });
    }

    #[test]
    fn observer_final_failure_has_no_backoff() {
        let mut events = Vec::new();
        let out = policy().run_observed(
            &DetRng::new(1),
            "x",
            t0(),
            |e: &&str| *e != "fatal",
            |_, _| Err::<u32, _>("fatal"),
            |ev| events.push(ev),
        );
        assert_eq!(out.verdict, RetryVerdict::Persistent);
        assert_eq!(
            events,
            vec![AttemptEvent::Failure {
                attempt: 1,
                transient: false,
                backoff: None
            }]
        );
    }

    #[test]
    fn observer_does_not_change_outcome() {
        // The same op under run and run_observed lands on identical
        // attempt counts, verdicts and finish instants.
        let drive = |observed: bool| {
            let op = |_: SimInstant, attempt: u32| {
                if attempt < 4 {
                    Err("flaky")
                } else {
                    Ok(attempt)
                }
            };
            if observed {
                policy().run_observed(&DetRng::new(3), "y", t0(), |_| true, op, |_| {})
            } else {
                policy().run(&DetRng::new(3), "y", t0(), |_| true, op)
            }
        };
        let plain = drive(false);
        let observed = drive(true);
        assert_eq!(plain.attempts, observed.attempts);
        assert_eq!(plain.verdict, observed.verdict);
        assert_eq!(plain.finished_at, observed.finished_at);
    }

    #[test]
    fn attempt_schedule_matches_delays_and_timeout() {
        let p = policy();
        let rng = DetRng::new(4);
        let delays = p.backoff_delays(&rng, "z");
        let schedule = p.attempt_schedule(&rng, "z", t0());
        assert_eq!(schedule.len(), p.max_attempts as usize);
        assert_eq!(schedule[0], t0());
        for (i, pair) in schedule.windows(2).enumerate() {
            assert_eq!(pair[1], pair[0] + p.attempt_timeout + delays[i]);
        }
    }

    #[test]
    fn attempt_schedule_saturates_instead_of_overflowing() {
        let p = RetryPolicy {
            max_attempts: 8,
            initial_backoff: Duration::seconds(i64::MAX / 2),
            multiplier: u32::MAX,
            max_backoff: Duration::seconds(i64::MAX),
            jitter: 1.0,
            attempt_timeout: Duration::seconds(i64::MAX / 2),
            total_deadline: Duration::seconds(i64::MAX),
        };
        let schedule = p.attempt_schedule(&DetRng::new(1), "edge", t0());
        assert_eq!(schedule.len(), 8);
        for pair in schedule.windows(2) {
            assert!(pair[0] <= pair[1], "must stay monotone: {schedule:?}");
        }
        assert_eq!(
            *schedule.last().unwrap(),
            SimInstant::from_unix_secs(i64::MAX)
        );
    }

    #[test]
    fn single_shot_never_retries() {
        let out = RetryPolicy::single_shot().run(
            &DetRng::new(1),
            "x",
            t0(),
            |_: &&str| true,
            |_, _| Err::<u32, _>("flaky"),
        );
        assert_eq!(out.attempts, 1);
        assert_eq!(out.verdict, RetryVerdict::Exhausted);
    }
}
