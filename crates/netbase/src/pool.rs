//! A small scoped worker pool for deterministic data parallelism.
//!
//! The scanner's throughput story (ROADMAP: "as fast as the hardware
//! allows") needs fan-out, but every experiment in this workspace is also
//! contractually reproducible from a seed. The pool therefore offers one
//! carefully-shaped primitive, [`map_sharded`]: the input slice is split
//! into contiguous, stable shards, each shard runs on its own scoped
//! `std::thread`, and the outputs are merged back **in input order** —
//! so the result is exactly what a sequential `iter().map()` would have
//! produced, for any thread count, as long as `f` is a pure function of
//! its `(index, item)` arguments.
//!
//! No work-stealing, no channels, no external crates: shard boundaries
//! depend only on `(len, shards)`, never on timing, which is what makes
//! the parallel scan engine's byte-identity guarantee provable rather
//! than probabilistic.

/// Contiguous shard boundaries for `len` items over `shards` workers:
/// `ceil`/`floor` balanced (sizes differ by at most one, larger shards
/// first), covering `0..len` exactly, in order. A pure function of its
/// arguments — the shard layout is part of the determinism contract.
pub fn shard_bounds(len: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1).min(len.max(1));
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut lo = 0;
    for s in 0..shards {
        let size = base + usize::from(s < extra);
        out.push((lo, lo + size));
        lo += size;
    }
    out
}

/// Applies `f(index, &item)` to every item of `items` across up to
/// `threads` scoped worker threads and returns the results in input
/// order.
///
/// Determinism contract: if `f` is a pure function of `(index, item)`
/// (it may read shared state, but the value it returns must not depend
/// on what other invocations are doing concurrently), the returned
/// vector is identical for every `threads` value, including `1`.
///
/// `threads <= 1` (or a single-item input) runs inline on the caller's
/// thread with zero spawn overhead. A panic inside `f` is re-raised on
/// the caller's thread after the other shards finish their joins.
///
/// Telemetry: each worker accumulates into its own thread-local `obsv`
/// collector; when its shard finishes, the collector is harvested and
/// merged into the caller's collector **in shard order** alongside the
/// result merge. The telemetry side-channel therefore follows exactly
/// the same deterministic merge discipline as the data — and when
/// telemetry is disabled, the harvest is a single atomic load per shard.
pub fn map_sharded<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        // Inline path: f runs on the caller's thread, so its telemetry
        // already lands in the caller's collector.
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let bounds = shard_bounds(items.len(), threads);
    let shard_outputs: Vec<(Vec<R>, Option<obsv::Collector>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| {
                let f = &f;
                scope.spawn(move || {
                    let results = items[lo..hi]
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(lo + j, t))
                        .collect::<Vec<R>>();
                    (results, obsv::harvest())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for (shard, telemetry) in shard_outputs {
        out.extend(shard);
        if let Some(collector) = telemetry {
            obsv::absorb(&collector);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_cover_exactly_and_balance() {
        for len in 0..40usize {
            for shards in 1..12usize {
                let b = shard_bounds(len, shards);
                assert!(!b.is_empty());
                assert_eq!(b.first().unwrap().0, 0);
                assert_eq!(b.last().unwrap().1, len);
                let mut sizes = Vec::new();
                for w in b.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                }
                for (lo, hi) in &b {
                    assert!(lo <= hi);
                    sizes.push(hi - lo);
                }
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "balanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn bounds_never_exceed_len() {
        // More shards than items degrades to one shard per item.
        let b = shard_bounds(3, 16);
        assert_eq!(b, vec![(0, 1), (1, 2), (2, 3)]);
        // The empty input still yields a (single, empty) shard.
        assert_eq!(shard_bounds(0, 4), vec![(0, 0)]);
    }

    #[test]
    fn map_preserves_input_order_for_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let want: Vec<(usize, u64)> = items.iter().enumerate().map(|(i, x)| (i, x * 3)).collect();
        for threads in [1, 2, 3, 8, 16, 300] {
            let got = map_sharded(threads, &items, |i, x| (i, x * 3));
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_input() {
        let got: Vec<u32> = map_sharded(8, &[] as &[u32], |_, x| *x);
        assert!(got.is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            map_sharded(4, &items, |i, x| {
                assert!(i != 40, "boom");
                *x
            })
        });
        assert!(result.is_err());
    }
}
