//! Token-bucket rate limiting.
//!
//! The paper's scans are explicitly rate-limited "to mitigate the risk of
//! overloading small DNS authoritative servers" (§3.1) and the ethics
//! appendix reiterates low scan rates. The scanner uses this bucket both in
//! simulated time (deterministic experiments) and against the wall clock
//! (live-socket examples), so the bucket is driven by explicit timestamps
//! rather than an internal clock.

use crate::time::{Duration, SimInstant};

/// A classic token bucket: capacity `burst`, refilled at `rate_per_sec`
/// tokens per second. Each admitted operation consumes one token.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Maximum number of tokens the bucket can hold.
    burst: f64,
    /// Refill rate, tokens per second.
    rate_per_sec: f64,
    /// Current token level.
    tokens: f64,
    /// Timestamp of the last refill.
    last: SimInstant,
}

impl TokenBucket {
    /// Creates a bucket that admits `rate_per_sec` sustained operations per
    /// second with bursts of up to `burst`. The bucket starts full.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not strictly positive or `burst` is zero.
    pub fn new(rate_per_sec: f64, burst: u32, now: SimInstant) -> TokenBucket {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        assert!(burst > 0, "burst must be at least 1");
        TokenBucket {
            burst: f64::from(burst),
            rate_per_sec,
            tokens: f64::from(burst),
            last: now,
        }
    }

    /// Advances the refill clock to `now`. Timestamps older than the last
    /// observation are clamped (callers with independent clocks may hand
    /// the bucket a stale instant).
    fn refill(&mut self, now: SimInstant) {
        let elapsed = now.since(self.last).as_secs();
        if elapsed > 0 {
            self.tokens = (self.tokens + elapsed as f64 * self.rate_per_sec).min(self.burst);
            self.last = now;
        }
    }

    /// `now`, clamped to be no earlier than the bucket's clock.
    fn clamp(&self, now: SimInstant) -> SimInstant {
        now.max(self.last)
    }

    /// Attempts to take one token at time `now`; returns `true` on success.
    pub fn try_acquire(&mut self, now: SimInstant) -> bool {
        let now = self.clamp(now);
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Time to wait from `now` until one token is available (zero if one is
    /// available immediately). Does not consume a token.
    ///
    /// Non-monotonic timestamps are clamped like in [`Self::try_acquire`]:
    /// a `now` older than the bucket's clock never rewinds the refill state,
    /// and the returned wait is measured from the caller's `now` — it
    /// includes the skew back up to the bucket's clock, so `now + wait` is
    /// always an instant at which a token really is available.
    pub fn time_until_available(&mut self, now: SimInstant) -> Duration {
        let clamped = self.clamp(now);
        self.refill(clamped);
        if self.tokens >= 1.0 {
            // A present token is admissible at any timestamp.
            Duration::ZERO
        } else {
            // Tokens accrue on the bucket's clock: availability is at
            // `clamped + deficit/rate`, so a stale caller also waits out
            // the skew.
            let deficit = 1.0 - self.tokens;
            clamped.since(now) + Duration::seconds((deficit / self.rate_per_sec).ceil() as i64)
        }
    }

    /// Acquires one token, returning the instant at which the operation may
    /// proceed (≥ `now`). This is the simulated-time path: the caller adopts
    /// the returned instant as its new "now".
    pub fn acquire_at(&mut self, now: SimInstant) -> SimInstant {
        let now = self.clamp(now);
        let wait = self.time_until_available(now);
        let at = now + wait;
        let ok = self.try_acquire(at);
        debug_assert!(ok, "token must be available after computed wait");
        at
    }

    /// Current (fractional) token level, for tests and instrumentation.
    pub fn level(&self) -> f64 {
        self.tokens
    }

    /// Plans the next `n` admission instants starting from `now`, exactly
    /// as `n` sequential [`Self::acquire_at`] calls would produce them
    /// (the bucket state advances identically).
    ///
    /// This is the parallel scanner's per-shard clock: the full admission
    /// timeline is planned once on the single logical bucket, then each
    /// shard worker consumes its contiguous slice. Because the plan is a
    /// pure function of the bucket's state and `n`, every thread count
    /// observes the same throttled timeline — which is what keeps the
    /// parallel scan byte-identical to the sequential one.
    pub fn plan_admissions(&mut self, now: SimInstant, n: usize) -> Vec<SimInstant> {
        let mut at = now;
        (0..n)
            .map(|_| {
                at = self.acquire_at(at);
                at
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDate;

    fn t0() -> SimInstant {
        SimDate::ymd(2024, 1, 1).at_midnight()
    }

    #[test]
    fn burst_then_throttle() {
        let mut b = TokenBucket::new(1.0, 5, t0());
        // The initial burst admits 5 back-to-back operations...
        for _ in 0..5 {
            assert!(b.try_acquire(t0()));
        }
        // ...then the bucket is empty.
        assert!(!b.try_acquire(t0()));
        // One second later exactly one more token has accrued.
        let t1 = t0() + Duration::seconds(1);
        assert!(b.try_acquire(t1));
        assert!(!b.try_acquire(t1));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(10.0, 3, t0());
        assert!(b.try_acquire(t0()));
        // A long idle period refills to the cap, not beyond.
        let later = t0() + Duration::hours(1);
        b.refill(later);
        assert!(b.level() <= 3.0 + f64::EPSILON);
        assert!(b.try_acquire(later));
        assert!(b.try_acquire(later));
        assert!(b.try_acquire(later));
        assert!(!b.try_acquire(later));
    }

    #[test]
    fn acquire_at_advances_time() {
        let mut b = TokenBucket::new(0.5, 1, t0()); // one token per 2s
        let first = b.acquire_at(t0());
        assert_eq!(first, t0()); // initial burst
        let second = b.acquire_at(first);
        assert_eq!(second.since(first).as_secs(), 2);
        let third = b.acquire_at(second);
        assert_eq!(third.since(second).as_secs(), 2);
    }

    #[test]
    fn sustained_rate_is_respected() {
        // Admitting 100 operations at 1 op/s (burst 1) takes ~99 seconds
        // (the first is free from the initial burst). Simulated durations
        // have whole-second granularity, so sub-second waits round up.
        let mut b = TokenBucket::new(1.0, 1, t0());
        let mut now = t0();
        for _ in 0..100 {
            now = b.acquire_at(now);
        }
        let elapsed = now.since(t0()).as_secs();
        assert!((98..=100).contains(&elapsed), "elapsed={elapsed}");
    }

    #[test]
    fn planned_admissions_match_sequential_acquires() {
        let mut plan_bucket = TokenBucket::new(2.0, 3, t0());
        let mut seq_bucket = TokenBucket::new(2.0, 3, t0());
        let plan = plan_bucket.plan_admissions(t0(), 50);
        let mut now = t0();
        let seq: Vec<SimInstant> = (0..50)
            .map(|_| {
                now = seq_bucket.acquire_at(now);
                now
            })
            .collect();
        assert_eq!(plan, seq);
        // Both buckets end in the same state.
        assert_eq!(plan_bucket.level(), seq_bucket.level());
        assert_eq!(
            plan_bucket.acquire_at(*plan.last().unwrap()),
            seq_bucket.acquire_at(*seq.last().unwrap())
        );
        // The empty plan is a no-op.
        assert!(TokenBucket::new(1.0, 1, t0())
            .plan_admissions(t0(), 0)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = TokenBucket::new(0.0, 1, t0());
    }

    #[test]
    fn non_monotonic_timestamps_are_clamped() {
        // The bucket's clock starts at t1; a caller with an independent,
        // *earlier* clock must neither rewind the refill state nor be told
        // a wait that undershoots real availability.
        let t1 = t0() + Duration::seconds(100);
        let mut b = TokenBucket::new(1.0, 1, t1);
        assert!(b.try_acquire(t1));
        // Stale queries do not mutate the level or the refill clock.
        let stale = t0();
        let level_before = b.level();
        let wait = b.time_until_available(stale);
        assert_eq!(b.level(), level_before);
        // The wait is measured from the stale `now`: it spans the 100 s of
        // skew plus the 1 s refill, so `stale + wait` really has a token.
        assert_eq!(wait.as_secs(), 101);
        assert!(b.try_acquire(stale + wait));
        // A stale acquire_at never travels backwards in time either.
        let at = b.acquire_at(stale);
        assert!(at >= t1, "acquire_at returned {at:?} before bucket clock");
        // And with a token present, a stale caller is admitted immediately.
        let mut fresh = TokenBucket::new(1.0, 2, t1);
        assert_eq!(fresh.time_until_available(stale), Duration::ZERO);
        assert!(fresh.try_acquire(stale));
    }
}
