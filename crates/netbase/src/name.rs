//! DNS domain names.
//!
//! A [`DomainName`] is a sequence of lowercase LDH (letters, digits, hyphen)
//! labels, stored root-last (`["mail", "example", "com"]` for
//! `mail.example.com`). Names are always handled in their fully-qualified,
//! canonical (lowercase, no trailing dot) form.
//!
//! Besides parsing and display, the type carries the label arithmetic the
//! measurement pipeline needs: parent/ancestor walks, subdomain tests,
//! prefixing (`_mta-sts.` and `mta-sts.` labels from RFC 8461), and
//! effective-SLD extraction used by the paper's managing-entity heuristics
//! (§4.3.1) and mismatch taxonomy (§4.4).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Maximum length of a single label in octets (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a full domain name in presentation format.
pub const MAX_NAME_LEN: usize = 253;

/// Errors produced when parsing a domain name from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// The input was empty (or consisted solely of a root dot).
    Empty,
    /// A label was empty (consecutive dots).
    EmptyLabel,
    /// A label exceeded [`MAX_LABEL_LEN`] octets.
    LabelTooLong(String),
    /// The whole name exceeded [`MAX_NAME_LEN`] octets.
    NameTooLong,
    /// A label contained a character outside `[a-z0-9-_*]`.
    ///
    /// `_` is permitted because service labels such as `_mta-sts` and
    /// `_smtp._tls` are first-class citizens in this study; `*` is permitted
    /// only as a full leftmost label (wildcards in MX patterns and
    /// certificate names).
    BadChar { label: String, ch: char },
    /// A label began or ended with a hyphen.
    HyphenEdge(String),
    /// `*` appeared somewhere other than as the entire leftmost label.
    BadWildcard(String),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::Empty => write!(f, "empty domain name"),
            NameError::EmptyLabel => write!(f, "empty label in domain name"),
            NameError::LabelTooLong(l) => write!(f, "label too long: {l:?}"),
            NameError::NameTooLong => write!(f, "domain name exceeds {MAX_NAME_LEN} octets"),
            NameError::BadChar { label, ch } => {
                write!(f, "invalid character {ch:?} in label {label:?}")
            }
            NameError::HyphenEdge(l) => write!(f, "label starts or ends with hyphen: {l:?}"),
            NameError::BadWildcard(l) => write!(f, "misplaced wildcard in label {l:?}"),
        }
    }
}

impl std::error::Error for NameError {}

/// A canonical, lowercase DNS domain name.
///
/// ```
/// use netbase::DomainName;
///
/// let mx: DomainName = "MX1.Example.COM".parse().unwrap();
/// assert_eq!(mx.to_string(), "mx1.example.com");
/// assert_eq!(mx.label_count(), 3);
/// assert!(mx.is_subdomain_of(&"example.com".parse().unwrap()));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct DomainName {
    /// Labels in presentation order: `labels[0]` is the leftmost label.
    ///
    /// Shared, not owned: the longitudinal drivers clone every adopted
    /// domain's name once per snapshot date, so `clone()` must be a
    /// reference-count bump rather than a fresh allocation per label.
    labels: Arc<[String]>,
}

impl DomainName {
    /// Parses a name from presentation format, canonicalizing to lowercase
    /// and stripping at most one trailing root dot.
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Err(NameError::Empty);
        }
        if s.len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong);
        }
        let mut labels = Vec::new();
        for (i, raw) in s.split('.').enumerate() {
            if raw.is_empty() {
                return Err(NameError::EmptyLabel);
            }
            if raw.len() > MAX_LABEL_LEN {
                return Err(NameError::LabelTooLong(raw.to_string()));
            }
            let label = raw.to_ascii_lowercase();
            if label.contains('*') {
                if label != "*" || i != 0 {
                    return Err(NameError::BadWildcard(label));
                }
            } else {
                for ch in label.chars() {
                    if !(ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '-' || ch == '_') {
                        return Err(NameError::BadChar { label, ch });
                    }
                }
                if label.starts_with('-') || label.ends_with('-') {
                    return Err(NameError::HyphenEdge(label));
                }
            }
            labels.push(label);
        }
        Ok(DomainName {
            labels: labels.into(),
        })
    }

    /// Builds a name from pre-validated labels (used by the wire decoder).
    ///
    /// The labels must already be canonical; this is checked in debug builds.
    pub fn from_labels(labels: Vec<String>) -> Self {
        debug_assert!(labels
            .iter()
            .all(|l| !l.is_empty() && l.len() <= MAX_LABEL_LEN && *l == l.to_ascii_lowercase()));
        DomainName {
            labels: labels.into(),
        }
    }

    /// Labels in presentation order (leftmost first).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels, e.g. 3 for `mail.example.com`.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The leftmost label.
    pub fn leftmost(&self) -> &str {
        &self.labels[0]
    }

    /// The rightmost label, i.e. the TLD.
    pub fn tld(&self) -> &str {
        self.labels.last().expect("names are non-empty")
    }

    /// Whether the leftmost label is `*` (a wildcard pattern, not a hostname).
    pub fn is_wildcard(&self) -> bool {
        self.labels[0] == "*"
    }

    /// The name with its leftmost label removed, or `None` at the TLD.
    pub fn parent(&self) -> Option<DomainName> {
        if self.labels.len() <= 1 {
            None
        } else {
            Some(DomainName {
                labels: self.labels[1..].to_vec().into(),
            })
        }
    }

    /// Returns a new name with `label` prepended, e.g.
    /// `example.com -> _mta-sts.example.com`.
    pub fn prefixed(&self, label: &str) -> Result<DomainName, NameError> {
        let mut s = String::with_capacity(label.len() + 1 + self.to_string().len());
        s.push_str(label);
        s.push('.');
        s.push_str(&self.to_string());
        DomainName::parse(&s)
    }

    /// True if `self` is equal to or a subdomain of `other`.
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..] == other.labels[..]
    }

    /// True if `self` is a *strict* subdomain of `other`.
    pub fn is_strict_subdomain_of(&self, other: &DomainName) -> bool {
        self.labels.len() > other.labels.len() && self.is_subdomain_of(other)
    }

    /// The effective second-level domain: the registrable part of the name.
    ///
    /// This study covers `.com`, `.net`, `.org` and `.se`, all of which
    /// register directly at the second level, plus a short built-in list of
    /// multi-label public suffixes so provider names like `example.co.uk`
    /// appearing in synthetic data do not confuse the entity heuristics.
    ///
    /// Returns `None` for names that are themselves a public suffix.
    pub fn effective_sld(&self) -> Option<DomainName> {
        let suffix_len = self.public_suffix_len();
        if self.labels.len() <= suffix_len {
            return None;
        }
        let start = self.labels.len() - suffix_len - 1;
        Some(DomainName {
            labels: self.labels[start..].to_vec().into(),
        })
    }

    /// Number of labels occupied by the public suffix of this name.
    fn public_suffix_len(&self) -> usize {
        /// Multi-label public suffixes relevant to synthetic populations.
        const TWO_LABEL_SUFFIXES: &[(&str, &str)] = &[
            ("co", "uk"),
            ("org", "uk"),
            ("ac", "uk"),
            ("com", "au"),
            ("co", "jp"),
            ("com", "br"),
        ];
        if self.labels.len() >= 2 {
            let n = self.labels.len();
            let pair = (self.labels[n - 2].as_str(), self.labels[n - 1].as_str());
            if TWO_LABEL_SUFFIXES.contains(&pair) {
                return 2;
            }
        }
        1
    }

    /// True if two names share the same effective SLD (the paper's test for
    /// "self-managed": an MX or NS under the queried domain's own SLD).
    pub fn same_esld(&self, other: &DomainName) -> bool {
        match (self.effective_sld(), other.effective_sld()) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Matches this hostname against an MX pattern per RFC 8461 §4.1:
    /// a pattern `*.example.com` matches any single additional leftmost
    /// label; otherwise matching is exact (case-insensitive — both sides are
    /// already canonical lowercase).
    pub fn matches_pattern(&self, pattern: &DomainName) -> bool {
        if pattern.is_wildcard() {
            // `*` matches exactly one label.
            if self.labels.len() != pattern.labels.len() {
                return false;
            }
            self.labels[1..] == pattern.labels[1..]
        } else {
            self == pattern
        }
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.labels.join("."))
    }
}

impl fmt::Debug for DomainName {
    /// Delegates to `Display`; domain names read better unquoted in test
    /// output and structured logs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for DomainName {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl TryFrom<String> for DomainName {
    type Error = NameError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        DomainName::parse(&s)
    }
}

impl From<DomainName> for String {
    fn from(d: DomainName) -> String {
        d.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn parses_and_canonicalizes() {
        assert_eq!(n("Example.COM").to_string(), "example.com");
        assert_eq!(n("example.com.").to_string(), "example.com");
        assert_eq!(n("a.b.c.d").label_count(), 4);
    }

    #[test]
    fn accepts_service_labels() {
        assert_eq!(n("_mta-sts.example.com").leftmost(), "_mta-sts");
        assert_eq!(n("_smtp._tls.example.com").labels()[1], "_tls");
    }

    #[test]
    fn rejects_bad_names() {
        assert_eq!(DomainName::parse(""), Err(NameError::Empty));
        assert_eq!(DomainName::parse("."), Err(NameError::Empty));
        assert_eq!(DomainName::parse("a..b"), Err(NameError::EmptyLabel));
        assert!(matches!(
            DomainName::parse("exa mple.com"),
            Err(NameError::BadChar { .. })
        ));
        assert!(matches!(
            DomainName::parse("-bad.com"),
            Err(NameError::HyphenEdge(_))
        ));
        assert!(matches!(
            DomainName::parse("bad-.com"),
            Err(NameError::HyphenEdge(_))
        ));
        let long_label = "a".repeat(64);
        assert!(matches!(
            DomainName::parse(&format!("{long_label}.com")),
            Err(NameError::LabelTooLong(_))
        ));
        let long_name = format!("{}.com", vec!["abcdefgh"; 40].join("."));
        assert_eq!(DomainName::parse(&long_name), Err(NameError::NameTooLong));
    }

    #[test]
    fn wildcard_placement() {
        assert!(n("*.example.com").is_wildcard());
        assert!(matches!(
            DomainName::parse("mail.*.com"),
            Err(NameError::BadWildcard(_))
        ));
        assert!(matches!(
            DomainName::parse("*x.example.com"),
            Err(NameError::BadWildcard(_))
        ));
    }

    #[test]
    fn subdomain_relations() {
        assert!(n("mail.example.com").is_subdomain_of(&n("example.com")));
        assert!(n("example.com").is_subdomain_of(&n("example.com")));
        assert!(!n("example.com").is_strict_subdomain_of(&n("example.com")));
        assert!(n("a.b.example.com").is_strict_subdomain_of(&n("example.com")));
        assert!(!n("badexample.com").is_subdomain_of(&n("example.com")));
        assert!(!n("example.com").is_subdomain_of(&n("mail.example.com")));
    }

    #[test]
    fn parent_walk() {
        let d = n("a.b.c");
        let p = d.parent().unwrap();
        assert_eq!(p.to_string(), "b.c");
        assert_eq!(p.parent().unwrap().to_string(), "c");
        assert_eq!(p.parent().unwrap().parent(), None);
    }

    #[test]
    fn prefixing() {
        assert_eq!(
            n("example.com").prefixed("_mta-sts").unwrap().to_string(),
            "_mta-sts.example.com"
        );
        assert!(n("example.com").prefixed("bad label").is_err());
    }

    #[test]
    fn effective_sld() {
        assert_eq!(
            n("mail.example.com").effective_sld().unwrap(),
            n("example.com")
        );
        assert_eq!(n("example.com").effective_sld().unwrap(), n("example.com"));
        assert_eq!(n("com").effective_sld(), None);
        assert_eq!(
            n("x.y.example.co.uk").effective_sld().unwrap(),
            n("example.co.uk")
        );
        assert_eq!(n("co.uk").effective_sld(), None);
        assert!(n("mx.foo.se").same_esld(&n("www.foo.se")));
        assert!(!n("mx.foo.se").same_esld(&n("mx.bar.se")));
    }

    #[test]
    fn pattern_matching_rfc8461() {
        // Exact match.
        assert!(n("mx1.example.com").matches_pattern(&n("mx1.example.com")));
        // Wildcard matches exactly one extra label.
        assert!(n("mx1.example.com").matches_pattern(&n("*.example.com")));
        assert!(!n("a.mx1.example.com").matches_pattern(&n("*.example.com")));
        // Wildcard does not match the apex itself.
        assert!(!n("example.com").matches_pattern(&n("*.example.com")));
        // Non-wildcard pattern requires exact equality.
        assert!(!n("mx2.example.com").matches_pattern(&n("mx1.example.com")));
    }

    #[test]
    fn serde_roundtrip() {
        let d = n("mx.example.org");
        let j = serde_json_roundtrip(&d);
        assert_eq!(d, j);
    }

    fn serde_json_roundtrip(d: &DomainName) -> DomainName {
        // Manual mini-roundtrip through the String representation used by
        // serde (the crate avoids a serde_json dev-dependency here).
        DomainName::try_from(String::from(d.clone())).unwrap()
    }
}
