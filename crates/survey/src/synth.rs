//! Deterministic respondent synthesis.
//!
//! §7.2 reports absolute counts, so the synthesizer assigns answers by
//! quota rather than sampling: the released dataset always reproduces the
//! paper's marginals exactly, while a seed permutes which (anonymous)
//! respondent carries which answer — the joint structure the paper does
//! not constrain.

use crate::schema::{
    AccountsBucket, Bottleneck, DeployMotivation, ManagementDifficulty, NotDeployedReason,
    PolicyHostManagement, Respondent, UpdateOrder, WhichProtocol,
};
use netbase::DetRng;
use rand::seq::SliceRandom;

/// Total respondents who engaged with at least one question.
pub const RESPONDENTS: usize = 117;

/// Figure 11's per-bucket totals (92 respondents; 22 under 10 accounts,
/// 36 over 500).
pub const ACCOUNTS_TOTALS: [(AccountsBucket, usize); 5] = [
    (AccountsBucket::Under10, 22),
    (AccountsBucket::From10To100, 18),
    (AccountsBucket::From100To500, 16),
    (AccountsBucket::From500To1k, 10),
    (AccountsBucket::Over1k, 26),
];

/// Figure 11's per-bucket deployment overlay (sums to the 50 deployers).
pub const ACCOUNTS_DEPLOYED: [usize; 5] = [10, 9, 9, 6, 16];

/// Synthesizes the 117-respondent dataset.
///
/// The assignment is laid out in respondent order so the survey's skip
/// logic holds (non-hearers answer nothing further; deployer-only pages
/// only among deployers), then shuffled by `seed` for release.
pub fn synthesize(seed: u64) -> Vec<Respondent> {
    let mut r: Vec<Respondent> = vec![Respondent::default(); RESPONDENTS];

    // Page 3: 94 answered familiarity; indices 0..89 yes, 89..94 no.
    for (i, resp) in r.iter_mut().enumerate().take(94) {
        resp.heard_of_mtasts = Some(i < 89);
    }
    // Page 4: of the 89 hearers, 88 answered deployment; 50 yes.
    for (i, resp) in r.iter_mut().enumerate().take(88) {
        resp.deployed_mtasts = Some(i < 50);
    }

    // Page 2: accounts — 92 respondents, allocated so the deployment
    // overlay of Figure 11 holds. Deployers first (indices 0..50), then
    // non-deployers/others.
    {
        let mut deployed_quota = ACCOUNTS_DEPLOYED;
        let mut total_quota: Vec<(AccountsBucket, usize)> = ACCOUNTS_TOTALS.to_vec();
        let mut give = |resp: &mut Respondent, deployer: bool| {
            for (bi, (bucket, left)) in total_quota.iter_mut().enumerate() {
                if *left == 0 {
                    continue;
                }
                if deployer {
                    if deployed_quota[bi] == 0 {
                        continue;
                    }
                    deployed_quota[bi] -= 1;
                }
                *left -= 1;
                resp.accounts = Some(*bucket);
                return true;
            }
            false
        };
        let mut assigned = 0;
        for (i, resp) in r.iter_mut().enumerate() {
            if assigned >= 92 {
                break;
            }
            let deployer = i < 50;
            if give(resp, deployer) {
                assigned += 1;
            }
        }
    }

    // Deployer-only pages (indices 0..50).
    let motivations: Vec<DeployMotivation> = quota(&[
        (DeployMotivation::PreventDowngrade, 34), // 80.9% of 42
        (DeployMotivation::TrustWebPki, 3),
        (DeployMotivation::DaneTooHard, 3),
        (DeployMotivation::ProviderReputation, 2),
    ]);
    for (resp, m) in r.iter_mut().take(42).zip(motivations) {
        resp.motivation = Some(m);
    }
    // Separate Likert-derived booleans (41 answered each).
    for (i, resp) in r.iter_mut().enumerate().take(41) {
        resp.customer_demand = Some(i < 13); // 13 of 41 (31.7%)
        resp.regulation_driven = Some((13..27).contains(&i)); // 14 of 41 (34.1%)
    }
    let bottlenecks: Vec<Bottleneck> = quota(&[
        (Bottleneck::OperationalComplexity, 21), // 48.8% of 43
        (Bottleneck::DaneIsBetter, 17),          // 39.5%
        (Bottleneck::NoNeed, 5),                 // 11.6%
    ]);
    for (resp, b) in r.iter_mut().take(43).zip(bottlenecks) {
        resp.bottleneck = Some(b);
    }
    let difficulties: Vec<ManagementDifficulty> = quota(&[
        (ManagementDifficulty::PolicyUpdates, 11),  // 26.8% of 41
        (ManagementDifficulty::HttpsPolicyFile, 8), // 19.5%
        (ManagementDifficulty::SmtpCertificates, 9),
        (ManagementDifficulty::DnsRecords, 8),
        (ManagementDifficulty::OptingOut, 5),
    ]);
    for (resp, d) in r.iter_mut().take(41).zip(difficulties) {
        resp.management_difficulty = Some(d);
    }
    let orders: Vec<UpdateOrder> = quota(&[
        (UpdateOrder::NeverUpdated, 15), // 35.7% of 42
        (UpdateOrder::TxtFirst, 10),     // 23.8%
        (UpdateOrder::PolicyFirst, 9),
        (UpdateOrder::DontKnow, 8),
    ]);
    for (resp, o) in r.iter_mut().take(42).zip(orders) {
        resp.update_order = Some(o);
    }
    // Page 7 (44 deployers answered): outsourced vs self-managed.
    for (i, resp) in r.iter_mut().enumerate().take(44) {
        resp.policy_host = Some(if i % 3 == 0 {
            PolicyHostManagement::Outsourced
        } else {
            PolicyHostManagement::SelfManaged
        });
    }

    // Non-deployer page (indices 50..88): 33 of 38 answered.
    let reasons: Vec<NotDeployedReason> = quota(&[
        (NotDeployedReason::UsesDane, 15),      // 45.4% of 33
        (NotDeployedReason::TooComplicated, 9), // 27.2%
        (NotDeployedReason::NoNeed, 5),
        (NotDeployedReason::DontUnderstand, 4),
    ]);
    for (resp, reason) in r.iter_mut().skip(50).take(33).zip(reasons) {
        resp.not_deployed_reason = Some(reason);
    }

    // DANE pages: 79 answered familiarity (index 78 is the one "no").
    for (i, resp) in r.iter_mut().enumerate().take(79) {
        resp.heard_of_dane = Some(i != 78);
    }
    // Among the 78 DANE-familiar: 26 serve no TLSA; 10 lack DNSSEC
    // support; 70 answered the comparison (51 DANE, 11 balanced, 8
    // MTA-STS — 72.8% DANE).
    for (i, resp) in r.iter_mut().enumerate().take(78) {
        if i == 78 {
            continue;
        }
        resp.no_tlsa = Some(i < 26);
        resp.dnssec_unsupported = Some((26..36).contains(&i));
    }
    let protocols: Vec<WhichProtocol> = quota(&[
        (WhichProtocol::Dane, 51),
        (WhichProtocol::Balanced, 11),
        (WhichProtocol::MtaSts, 8),
    ]);
    for (resp, p) in r
        .iter_mut()
        .enumerate()
        .filter(|(i, _)| *i != 78)
        .map(|(_, r)| r)
        .take(70)
        .zip(protocols)
    {
        resp.better_protocol = Some(p);
    }

    // Page 13: outbound validation (60 answered; 21 yes).
    for (i, resp) in r.iter_mut().enumerate().take(60) {
        resp.validates_outbound = Some(i < 21);
    }

    // Release order: shuffle so respondent identity carries no structure.
    let mut rng = DetRng::new(seed).stream_for("survey-release-order");
    r.shuffle(&mut rng);
    r
}

/// Expands (value, count) pairs into a flat vector.
fn quota<T: Copy>(pairs: &[(T, usize)]) -> Vec<T> {
    pairs
        .iter()
        .flat_map(|(v, n)| std::iter::repeat_n(*v, *n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        assert_eq!(synthesize(1), synthesize(1));
        assert_ne!(synthesize(1), synthesize(2));
    }

    #[test]
    fn skip_logic_holds() {
        let data = synthesize(3);
        for resp in &data {
            // Nobody unaware of MTA-STS answers deployment questions.
            if resp.heard_of_mtasts == Some(false) {
                assert!(resp.deployed_mtasts.is_none());
                assert!(resp.bottleneck.is_none());
            }
            // Deployment-page answers only from deployers.
            if resp.bottleneck.is_some() || resp.motivation.is_some() {
                assert_eq!(resp.deployed_mtasts, Some(true));
            }
            // Not-deployed reasons only from non-deployers.
            if resp.not_deployed_reason.is_some() {
                assert_eq!(resp.deployed_mtasts, Some(false));
            }
        }
    }

    #[test]
    fn headline_counts_match_section72() {
        let data = synthesize(3);
        assert_eq!(data.len(), RESPONDENTS);
        let heard_answered = data.iter().filter(|r| r.heard_of_mtasts.is_some()).count();
        let heard_yes = data
            .iter()
            .filter(|r| r.heard_of_mtasts == Some(true))
            .count();
        assert_eq!((heard_answered, heard_yes), (94, 89));
        let deployed_answered = data.iter().filter(|r| r.deployed_mtasts.is_some()).count();
        let deployed_yes = data
            .iter()
            .filter(|r| r.deployed_mtasts == Some(true))
            .count();
        assert_eq!((deployed_answered, deployed_yes), (88, 50));
        let accounts = data.iter().filter(|r| r.accounts.is_some()).count();
        assert_eq!(accounts, 92);
    }
}
