//! `survey` — the operator survey of §7 (questionnaire in Appendix C).
//!
//! The paper surveyed 117 operators recruited from MailOP, NANOG and
//! MESSEU. This crate holds the response schema ([`schema`]), a
//! deterministic synthesizer that reproduces the paper's reported
//! marginals exactly ([`synth`] — quota assignment, not sampling, because
//! §7.2 reports absolute counts), and the statistics functions that
//! compute every number the paper cites ([`stats`]).

pub mod schema;
pub mod stats;
pub mod synth;

pub use schema::{AccountsBucket, PolicyHostManagement, Respondent, UpdateOrder, WhichProtocol};
pub use stats::{compute, SurveyStats};
pub use synth::synthesize;
