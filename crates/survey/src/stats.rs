//! Survey statistics: every number §7.2 reports, computed from responses.

use crate::schema::{
    AccountsBucket, Bottleneck, DeployMotivation, ManagementDifficulty, NotDeployedReason,
    Respondent, UpdateOrder, WhichProtocol,
};
use serde::Serialize;
use std::collections::BTreeMap;

/// A count with its denominator (for "X of N (p%)" reporting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Share {
    /// Respondents matching.
    pub count: u64,
    /// Respondents who answered the question.
    pub answered: u64,
}

impl Share {
    /// Percentage of answered.
    pub fn pct(self) -> f64 {
        100.0 * self.count as f64 / self.answered.max(1) as f64
    }
}

/// The §7.2 statistics.
#[derive(Debug, Clone, Serialize)]
pub struct SurveyStats {
    /// Total respondents.
    pub respondents: u64,
    /// Awareness of MTA-STS (paper: 89/94 = 94.7%).
    pub awareness: Share,
    /// Deployment on the primary domain (50/88 = 56.8%).
    pub deployment: Share,
    /// Figure 11: per-bucket totals and deployed counts.
    pub accounts_histogram: Vec<(AccountsBucket, u64, u64)>,
    /// Downgrade prevention as deployment motivation (34/42 = 80.9%).
    pub motivation_downgrade: Share,
    /// Customer demand drove adoption (13/41 = 31.7%).
    pub customer_demand: Share,
    /// Regulation mandated adoption (14/41 = 34.1%).
    pub regulation: Share,
    /// Operational complexity as the bottleneck (21/43 = 48.8%).
    pub bottleneck_complexity: Share,
    /// "DANE is fundamentally more secure" (17/43 = 39.5%).
    pub bottleneck_dane_better: Share,
    /// Non-deployers using DANE instead (15/33 = 45.4%).
    pub not_deployed_uses_dane: Share,
    /// Non-deployers finding it too complicated (9/33 = 27.2%).
    pub not_deployed_too_complicated: Share,
    /// HTTPS policy file hardest to manage (8/41 = 19.5%).
    pub difficulty_https: Share,
    /// Policy updates hardest (11/41 = 26.8%).
    pub difficulty_updates: Share,
    /// Never updated their policy (15/42 = 35.7%).
    pub never_updated: Share,
    /// Update the TXT record first — the risky order (10/42 = 23.8%).
    pub txt_first: Share,
    /// DANE familiarity (78/79 = 98.7%).
    pub dane_familiarity: Share,
    /// Serve no TLSA record (26/78 = 33.3%).
    pub no_tlsa: Share,
    /// DNS/registrar lacks DNSSEC (10 respondents).
    pub dnssec_unsupported: Share,
    /// DANE judged the better design (51/70 = 72.8%).
    pub dane_superior: Share,
}

fn share<F: Fn(&Respondent) -> Option<bool>>(data: &[Respondent], f: F) -> Share {
    let mut answered = 0;
    let mut count = 0;
    for r in data {
        if let Some(hit) = f(r) {
            answered += 1;
            if hit {
                count += 1;
            }
        }
    }
    Share { count, answered }
}

/// Computes all statistics from a response set.
pub fn compute(data: &[Respondent]) -> SurveyStats {
    let mut histogram: BTreeMap<AccountsBucket, (u64, u64)> = BTreeMap::new();
    for r in data {
        if let Some(bucket) = r.accounts {
            let entry = histogram.entry(bucket).or_default();
            entry.0 += 1;
            if r.deployed_mtasts == Some(true) {
                entry.1 += 1;
            }
        }
    }
    SurveyStats {
        respondents: data.len() as u64,
        awareness: share(data, |r| r.heard_of_mtasts),
        deployment: share(data, |r| r.deployed_mtasts),
        accounts_histogram: AccountsBucket::ALL
            .iter()
            .map(|b| {
                let (total, deployed) = histogram.get(b).copied().unwrap_or((0, 0));
                (*b, total, deployed)
            })
            .collect(),
        motivation_downgrade: share(data, |r| {
            r.motivation
                .map(|m| m == DeployMotivation::PreventDowngrade)
        }),
        customer_demand: share(data, |r| r.customer_demand),
        regulation: share(data, |r| r.regulation_driven),
        bottleneck_complexity: share(data, |r| {
            r.bottleneck.map(|b| b == Bottleneck::OperationalComplexity)
        }),
        bottleneck_dane_better: share(data, |r| {
            r.bottleneck.map(|b| b == Bottleneck::DaneIsBetter)
        }),
        not_deployed_uses_dane: share(data, |r| {
            r.not_deployed_reason
                .map(|x| x == NotDeployedReason::UsesDane)
        }),
        not_deployed_too_complicated: share(data, |r| {
            r.not_deployed_reason
                .map(|x| x == NotDeployedReason::TooComplicated)
        }),
        difficulty_https: share(data, |r| {
            r.management_difficulty
                .map(|d| d == ManagementDifficulty::HttpsPolicyFile)
        }),
        difficulty_updates: share(data, |r| {
            r.management_difficulty
                .map(|d| d == ManagementDifficulty::PolicyUpdates)
        }),
        never_updated: share(data, |r| {
            r.update_order.map(|o| o == UpdateOrder::NeverUpdated)
        }),
        txt_first: share(data, |r| r.update_order.map(|o| o == UpdateOrder::TxtFirst)),
        dane_familiarity: share(data, |r| r.heard_of_dane),
        no_tlsa: share(data, |r| r.no_tlsa),
        dnssec_unsupported: share(data, |r| r.dnssec_unsupported),
        dane_superior: share(data, |r| {
            r.better_protocol.map(|p| p == WhichProtocol::Dane)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize;

    #[test]
    fn reproduces_every_section72_number() {
        let stats = compute(&synthesize(5));
        assert_eq!(stats.respondents, 117);
        // Awareness: 89 of 94 = 94.7%.
        assert_eq!((stats.awareness.count, stats.awareness.answered), (89, 94));
        assert!((stats.awareness.pct() - 94.7).abs() < 0.1);
        // Deployment: 50 of 88 = 56.8%.
        assert_eq!(
            (stats.deployment.count, stats.deployment.answered),
            (50, 88)
        );
        assert!((stats.deployment.pct() - 56.8).abs() < 0.1);
        // Motivation: 34 of 42 = 80.9%.
        assert_eq!(
            (
                stats.motivation_downgrade.count,
                stats.motivation_downgrade.answered
            ),
            (34, 42)
        );
        // Customer demand 13/41 (31.7%), regulation 14/41 (34.1%).
        assert_eq!(
            (stats.customer_demand.count, stats.customer_demand.answered),
            (13, 41)
        );
        assert_eq!(
            (stats.regulation.count, stats.regulation.answered),
            (14, 41)
        );
        // Bottlenecks: 21/43 (48.8%) complexity, 17/43 (39.5%) DANE.
        assert_eq!(
            (
                stats.bottleneck_complexity.count,
                stats.bottleneck_complexity.answered
            ),
            (21, 43)
        );
        assert!((stats.bottleneck_complexity.pct() - 48.8).abs() < 0.1);
        assert_eq!(stats.bottleneck_dane_better.count, 17);
        // Non-deployers: 15/33 DANE (45.4%), 9/33 complicated (27.2%).
        assert_eq!(
            (
                stats.not_deployed_uses_dane.count,
                stats.not_deployed_uses_dane.answered
            ),
            (15, 33)
        );
        assert!((stats.not_deployed_uses_dane.pct() - 45.4).abs() < 0.1);
        assert_eq!(stats.not_deployed_too_complicated.count, 9);
        // Management: 8/41 HTTPS (19.5%), 11/41 updates (26.8%).
        assert_eq!(stats.difficulty_https.count, 8);
        assert_eq!(stats.difficulty_updates.count, 11);
        assert!((stats.difficulty_updates.pct() - 26.8).abs() < 0.1);
        // Updates: 15/42 never (35.7%), 10/42 TXT-first (23.8%).
        assert_eq!(
            (stats.never_updated.count, stats.never_updated.answered),
            (15, 42)
        );
        assert_eq!(stats.txt_first.count, 10);
        // DANE: 78/79 familiar (98.7%), 26/78 no TLSA (33.3%), 10 lack
        // DNSSEC, 51/70 DANE superior (72.8%).
        assert_eq!(
            (
                stats.dane_familiarity.count,
                stats.dane_familiarity.answered
            ),
            (78, 79)
        );
        assert!((stats.dane_familiarity.pct() - 98.7).abs() < 0.1);
        assert_eq!((stats.no_tlsa.count, stats.no_tlsa.answered), (26, 78));
        assert!((stats.no_tlsa.pct() - 33.3).abs() < 0.1);
        assert_eq!(stats.dnssec_unsupported.count, 10);
        assert_eq!(
            (stats.dane_superior.count, stats.dane_superior.answered),
            (51, 70)
        );
        assert!((stats.dane_superior.pct() - 72.8).abs() < 0.2);
    }

    #[test]
    fn figure11_histogram() {
        let stats = compute(&synthesize(5));
        let totals: u64 = stats.accounts_histogram.iter().map(|(_, t, _)| t).sum();
        let deployed: u64 = stats.accounts_histogram.iter().map(|(_, _, d)| d).sum();
        assert_eq!(totals, 92);
        assert_eq!(deployed, 50);
        // 22 under 10 accounts; 36 over 500 (paper's demographic spread).
        assert_eq!(stats.accounts_histogram[0].1, 22);
        let over500: u64 = stats.accounts_histogram[3].1 + stats.accounts_histogram[4].1;
        assert_eq!(over500, 36);
        // Deployment per bucket never exceeds the bucket total.
        for (b, total, deployed) in &stats.accounts_histogram {
            assert!(deployed <= total, "{b:?}");
        }
    }

    #[test]
    fn stats_survive_shuffling() {
        // Different seeds permute respondents but not the statistics.
        let a = compute(&synthesize(1));
        let b = compute(&synthesize(99));
        assert_eq!(a.awareness, b.awareness);
        assert_eq!(a.dane_superior, b.dane_superior);
        assert_eq!(a.accounts_histogram, b.accounts_histogram);
    }
}
