//! The response schema, mirroring Appendix C's questionnaire.
//!
//! Every question is optional (participants could skip), so each field is
//! an `Option`; `None` means the respondent did not reach or answer the
//! question.

use serde::{Deserialize, Serialize};

/// Page 2: number of email accounts managed (Figure 11's x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccountsBucket {
    /// Fewer than 10 accounts.
    Under10,
    /// 10 to 100.
    From10To100,
    /// 100 to 500.
    From100To500,
    /// 500 to 1,000.
    From500To1k,
    /// More than 1,000.
    Over1k,
}

impl AccountsBucket {
    /// All buckets in Figure 11's order.
    pub const ALL: [AccountsBucket; 5] = [
        AccountsBucket::Under10,
        AccountsBucket::From10To100,
        AccountsBucket::From100To500,
        AccountsBucket::From500To1k,
        AccountsBucket::Over1k,
    ];

    /// Axis label.
    pub fn label(self) -> &'static str {
        match self {
            AccountsBucket::Under10 => "~10",
            AccountsBucket::From10To100 => "10 ~ 100",
            AccountsBucket::From100To500 => "100 ~ 500",
            AccountsBucket::From500To1k => "500 ~ 1k",
            AccountsBucket::Over1k => "1k ~",
        }
    }
}

/// Page 5: primary motivation for deploying MTA-STS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeployMotivation {
    /// Prevent downgrade/interception attacks (34 of 42).
    PreventDowngrade,
    /// Web PKI felt more trustworthy than DANE (9).
    TrustWebPki,
    /// DANE's DNSSEC requirement is harder (10).
    DaneTooHard,
    /// Customers asked (13 of 41).
    CustomerDemand,
    /// Regulatory compliance (14).
    Regulation,
    /// Reputation with large providers (5).
    ProviderReputation,
}

/// Page 5/10: the biggest deployment bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bottleneck {
    /// Operational complexity (21 of 43).
    OperationalComplexity,
    /// DANE is the better alternative (17).
    DaneIsBetter,
    /// No need for email encryption (5).
    NoNeed,
}

/// Page 10: why MTA-STS was not deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NotDeployedReason {
    /// Uses DANE instead (15 of 33).
    UsesDane,
    /// Too complicated to deploy/manage (9).
    TooComplicated,
    /// Doesn't understand it (other).
    DontUnderstand,
    /// Understands it but sees no need.
    NoNeed,
}

/// Page 6: the hardest management aspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ManagementDifficulty {
    /// Setting up DNS records.
    DnsRecords,
    /// Configuring the HTTPS policy file (8 of 41).
    HttpsPolicyFile,
    /// PKIX certificates on the SMTP server.
    SmtpCertificates,
    /// Managing policy updates (11).
    PolicyUpdates,
    /// Opting out.
    OptingOut,
}

/// Page 6: policy update ordering practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateOrder {
    /// TXT record first — the risky order (10 of 42).
    TxtFirst,
    /// HTTPS policy body first — the standard's order (recommended).
    PolicyFirst,
    /// Never updated a policy (15).
    NeverUpdated,
    /// Automated / outsourced / unsure.
    DontKnow,
}

/// Page 7: who runs the policy host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyHostManagement {
    /// Outsourced to a third-party hosting provider.
    Outsourced,
    /// Self-managed.
    SelfManaged,
}

/// Page 12: which protocol is better for mandating encryption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WhichProtocol {
    /// MTA-STS.
    MtaSts,
    /// Balanced.
    Balanced,
    /// DANE (51 of 79, 72.8%... of 70 substantive answers).
    Dane,
}

/// One survey respondent.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Respondent {
    /// Page 2: accounts managed.
    pub accounts: Option<AccountsBucket>,
    /// Page 3: has heard of MTA-STS (94 answered; 89 yes).
    pub heard_of_mtasts: Option<bool>,
    /// Page 4: deployed MTA-STS on the primary domain (88; 50 yes).
    pub deployed_mtasts: Option<bool>,
    /// Page 5: main deployment motivation.
    pub motivation: Option<DeployMotivation>,
    /// Page 5: adoption driven by customer demand (41 answered; 13 yes).
    pub customer_demand: Option<bool>,
    /// Page 5: adoption mandated by regulation (41 answered; 14 yes).
    pub regulation_driven: Option<bool>,
    /// Page 5: biggest bottleneck (43 answered among deployers).
    pub bottleneck: Option<Bottleneck>,
    /// Page 10: why not deployed (33 answered among non-deployers).
    pub not_deployed_reason: Option<NotDeployedReason>,
    /// Page 6: hardest management aspect (41 answered).
    pub management_difficulty: Option<ManagementDifficulty>,
    /// Page 6: update ordering (42 answered).
    pub update_order: Option<UpdateOrder>,
    /// Page 7: policy host management.
    pub policy_host: Option<PolicyHostManagement>,
    /// Page 11: familiar with DANE (79 answered; 78 yes).
    pub heard_of_dane: Option<bool>,
    /// Page 12: serves no TLSA record (26 of 78).
    pub no_tlsa: Option<bool>,
    /// Page 12: DNS/registrar lacks DNSSEC support (10).
    pub dnssec_unsupported: Option<bool>,
    /// Page 12: the better protocol (51 of 70 said DANE).
    pub better_protocol: Option<WhichProtocol>,
    /// Page 13: validates MTA-STS outbound.
    pub validates_outbound: Option<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_labels_match_figure11() {
        let labels: Vec<&str> = AccountsBucket::ALL.iter().map(|b| b.label()).collect();
        assert_eq!(
            labels,
            vec!["~10", "10 ~ 100", "100 ~ 500", "500 ~ 1k", "1k ~"]
        );
    }

    #[test]
    fn default_respondent_answered_nothing() {
        let r = Respondent::default();
        assert!(r.accounts.is_none() && r.heard_of_mtasts.is_none());
    }
}
