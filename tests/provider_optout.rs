//! Table 2 end-to-end: each policy provider's documented opt-out
//! behaviour, applied to a live delegation, produces exactly the sender
//! impact §5 describes — and none of them match RFC 8461 §8.3.

use dns::RecordData;
use ecosystem::providers::{policy_providers, PolicyProvider, PolicyUpdateOnOptOut};
use mtasts::{DeliveryObservation, Mode, SenderAction, SenderEngine};
use netbase::{DomainName, SimDate, SimInstant};
use simnet::{CertKind, PolicyFetchError, World};

struct Deployment {
    world: World,
    customer: DomainName,
    target: DomainName,
    web_ip: std::net::Ipv4Addr,
    policy_host: DomainName,
}

/// Delegates a customer to `provider` with a healthy enforce policy.
fn deploy(provider: &PolicyProvider, now: SimInstant) -> Deployment {
    let world = World::new();
    let customer: DomainName = format!("cust-{}.com", provider.key).parse().unwrap();
    let policy_host = customer.prefixed("mta-sts").unwrap();
    let target = provider.cname_target(&customer);
    let base = provider.base_domain();
    world.ensure_zone(&base);
    let mut web = simnet::WebEndpoint::up();
    web.install_chain(
        policy_host.clone(),
        world
            .pki
            .issue(&CertKind::Valid, std::slice::from_ref(&policy_host), now),
    );
    web.install_policy(
        policy_host.clone(),
        &format!("version: STSv1\r\nmode: enforce\r\nmx: mx.{customer}\r\nmax_age: 86400\r\n"),
    );
    let web_ip = world.add_web_endpoint(web);
    world.with_zone(&base, |z| {
        z.add_rr(&target, 300, RecordData::A(web_ip));
    });
    world.ensure_zone(&customer);
    world.with_zone(&customer, |z| {
        z.add_rr(&policy_host, 300, RecordData::Cname(target.clone()));
        z.add_rr(
            &customer.prefixed("_mta-sts").unwrap(),
            300,
            RecordData::Txt(vec!["v=STSv1; id=1;".into()]),
        );
    });
    Deployment {
        world,
        customer,
        target,
        web_ip,
        policy_host,
    }
}

/// Applies the provider's documented opt-out behaviour.
fn opt_out(d: &Deployment, provider: &PolicyProvider, now: SimInstant) {
    if provider.opt_out.returns_nxdomain {
        d.world.with_zone(&provider.base_domain(), |z| {
            z.remove_all(&d.target);
        });
    }
    match provider.opt_out.policy_update {
        PolicyUpdateOnOptOut::Unchanged => {}
        PolicyUpdateOnOptOut::EmptiedFile => {
            d.world.with_web(d.web_ip, |ep| {
                ep.install_policy(d.policy_host.clone(), "");
            });
        }
        PolicyUpdateOnOptOut::ModeToNone => {
            d.world.with_web(d.web_ip, |ep| {
                ep.install_policy(
                    d.policy_host.clone(),
                    "version: STSv1\r\nmode: none\r\nmax_age: 86400\r\n",
                );
            });
        }
    }
    if !provider.opt_out.reissues_cert && !provider.opt_out.returns_nxdomain {
        d.world.with_web(d.web_ip, |ep| {
            ep.install_chain(
                d.policy_host.clone(),
                d.world.pki.issue(
                    &CertKind::Expired,
                    std::slice::from_ref(&d.policy_host),
                    now,
                ),
            );
        });
    }
    // Observe fresh state, not the pre-opt-out resolver cache.
    d.world.flush_dns_cache();
}

#[test]
fn every_provider_behaviour_matches_table2() {
    let now = SimDate::ymd(2024, 6, 1).at_midnight();
    for provider in policy_providers() {
        let d = deploy(&provider, now);
        // Healthy while subscribed.
        let before = d.world.fetch_policy(&d.customer, now);
        assert!(
            before.result.is_ok(),
            "{}: {:?}",
            provider.key,
            before.result
        );

        opt_out(&d, &provider, now);
        let after = d.world.fetch_policy(&d.customer, now);
        match provider.key {
            // NXDOMAIN providers: the policy domain stops resolving.
            "powerdmarc" | "mailhardener" | "uriports" => {
                assert!(
                    matches!(after.result, Err(PolicyFetchError::Dns(_))),
                    "{}: {:?}",
                    provider.key,
                    after.result
                );
                // The CNAME is still observable (the paper's delegation
                // evidence survives).
                assert_eq!(after.cname_chain, vec![d.target.clone()]);
            }
            // DMARCReport: valid cert, empty file — a parse failure that
            // senders treat like `none`.
            "dmarcreport" => {
                assert!(
                    matches!(
                        after.result,
                        Err(PolicyFetchError::Syntax(mtasts::PolicyError::EmptyDocument))
                    ),
                    "{}: {:?}",
                    provider.key,
                    after.result
                );
            }
            // Cert re-issuers with stale policies: still serving enforce.
            "easydmarc" | "sendmarc" | "ondmarc" => {
                let (policy, _) = after.result.expect("stale policy still served");
                assert_eq!(policy.mode, Mode::Enforce, "{}", provider.key);
            }
            // Tutanota: policy unchanged, certificates lapse.
            "tutanota" => {
                assert!(
                    matches!(
                        after.result,
                        Err(PolicyFetchError::Tls(simnet::TlsFailure::Cert(
                            pkix::CertError::Expired
                        )))
                    ),
                    "{}: {:?}",
                    provider.key,
                    after.result
                );
            }
            other => panic!("unexpected provider {other}"),
        }
    }
}

#[test]
fn stale_enforce_policy_strands_senders_after_mx_migration() {
    // The §5 hazard: a cert-reissuing provider keeps serving the old
    // enforce policy; when the customer migrates mail, validating senders
    // refuse delivery.
    let provider = policy_providers()
        .into_iter()
        .find(|p| p.key == "easydmarc")
        .unwrap();
    let now = SimDate::ymd(2024, 6, 1).at_midnight();
    let d = deploy(&provider, now);
    opt_out(&d, &provider, now);

    // The customer's new MX (after migrating away).
    let new_mx: DomainName = "in.newprovider.net".to_string().parse().unwrap();
    let mut engine = SenderEngine::new();
    let record_txts = d.world.mta_sts_txts(&d.customer, now).ok();
    let fetch_world = d.world.clone();
    let fetch_domain = d.customer.clone();
    let (outcome, action) = engine.evaluate(DeliveryObservation {
        domain: &d.customer,
        record_txts: record_txts.as_deref(),
        fetch_policy: move || {
            fetch_world
                .fetch_policy(&fetch_domain, now)
                .result
                .map(|(_, raw)| raw)
                .map_err(|e| e.to_string())
        },
        mx_host: &new_mx,
        check_mx_tls: || Ok(()),
        now,
    });
    assert_eq!(
        action,
        SenderAction::Refuse,
        "stale enforce policy must strand the migrated customer: {outcome:?}"
    );
}

#[test]
fn emptied_policy_releases_senders() {
    // DMARCReport's emptying behaviour, by contrast, releases senders
    // (parse failure ⇒ unprotected delivery).
    let provider = policy_providers()
        .into_iter()
        .find(|p| p.key == "dmarcreport")
        .unwrap();
    let now = SimDate::ymd(2024, 6, 1).at_midnight();
    let d = deploy(&provider, now);
    opt_out(&d, &provider, now);

    let new_mx: DomainName = "in.newprovider.net".parse().unwrap();
    let mut engine = SenderEngine::new();
    let record_txts = d.world.mta_sts_txts(&d.customer, now).ok();
    let fetch_world = d.world.clone();
    let fetch_domain = d.customer.clone();
    let (_, action) = engine.evaluate(DeliveryObservation {
        domain: &d.customer,
        record_txts: record_txts.as_deref(),
        fetch_policy: move || {
            fetch_world
                .fetch_policy(&fetch_domain, now)
                .result
                .map(|(_, raw)| raw)
                .map_err(|e| e.to_string())
        },
        mx_host: &new_mx,
        check_mx_tls: || Ok(()),
        now,
    });
    assert_eq!(action, SenderAction::DeliverUnvalidated);
}
