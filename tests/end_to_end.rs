//! End-to-end integration: ecosystem generation → world deployment →
//! scanning → analysis, with ground-truth cross-checks spanning every
//! crate in the workspace.

use ecosystem::{Ecosystem, EcosystemConfig, SnapshotDetail};
use netbase::{DomainName, SimDate};
use scanner::analysis::{fig4_series, fig9_series, table1};
use scanner::longitudinal::Study;
use scanner::scan_snapshot;
use scanner::taxonomy::MisconfigCategory;

fn eco() -> Ecosystem {
    Ecosystem::generate(EcosystemConfig::paper(1234, 0.02))
}

#[test]
fn measured_misconfiguration_matches_injected_ground_truth() {
    let eco = eco();
    let date = SimDate::ymd(2024, 9, 29);
    let world = eco.world_at(date, SnapshotDetail::Full);
    let domains: Vec<DomainName> = eco.domains_at(date).map(|d| d.name.clone()).collect();
    let snapshot = scan_snapshot(
        &world,
        &domains,
        date,
        None,
        &scanner::ScanConfig::default(),
    );

    let mut false_negatives = 0usize;
    let mut false_positives = 0usize;
    let mut total = 0usize;
    for spec in eco.domains_at(date) {
        let scan = snapshot.scan_of(&spec.name).expect("every domain scanned");
        total += 1;
        // Ground truth: any spec-level fault effective at this date. The
        // lucidgrow window is closed and the CN-fix cohort has fixed, so
        // effective_* handles the date dependence.
        let injected = spec.faults.record.is_some()
            || eco.effective_policy_fault(spec, date).is_some()
            || eco.effective_mx_fault(spec, date).is_some()
            || spec.faults.inconsistency.is_some();
        let measured = scan.is_misconfigured();
        if injected && !measured {
            false_negatives += 1;
        }
        if !injected && measured {
            false_positives += 1;
        }
    }
    // Stale-policy domains only manifest after their migration, and some
    // probabilistic edge cases shift categories; demand near-exact
    // agreement rather than perfection.
    assert!(total > 1000);
    assert!(
        false_negatives * 50 < total,
        "false negatives {false_negatives}/{total}"
    );
    assert!(
        false_positives * 50 < total,
        "false positives {false_positives}/{total}"
    );
}

#[test]
fn full_study_reproduces_headline_numbers() {
    let eco = eco();
    let scale = eco.config.scale;
    let study = Study::new(eco);
    let run = study.run();

    // Table 1 percentages in the paper's band.
    for row in table1(&run, scale) {
        assert!(
            (0.02..0.35).contains(&row.percent),
            "{}: {}%",
            row.tld,
            row.percent
        );
    }

    // The headline: ~29.6% misconfigured at the latest scan, policy
    // retrieval the dominant category (70-85% of errors).
    let f4 = fig4_series(&run);
    let latest = f4.last().unwrap();
    let pct = 100.0 * latest.misconfigured as f64 / latest.total as f64;
    assert!((20.0..40.0).contains(&pct), "misconfigured {pct}%");
    let policy_share = latest.category_pct[&MisconfigCategory::PolicyRetrieval]
        / (100.0 * latest.misconfigured as f64 / latest.total as f64);
    assert!(
        (0.6..1.0).contains(&policy_share),
        "policy errors are {policy_share} of misconfigurations"
    );

    // Figure 9 ends in the paper's neighbourhood (63%).
    let f9 = fig9_series(&run);
    let last9 = f9.last().unwrap().1;
    assert!((35.0..90.0).contains(&last9), "stale share {last9}%");

    // Delivery failures: a small but real share of misconfigured domains
    // (paper: 640 of 20,144 = 3.2%).
    let latest_snap = run.latest();
    let failures = latest_snap
        .scans
        .iter()
        .filter(|s| s.delivery_failure_predicted())
        .count();
    let misconfigured = latest_snap
        .scans
        .iter()
        .filter(|s| s.is_misconfigured())
        .count();
    let share = failures as f64 / misconfigured.max(1) as f64;
    assert!(
        (0.005..0.12).contains(&share),
        "delivery failures {failures}/{misconfigured} = {share}"
    );
}

#[test]
fn weekly_and_full_scans_are_consistent() {
    let eco = eco();
    let study = Study::new(eco);
    let run = study.run();
    // Each series counts exactly the domains adopted by its own date
    // (the weekly series ends 2024-09-26, the full scans 2024-09-29).
    let last_weekly = run.weekly.last().unwrap();
    let weekly_total: u64 = last_weekly.mtasts_per_tld.values().sum();
    // The weekly series applies the sender's own record semantics
    // (`evaluate_record_set`), so record-faulted domains never count.
    assert_eq!(
        weekly_total,
        study
            .eco
            .domains_at(last_weekly.date)
            .filter(|d| d.faults.record.is_none())
            .count() as u64
    );
    let latest_full = run.latest();
    assert_eq!(
        latest_full.len(),
        study.eco.domains_at(latest_full.date).count()
    );
    assert!(latest_full.len() as u64 >= weekly_total);
}

#[test]
fn deterministic_end_to_end() {
    let a = {
        let eco = Ecosystem::generate(EcosystemConfig::paper(77, 0.01));
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        let domains: Vec<DomainName> = eco.domains_at(date).map(|d| d.name.clone()).collect();
        let snap = scan_snapshot(
            &world,
            &domains,
            date,
            None,
            &scanner::ScanConfig::default(),
        );
        snap.scans
            .iter()
            .filter(|s| s.is_misconfigured())
            .map(|s| s.domain.to_string())
            .collect::<Vec<_>>()
    };
    let b = {
        let eco = Ecosystem::generate(EcosystemConfig::paper(77, 0.01));
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        let domains: Vec<DomainName> = eco.domains_at(date).map(|d| d.name.clone()).collect();
        let snap = scan_snapshot(
            &world,
            &domains,
            date,
            None,
            &scanner::ScanConfig::default(),
        );
        snap.scans
            .iter()
            .filter(|s| s.is_misconfigured())
            .map(|s| s.domain.to_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(a, b, "same seed must misconfigure the same domains");
}
