//! Live-wire leg of the outbound delivery pipeline: the queue drains a
//! degraded-MX scenario over **real localhost TCP** — UDP DNS is not
//! needed (routing stays on the world's resolver), but every delivery
//! attempt speaks actual SMTP to a real `MxServer` socket — and the
//! resulting ledger must be byte-identical to the in-process fast path.
//!
//! Topology note: the wire deployment only binds sockets for endpoints
//! whose reachability is `Up`, so a hard-down MX translates to a missing
//! listener (connection refused) — exactly the connection-level failure
//! the fail-over ladder and circuit breaker classify. Fault-schedule
//! degradations (flapping, greylists) are fast-path-only and excluded
//! here; `Degradation::wire_faithful` encodes that boundary.

use netbase::{DomainName, SimInstant};
use sender::scenario::{build, Degradation, ScenarioSpec};
use sender::{
    ledger_digest, AttemptDisposition, DeliveryQueue, FastTransport, MxTransport, QueueConfig,
    QueuedMessage, TlsEvidence, TlsRequirement,
};
use simnet::wire::WireWorld;
use smtp::{deliver, DeliveryOutcome, Envelope, SmtpError, TlsPolicy};
use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr};

/// The wire transport: routes via the world's resolver, attempts via a
/// real TCP connection to the deployed `MxServer`. Sync by contract
/// (the queue's workers are plain threads), so each attempt drives its
/// own `block_on` — safe here because `run_wire_queue` runs on a
/// `spawn_blocking` OS thread, never on the runtime's own thread.
struct WireTransport {
    world: simnet::World,
    mx_addrs: HashMap<Ipv4Addr, SocketAddr>,
    helo: DomainName,
}

impl MxTransport for WireTransport {
    fn route(
        &self,
        domain: &DomainName,
        now: SimInstant,
    ) -> Result<Vec<(u16, DomainName)>, String> {
        self.world
            .mx_records_with_pref(domain, now)
            .map_err(|e| format!("{e:?}"))
    }

    fn attempt(
        &self,
        mx_host: &DomainName,
        message: &QueuedMessage,
        now: SimInstant,
        tls: &TlsRequirement,
    ) -> AttemptDisposition {
        let Ok(lookup) = self.world.resolve(mx_host, dns::RecordType::A, now) else {
            return AttemptDisposition::HostUnreachable;
        };
        let Some(ip) = lookup.a_addrs().first().copied() else {
            return AttemptDisposition::HostUnreachable;
        };
        // Endpoints that are not Up were never deployed: no listener, so
        // the connection-refused class is decided right here, like a
        // connect() would.
        let Some(addr) = self.mx_addrs.get(&ip).copied() else {
            return AttemptDisposition::HostUnreachable;
        };
        let policy = match tls {
            TlsRequirement::Opportunistic => TlsPolicy::Opportunistic,
            TlsRequirement::OpportunisticAudit => TlsPolicy::OpportunisticAudit {
                roots: self.world.pki.trust_store().clone(),
                now,
                host: mx_host.clone(),
            },
            TlsRequirement::RequirePkix => TlsPolicy::RequirePkix {
                roots: self.world.pki.trust_store().clone(),
                now,
                host: mx_host.clone(),
            },
            // The wire client carries no DANE verifier; DANE-governed
            // rungs are a fast-path-only concern (`wire_faithful` keeps
            // enforcement scenarios off this leg).
            TlsRequirement::RequireDane(_) => {
                return AttemptDisposition::TlsRefused {
                    failure: mtasts::StsFailure::DaneInvalid {
                        reason: "wire transport has no DANE verifier".to_string(),
                    },
                }
            }
        };
        let must_tls = matches!(policy, TlsPolicy::RequirePkix { .. });
        let envelope = Envelope::new(&message.mail_from, &message.rcpt_to, &message.body);
        let helo = self.helo.clone();
        let mx_hostname = mx_host.clone();
        tokio::runtime::block_on(async move {
            let stream = match tokio::net::TcpStream::connect(addr).await {
                Ok(s) => s,
                Err(_) => return AttemptDisposition::HostUnreachable,
            };
            match deliver(stream, &helo, &mx_hostname, &envelope, &policy, 7, 11).await {
                Ok(DeliveryOutcome::Delivered {
                    tls_used,
                    cert_validated,
                }) => AttemptDisposition::Delivered {
                    tls: match (tls_used, cert_validated) {
                        (true, true) => TlsEvidence::Validated,
                        (true, false) => TlsEvidence::Encrypted,
                        (false, _) => TlsEvidence::Plaintext,
                    },
                },
                Ok(DeliveryOutcome::Rejected { code, text, .. }) => {
                    AttemptDisposition::Reply { code: code.0, text }
                }
                // Under a mandatory-TLS policy, a refused upgrade or bad
                // chain is a policy refusal, not a dead host.
                Err(SmtpError::StartTlsNotOffered) if must_tls => AttemptDisposition::TlsRefused {
                    failure: mtasts::StsFailure::StartTlsUnavailable,
                },
                Err(SmtpError::Cert(e)) if must_tls => AttemptDisposition::TlsRefused {
                    failure: mtasts::StsFailure::CertInvalid(e),
                },
                // Transport-level SMTP errors (reset mid-dialogue,
                // protocol violations) are connection-class failures.
                Err(_) => AttemptDisposition::HostUnreachable,
            }
        })
    }
}

fn queue_cfg() -> QueueConfig {
    QueueConfig {
        threads: 1,
        wave_size: 8,
        ..QueueConfig::default()
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn wire_queue_matches_fast_path_on_degraded_scenarios() {
    for degradation in [
        Degradation::None,
        Degradation::OneMxDown,
        Degradation::TierOutage,
    ] {
        assert!(degradation.wire_faithful());
        let s = build(ScenarioSpec::small(7, degradation));

        // Fast-path reference ledger.
        let fast = DeliveryQueue::new(queue_cfg()).run(&FastTransport::new(&s.world), &s.messages);

        // Wire leg: deploy the same world onto localhost, then drain the
        // queue from a blocking thread (the queue is synchronous; the
        // runtime thread must stay free to drive the MX server tasks).
        let wire = WireWorld::deploy(&s.world).await.expect("deploys");
        let transport = WireTransport {
            world: s.world.clone(),
            mx_addrs: wire.mx_addr_map(),
            helo: "sender.test".parse().unwrap(),
        };
        let messages = s.messages.clone();
        let slow = tokio::task::spawn_blocking(move || {
            DeliveryQueue::new(queue_cfg()).run(&transport, &messages)
        })
        .await
        .expect("wire queue thread");
        wire.shutdown().await;

        assert_eq!(
            ledger_digest(&fast.records),
            ledger_digest(&slow.records),
            "{degradation:?}: wire and fast ledgers diverge"
        );
        assert_eq!(fast.stats, slow.stats, "{degradation:?}");
        if matches!(degradation, Degradation::None) {
            assert_eq!(fast.stats.delivered, s.messages.len() as u64);
        }
        // Under the degradations every message still delivers — via a
        // surviving rung — on both paths.
        assert_eq!(
            slow.stats.delivered,
            s.messages.len() as u64,
            "{degradation:?}"
        );
    }
}
