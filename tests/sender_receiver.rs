//! Cross-validation of the scanner's delivery-failure predictions against
//! the actual sender engine: every domain the scanner flags as "will fail
//! delivery from MTA-STS compliant senders" must indeed be refused by the
//! real [`mtasts::SenderEngine`], and healthy domains must be delivered.

use ecosystem::{Ecosystem, EcosystemConfig, SnapshotDetail};
use mtasts::{DeliveryObservation, SenderAction, SenderEngine, StsFailure};
use netbase::{DomainName, SimDate, SimInstant};
use pkix::validate_chain;
use scanner::scan_snapshot;
use simnet::World;

/// Runs a full MTA-STS-validating delivery against the world, returning
/// the action for the best (first) MX.
fn deliver(world: &World, domain: &DomainName, now: SimInstant) -> SenderAction {
    let mut engine = SenderEngine::new();
    let record_txts = world.mta_sts_txts(domain, now).ok();
    let mx_records = world.mx_records(domain, now).unwrap_or_default();
    let Some(mx) = mx_records.first().cloned() else {
        return SenderAction::DeliverUnvalidated;
    };
    let probe = world.probe_mx(&mx, now);
    let chain = probe.chain.clone().unwrap_or_default();
    let trust = world.pki.trust_store().clone();
    let fetch_world = world.clone();
    let fetch_domain = domain.clone();
    let mx_for_tls = mx.clone();
    let (_, action) = engine.evaluate(DeliveryObservation {
        domain,
        record_txts: record_txts.as_deref(),
        fetch_policy: move || {
            fetch_world
                .fetch_policy(&fetch_domain, now)
                .result
                .map(|(_, raw)| raw)
                .map_err(|e| e.to_string())
        },
        mx_host: &mx,
        check_mx_tls: move || {
            if !probe.starttls_offered {
                return Err(StsFailure::StartTlsUnavailable);
            }
            validate_chain(&chain, &mx_for_tls, now, &trust).map_err(StsFailure::CertInvalid)
        },
        now,
    });
    action
}

#[test]
fn scanner_predictions_match_sender_engine() {
    let eco = Ecosystem::generate(EcosystemConfig::paper(5, 0.02));
    let date = SimDate::ymd(2024, 9, 29);
    let now = date.at_midnight();
    let world = eco.world_at(date, SnapshotDetail::Full);
    let domains: Vec<DomainName> = eco.domains_at(date).map(|d| d.name.clone()).collect();
    let snapshot = scan_snapshot(
        &world,
        &domains,
        date,
        None,
        &scanner::ScanConfig::default(),
    );

    let mut predicted_failures = 0;
    let mut engine_refusals = 0;
    let mut healthy_checked = 0;
    for scan in &snapshot.scans {
        if scan.delivery_failure_predicted() {
            predicted_failures += 1;
            // The real sender must refuse: mode is enforce and either no
            // pattern matches or every MX cert is invalid. The first MX is
            // what `deliver` tries; for no-pattern-match cases it refuses
            // on matching, for all-invalid on the certificate.
            let action = deliver(&world, &scan.domain, now);
            assert_eq!(
                action,
                SenderAction::Refuse,
                "{}: scanner predicted failure but the engine said {action:?}",
                scan.domain
            );
            engine_refusals += 1;
        } else if !scan.is_misconfigured() && healthy_checked < 200 {
            let action = deliver(&world, &scan.domain, now);
            assert_ne!(
                action,
                SenderAction::Refuse,
                "{}: healthy domain refused",
                scan.domain
            );
            healthy_checked += 1;
        }
    }
    assert!(
        predicted_failures > 3,
        "too few predicted failures to be meaningful: {predicted_failures}"
    );
    assert_eq!(predicted_failures, engine_refusals);
    assert!(healthy_checked > 100);
}

#[test]
fn tofu_cache_protects_across_snapshots() {
    // A domain seen healthy (enforce) remains protected when its record
    // later becomes unreadable: the cached policy still applies.
    let eco = Ecosystem::generate(EcosystemConfig::paper(5, 0.01));
    let date = SimDate::ymd(2024, 9, 29);
    let now = date.at_midnight();
    let world = eco.world_at(date, SnapshotDetail::Full);
    let spec = eco
        .domains_at(date)
        .find(|d| {
            d.faults.is_clean()
                && d.mode == mtasts::Mode::Enforce
                && matches!(d.policy, ecosystem::PolicyHosting::SelfManaged)
        })
        .expect("healthy enforce-mode domain exists");

    let mut engine = SenderEngine::new();
    let record_txts = world.mta_sts_txts(&spec.name, now).ok();
    let mx = world.mx_records(&spec.name, now).unwrap().remove(0);
    // First delivery: fetch + validate.
    let fetch_world = world.clone();
    let fetch_domain = spec.name.clone();
    let (_, action) = engine.evaluate(DeliveryObservation {
        domain: &spec.name,
        record_txts: record_txts.as_deref(),
        fetch_policy: move || {
            fetch_world
                .fetch_policy(&fetch_domain, now)
                .result
                .map(|(_, raw)| raw)
                .map_err(|e| e.to_string())
        },
        mx_host: &mx,
        check_mx_tls: || Ok(()),
        now,
    });
    assert_eq!(action, SenderAction::Deliver);

    // Second delivery an hour later: DNS blocked, attacker's MX offered.
    let later = now + netbase::Duration::hours(1);
    let evil_mx: DomainName = "mx.attacker.net".parse().unwrap();
    let (outcome, action) = engine.evaluate(DeliveryObservation {
        domain: &spec.name,
        record_txts: None,
        fetch_policy: || Err("blocked".to_string()),
        mx_host: &evil_mx,
        check_mx_tls: || Ok(()),
        now: later,
    });
    assert_eq!(action, SenderAction::Refuse, "outcome {outcome:?}");
}
