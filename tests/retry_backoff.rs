//! Property tests for the transient-retry backoff schedule
//! (`netbase::retry`): the schedule is the contract the resilient
//! scanner leans on, so we pin its shape down over the whole
//! configuration space rather than a handful of examples.

use netbase::rng::DetRng;
use netbase::{Duration, RetryPolicy, RetryVerdict, SimDate};
use proptest::prelude::*;

const LABELS: [&str; 4] = ["record", "policy", "mx/mx1.example.com", "policy-ip"];

/// Builds a policy from raw integer draws (the proptest shim has no
/// float strategies; jitter arrives as percent).
fn policy(
    max_attempts: u32,
    initial_secs: i64,
    multiplier: u32,
    max_backoff_secs: i64,
    jitter_pct: u32,
    timeout_secs: i64,
    deadline_secs: i64,
) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        initial_backoff: Duration::seconds(initial_secs),
        multiplier,
        max_backoff: Duration::seconds(max_backoff_secs),
        jitter: f64::from(jitter_pct) / 100.0,
        attempt_timeout: Duration::seconds(timeout_secs),
        total_deadline: Duration::seconds(deadline_secs),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The schedule has exactly `max_attempts - 1` entries, is monotone
    /// non-decreasing, and every delay respects the `max_backoff` cap —
    /// no jitter draw may reorder or inflate the sequence.
    #[test]
    fn backoff_schedule_is_monotone_and_capped(
        seed in any::<u64>(),
        label_ix in 0usize..LABELS.len(),
        max_attempts in 1u32..10,
        initial_secs in 0i64..40,
        multiplier in 1u32..5,
        max_backoff_secs in 0i64..180,
        jitter_pct in 0u32..101,
    ) {
        let p = policy(max_attempts, initial_secs, multiplier, max_backoff_secs, jitter_pct, 5, 600);
        let rng = DetRng::new(seed);
        let delays = p.backoff_delays(&rng, LABELS[label_ix]);
        prop_assert_eq!(delays.len(), max_attempts as usize - 1);
        for pair in delays.windows(2) {
            prop_assert!(pair[0] <= pair[1], "schedule must be non-decreasing: {:?}", delays);
        }
        for d in &delays {
            prop_assert!(*d <= p.max_backoff, "delay {:?} exceeds cap {:?}", d, p.max_backoff);
            prop_assert!(*d >= Duration::seconds(0));
        }
    }

    /// The schedule is a pure function of (policy, rng seed, label): the
    /// same inputs always reproduce it, which is what makes killed scans
    /// resumable byte-for-byte.
    #[test]
    fn backoff_schedule_is_deterministic(
        seed in any::<u64>(),
        label_ix in 0usize..LABELS.len(),
        max_attempts in 2u32..10,
        initial_secs in 1i64..40,
        jitter_pct in 0u32..101,
    ) {
        let p = policy(max_attempts, initial_secs, 2, 120, jitter_pct, 5, 600);
        let a = p.backoff_delays(&DetRng::new(seed), LABELS[label_ix]);
        let b = p.backoff_delays(&DetRng::new(seed), LABELS[label_ix]);
        prop_assert_eq!(a, b);
    }

    /// Driving an always-failing transient op: `run` never exceeds
    /// `max_attempts`, never overshoots the deadline by more than one
    /// attempt timeout (the final failed attempt is still charged), and
    /// reports `Exhausted`. Running it twice is bit-identical.
    #[test]
    fn run_respects_attempt_and_deadline_budgets(
        seed in any::<u64>(),
        label_ix in 0usize..LABELS.len(),
        max_attempts in 1u32..8,
        initial_secs in 0i64..30,
        multiplier in 1u32..4,
        max_backoff_secs in 0i64..90,
        jitter_pct in 0u32..101,
        timeout_secs in 1i64..10,
        deadline_secs in 0i64..400,
    ) {
        let p = policy(
            max_attempts, initial_secs, multiplier, max_backoff_secs,
            jitter_pct, timeout_secs, deadline_secs,
        );
        let start = SimDate::ymd(2024, 9, 29).at_midnight();
        let rng = DetRng::new(seed);
        let drive = || {
            p.run::<(), &str>(&rng, LABELS[label_ix], start, |_| true, |_, _| Err("tempfail"))
        };
        let out = drive();
        prop_assert!(out.result.is_err());
        prop_assert_eq!(out.verdict, RetryVerdict::Exhausted);
        prop_assert!(out.attempts >= 1 && out.attempts <= max_attempts);
        // Every failed attempt costs one timeout; sleeps only happen when
        // they still fit inside the deadline, so the worst case is the
        // deadline plus the last attempt's timeout.
        prop_assert!(
            out.finished_at <= start + p.total_deadline + p.attempt_timeout,
            "finished {:?} attempts, overshot the deadline window",
            out.attempts
        );
        let again = drive();
        prop_assert_eq!(out.attempts, again.attempts);
        prop_assert_eq!(out.finished_at, again.finished_at);
    }

    /// An op that recovers after `k` transient failures succeeds in
    /// exactly `k + 1` attempts whenever the policy's budgets allow it,
    /// and the verdict distinguishes first-try from recovered success.
    #[test]
    fn run_counts_recovery_attempts_exactly(
        seed in any::<u64>(),
        failures in 0u32..6,
        spare in 1u32..4,
    ) {
        let max_attempts = failures + spare;
        // A deadline generous enough that it never intervenes here.
        let p = policy(max_attempts, 1, 2, 60, 50, 2, 100_000);
        let start = SimDate::ymd(2024, 9, 29).at_midnight();
        let out = p.run::<u32, &str>(
            &DetRng::new(seed),
            "record",
            start,
            |_| true,
            |_, attempt| if attempt <= failures { Err("tempfail") } else { Ok(attempt) },
        );
        prop_assert_eq!(out.attempts, failures + 1);
        prop_assert_eq!(out.result, Ok(failures + 1));
        prop_assert_eq!(out.retries(), failures);
        if failures == 0 {
            prop_assert_eq!(out.verdict, RetryVerdict::FirstTry);
            prop_assert!(!out.recovered());
        } else {
            prop_assert_eq!(out.verdict, RetryVerdict::RecoveredTransient);
            prop_assert!(out.recovered());
        }
    }

    /// Persistent (non-transient) errors never retry, no matter how many
    /// attempts the policy would allow.
    #[test]
    fn persistent_errors_fail_fast(
        seed in any::<u64>(),
        max_attempts in 1u32..10,
    ) {
        let p = policy(max_attempts, 1, 2, 60, 50, 3, 100_000);
        let start = SimDate::ymd(2024, 9, 29).at_midnight();
        let out = p.run::<(), &str>(
            &DetRng::new(seed),
            "policy",
            start,
            |_| false,
            |_, _| Err("certificate name mismatch"),
        );
        prop_assert_eq!(out.attempts, 1);
        prop_assert_eq!(out.verdict, RetryVerdict::Persistent);
        prop_assert_eq!(out.finished_at, start + p.attempt_timeout);
    }
}

// ---- attempt_schedule: the uncut retry ladder ------------------------
//
// The outbound delivery queue sizes its retry windows from
// `RetryPolicy::attempt_schedule`; the contract is monotone
// non-decreasing instants that *saturate* instead of overflowing, for
// any multiplier/cap combination a config file could throw at it.

use netbase::SimInstant;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// One instant per attempt, starting at `start`, monotone
    /// non-decreasing, and consistent with `backoff_delays`: each step
    /// is exactly one attempt_timeout plus the published delay (when
    /// nothing saturates).
    #[test]
    fn schedule_is_monotone_and_tracks_delays(
        seed in any::<u64>(),
        max_attempts in 1u32..10,
        initial in 1i64..3600,
        multiplier in 1u32..16,
        cap in 1i64..86_400,
        jitter_pct in 0u32..100,
        timeout in 1i64..300,
    ) {
        let p = policy(max_attempts, initial, multiplier, cap, jitter_pct, timeout, 1_000_000);
        let rng = DetRng::new(seed);
        let start = SimDate::ymd(2024, 9, 29).at_midnight();
        let schedule = p.attempt_schedule(&rng, "mx/mx1.example.com", start);
        prop_assert_eq!(schedule.len(), max_attempts as usize);
        prop_assert_eq!(schedule[0], start);
        for pair in schedule.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
        let delays = p.backoff_delays(&rng, "mx/mx1.example.com");
        for (i, pair) in schedule.windows(2).enumerate() {
            let expect = pair[0].unix_secs() + timeout + delays[i].as_secs();
            prop_assert_eq!(pair[1].unix_secs(), expect);
        }
    }

    /// Extreme multiplier/cap/timeout combinations saturate at the
    /// horizon while staying monotone — never a wrapped (negative or
    /// decreasing) instant.
    #[test]
    fn schedule_saturates_at_extremes(
        seed in any::<u64>(),
        max_attempts in 2u32..12,
        multiplier in proptest::prop_oneof![Just(u32::MAX), Just(u32::MAX / 2), Just(1_000_000u32)],
        timeout in proptest::prop_oneof![Just(i64::MAX / 2), Just(i64::MAX / 4), Just(i64::MAX)],
    ) {
        let p = RetryPolicy {
            max_attempts,
            initial_backoff: Duration::seconds(i64::MAX / 2),
            multiplier,
            max_backoff: Duration::seconds(i64::MAX),
            jitter: 1.0,
            attempt_timeout: Duration::seconds(timeout),
            total_deadline: Duration::seconds(i64::MAX),
        };
        let rng = DetRng::new(seed);
        let start = SimDate::ymd(2024, 9, 29).at_midnight();
        let schedule = p.attempt_schedule(&rng, "record", start);
        prop_assert_eq!(schedule.len(), max_attempts as usize);
        prop_assert_eq!(schedule[0], start);
        for pair in schedule.windows(2) {
            prop_assert!(pair[0] <= pair[1], "wrapped: {:?} -> {:?}", pair[0], pair[1]);
        }
        // Every delay is at least `initial_backoff` (jitter only inflates),
        // so with timeout >= i64::MAX / 2 the very first step overshoots
        // the horizon and pins there. With timeout = i64::MAX / 4 the
        // second attempt may legitimately land below the horizon
        // (~3/4 * i64::MAX), but the step after it must pin.
        let horizon = SimInstant::from_unix_secs(i64::MAX);
        let pinned_from = if timeout >= i64::MAX / 2 { 1 } else { 2 };
        for at in schedule.iter().skip(pinned_from) {
            prop_assert_eq!(*at, horizon);
        }
        // Nothing ever wraps negative or precedes the start.
        for at in &schedule {
            prop_assert!(*at >= start);
        }
    }

    /// A start near the representable edge cannot overflow either.
    #[test]
    fn schedule_saturates_from_a_late_start(
        seed in any::<u64>(),
        max_attempts in 1u32..8,
        offset in 0i64..1000,
    ) {
        let p = policy(max_attempts, 60, 2, 3600, 50, 30, 1_000_000);
        let rng = DetRng::new(seed);
        let start = SimInstant::from_unix_secs(i64::MAX - offset);
        let schedule = p.attempt_schedule(&rng, "policy", start);
        prop_assert_eq!(schedule[0], start);
        for pair in schedule.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
    }
}
