//! Panic-freedom under hostile input: byte soup, truncations, bit flips
//! and hand-crafted name-compression abuse against the DNS wire decoder,
//! plus full-unicode totality for the MTA-STS text parsers.
//!
//! The downgrade-attack simulator feeds attacker-controlled bytes into
//! these decoders; none of them may panic, hang, or produce a value that
//! violates the crate invariants (every decoded name must re-parse as a
//! canonical [`DomainName`]).

use dns::types::{Message, Question, Rcode, Record, RecordData, RecordType};
use dns::wire::{decode, encode_with};
use netbase::DomainName;
use proptest::prelude::*;

fn n(s: &str) -> DomainName {
    s.parse().unwrap()
}

/// A small but representative message to mutate and truncate.
fn sample() -> Message {
    let q = Message::query(0x5151, Question::new(n("example.com"), RecordType::Mx));
    let mut r = Message::response_to(&q, Rcode::NoError);
    r.answers.push(Record::new(
        n("example.com"),
        3600,
        RecordData::Mx {
            preference: 10,
            exchange: n("mx1.example.com"),
        },
    ));
    r.answers.push(Record::new(
        n("_mta-sts.example.com"),
        300,
        RecordData::Txt(vec!["v=STSv1; id=20240601;".into()]),
    ));
    r.additionals.push(Record::new(
        n("mx1.example.com"),
        3600,
        RecordData::A([192, 0, 2, 1].into()),
    ));
    r
}

/// Asserts every name a decoded message carries is canonical.
fn assert_canonical(msg: &Message) {
    let check = |name: &DomainName| {
        assert!(
            DomainName::parse(&name.to_string()).is_ok(),
            "decoder produced a non-canonical name: {name}"
        );
    };
    for q in &msg.questions {
        check(&q.name);
    }
    for rec in msg
        .answers
        .iter()
        .chain(&msg.authorities)
        .chain(&msg.additionals)
    {
        check(&rec.name);
        match &rec.data {
            RecordData::Ns(x) | RecordData::Cname(x) | RecordData::Ptr(x) => check(x),
            RecordData::Mx { exchange, .. } => check(exchange),
            RecordData::Soa(soa) => {
                check(&soa.mname);
                check(&soa.rname);
            }
            _ => {}
        }
    }
}

/// A minimal header with the given section counts.
fn header(qd: u16, an: u16, ns: u16, ar: u16) -> Vec<u8> {
    let mut out = vec![0x12, 0x34, 0x80, 0x00];
    for count in [qd, an, ns, ar] {
        out.extend_from_slice(&count.to_be_bytes());
    }
    out
}

#[test]
fn self_and_forward_pointers_are_rejected() {
    // Question name that points at itself.
    let mut bytes = header(1, 0, 0, 0);
    bytes.extend_from_slice(&[0xC0, 12]); // pointer -> offset 12 (itself)
    bytes.extend_from_slice(&[0x00, 0x0F, 0x00, 0x01]); // MX, IN
    assert!(decode(&bytes).is_err());

    // Question name that points forward past itself.
    let mut bytes = header(1, 0, 0, 0);
    bytes.extend_from_slice(&[0xC0, 40]);
    bytes.extend_from_slice(&[0x00, 0x0F, 0x00, 0x01]);
    bytes.resize(64, 0);
    assert!(decode(&bytes).is_err());
}

#[test]
fn pointer_chains_are_depth_limited() {
    // A descending pointer chain hidden inside an opaque record's RDATA,
    // then a second-section name that enters it at the top: every hop is
    // a legal backward pointer, so only the depth limit stops the walk.
    let mut bytes = header(0, 1, 1, 0);
    // answer: "a" TYPE999 IN, ttl 0, rdlen = chain bytes.
    bytes.extend_from_slice(&[1, b'a', 0]); // name "a"
    bytes.extend_from_slice(&999u16.to_be_bytes());
    bytes.extend_from_slice(&[0x00, 0x01]); // IN
    bytes.extend_from_slice(&[0, 0, 0, 0]); // ttl
    let rdata_start = bytes.len() + 2; // after the rdlength field itself
    let hops = 40usize;
    let mut rdata = Vec::new();
    // Entry i at rdata_start + 2i points at the entry below it; the
    // bottom entry is a root byte (padded to keep entries 2 bytes apart).
    rdata.extend_from_slice(&[0x00, 0x00]);
    for i in 1..=hops {
        let target = (rdata_start + 2 * (i - 1)) as u16;
        rdata.push(0xC0 | (target >> 8) as u8);
        rdata.push((target & 0xFF) as u8);
    }
    bytes.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
    let chain_top = (rdata_start + 2 * hops) as u16;
    bytes.extend_from_slice(&rdata);
    // authority record whose name enters the chain at the top.
    bytes.push(0xC0 | (chain_top >> 8) as u8);
    bytes.push((chain_top & 0xFF) as u8);
    bytes.extend_from_slice(&999u16.to_be_bytes());
    bytes.extend_from_slice(&[0x00, 0x01]);
    bytes.extend_from_slice(&[0, 0, 0, 0]);
    bytes.extend_from_slice(&[0, 0]); // rdlen 0

    // Must terminate with an error (depth limit), not hang or panic.
    assert!(decode(&bytes).is_err());
}

#[test]
fn oversized_labels_and_names_are_rejected() {
    // Label length 64 (the maximum is 63).
    let mut bytes = header(1, 0, 0, 0);
    bytes.push(64);
    bytes.extend_from_slice(&[b'a'; 64]);
    bytes.push(0);
    bytes.extend_from_slice(&[0x00, 0x0F, 0x00, 0x01]);
    assert!(decode(&bytes).is_err());

    // Four 63-byte labels: 256 wire octets, over the 254-octet cap.
    let mut bytes = header(1, 0, 0, 0);
    for _ in 0..4 {
        bytes.push(63);
        bytes.extend_from_slice(&[b'a'; 63]);
    }
    bytes.push(0);
    bytes.extend_from_slice(&[0x00, 0x0F, 0x00, 0x01]);
    assert!(decode(&bytes).is_err());
}

#[test]
fn non_canonical_labels_are_rejected() {
    // Labels DomainName::parse would refuse must not come off the wire:
    // embedded '*', non-leading wildcard, hyphen edges.
    for label in [&b"a*b"[..], b"*", b"-ab", b"ab-"] {
        let mut bytes = header(1, 0, 0, 0);
        // "ok.<label>.com" puts the hostile label in a non-leading slot,
        // which even a lone "*" is not allowed to occupy.
        bytes.push(2);
        bytes.extend_from_slice(b"ok");
        bytes.push(label.len() as u8);
        bytes.extend_from_slice(label);
        bytes.push(3);
        bytes.extend_from_slice(b"com");
        bytes.push(0);
        bytes.extend_from_slice(&[0x00, 0x0F, 0x00, 0x01]);
        assert!(decode(&bytes).is_err(), "label {label:?} must be rejected");
    }
    // A leading lone "*" is legal (wildcard owner names exist in zones).
    let mut bytes = header(1, 0, 0, 0);
    bytes.push(1);
    bytes.push(b'*');
    bytes.push(3);
    bytes.extend_from_slice(b"com");
    bytes.push(0);
    bytes.extend_from_slice(&[0x00, 0x0F, 0x00, 0x01]);
    let msg = decode(&bytes).expect("leading wildcard label is canonical");
    assert_canonical(&msg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: the decoder never panics, and anything it
    /// does accept carries only canonical names.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(msg) = decode(&bytes) {
            assert_canonical(&msg);
        }
    }

    /// Every strict prefix of a valid message fails cleanly.
    #[test]
    fn truncations_fail_cleanly(cut in 0usize..1000, compress in any::<bool>()) {
        let encoded = encode_with(&sample(), compress);
        let cut = cut % encoded.len();
        prop_assert!(decode(&encoded[..cut]).is_err());
    }

    /// Single-byte corruption of a valid message never panics, and any
    /// still-decodable result keeps the name invariant.
    #[test]
    fn bit_flips_never_panic(
        pos in 0usize..1000,
        value in any::<u8>(),
        compress in any::<bool>(),
    ) {
        let mut encoded = encode_with(&sample(), compress);
        let pos = pos % encoded.len();
        encoded[pos] = value;
        if let Ok(msg) = decode(&encoded) {
            assert_canonical(&msg);
        }
    }

    /// The MTA-STS text parsers are total over arbitrary unicode, not
    /// just printable ASCII (multi-byte boundaries, NULs, RTL marks...).
    #[test]
    fn text_parsers_total_over_unicode(input in any::<String>()) {
        let _ = mtasts::parse_record(&input);
        let _ = mtasts::policy::parse_policy(&input);
        let _ = mtasts::parse_tlsrpt(&input);
        let _ = DomainName::parse(&input);
    }

    /// Record-set evaluation is total over arbitrary TXT sets.
    #[test]
    fn record_set_evaluation_total(
        set in prop::collection::vec(any::<String>(), 0..4),
    ) {
        let _ = mtasts::evaluate_record_set(&set);
    }
}

// ---- SMTP reply parsing under hostile peers --------------------------
//
// The outbound delivery pipeline points `smtp::read_reply` at arbitrary
// remote MTAs; a hostile peer must not be able to pin the client in an
// unbounded read (an endless reply line, a `250-`-forever multiline) or
// panic it with non-ASCII garbage. Every bound violation surfaces as a
// *typed* `SmtpError`.

use smtp::{read_reply, SmtpError, MAX_REPLY_LINES, MAX_REPLY_LINE_LEN};
use std::pin::Pin;
use std::task::{Context, Poll};
use tokio::io::{AsyncRead, BufReader, ReadBuf};

/// A peer producing a fixed byte stream, then EOF.
struct Feed {
    data: Vec<u8>,
    pos: usize,
}

impl Feed {
    fn new(data: impl Into<Vec<u8>>) -> Feed {
        Feed {
            data: data.into(),
            pos: 0,
        }
    }
}

impl AsyncRead for Feed {
    fn poll_read(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        let this = self.get_mut();
        let n = buf.remaining().min(this.data.len() - this.pos);
        buf.put_slice(&this.data[this.pos..this.pos + n]);
        this.pos += n;
        Poll::Ready(Ok(()))
    }
}

/// A peer that streams one line forever — no newline, no EOF.
struct EndlessLine;

impl AsyncRead for EndlessLine {
    fn poll_read(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        let n = buf.remaining();
        buf.put_slice(&vec![b'A'; n]);
        Poll::Ready(Ok(()))
    }
}

/// A peer that answers `250-more` forever.
struct EndlessMultiline {
    line: Vec<u8>,
    pos: usize,
}

impl EndlessMultiline {
    fn new() -> EndlessMultiline {
        EndlessMultiline {
            line: b"250-and another thing\r\n".to_vec(),
            pos: 0,
        }
    }
}

impl AsyncRead for EndlessMultiline {
    fn poll_read(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        let this = self.get_mut();
        while buf.remaining() > 0 {
            let n = buf.remaining().min(this.line.len() - this.pos);
            buf.put_slice(&this.line[this.pos..this.pos + n]);
            this.pos = (this.pos + n) % this.line.len();
        }
        Poll::Ready(Ok(()))
    }
}

fn read_from<R: AsyncRead + Unpin>(peer: R) -> Result<(smtp::ReplyCode, Vec<String>), SmtpError> {
    tokio::runtime::block_on(async move {
        let mut reader = BufReader::new(peer);
        read_reply(&mut reader).await
    })
}

#[test]
fn endless_reply_line_is_cut_at_the_cap() {
    match read_from(EndlessLine) {
        Err(SmtpError::ReplyLineTooLong { limit }) => assert_eq!(limit, MAX_REPLY_LINE_LEN),
        other => panic!("endless line must hit the length cap, got {other:?}"),
    }
}

#[test]
fn endless_multiline_reply_is_cut_at_the_line_cap() {
    match read_from(EndlessMultiline::new()) {
        Err(SmtpError::TooManyReplyLines { limit }) => assert_eq!(limit, MAX_REPLY_LINES),
        other => panic!("250- forever must hit the line cap, got {other:?}"),
    }
}

#[test]
fn reply_line_at_exactly_the_cap_still_parses() {
    // RFC 5321's 512-octet limit includes the CRLF.
    let mut line = b"250 ".to_vec();
    line.resize(MAX_REPLY_LINE_LEN - 2, b'x');
    line.extend_from_slice(b"\r\n");
    let (code, lines) = read_from(Feed::new(line)).expect("cap-length line is legal");
    assert_eq!(code, smtp::ReplyCode::OK);
    assert_eq!(lines.len(), 1);
}

#[test]
fn truncated_reply_surfaces_eof_not_hang() {
    for bytes in [&b"250"[..], b"250-only half a multi\r\n", b"2"] {
        match read_from(Feed::new(bytes)) {
            Err(SmtpError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("{bytes:?}: truncation must be UnexpectedEof, got {other:?}"),
        }
    }
}

#[test]
fn multibyte_reply_code_is_malformed_not_a_panic() {
    // 'ä' is two octets; byte 3 falls inside it. The old `line[..3]`
    // slice panicked on the char boundary.
    for hostile in ["ä50 hello\r\n", "2ä0 hi\r\n", "αβγ nope\r\n"] {
        match read_from(Feed::new(hostile.as_bytes())) {
            Err(SmtpError::Malformed(_)) => {}
            other => panic!("{hostile:?} must be Malformed, got {other:?}"),
        }
    }
}

proptest! {
    /// `read_reply` is total over arbitrary byte soup: some typed error
    /// or a well-formed reply, never a panic or hang.
    #[test]
    fn smtp_reply_reader_total_over_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok((_code, lines)) = read_from(Feed::new(bytes)) {
            prop_assert!(lines.len() <= MAX_REPLY_LINES);
            for line in &lines {
                prop_assert!(line.len() <= MAX_REPLY_LINE_LEN + 4);
            }
        }
    }
}
