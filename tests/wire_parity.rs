//! Differential test: the in-memory fast path and the real-socket wire
//! path must agree layer-for-layer on ecosystem-generated domains.
//!
//! This is the strongest evidence that the simulation-scale scans measure
//! what the real protocol stacks would: a sample of generated domains —
//! healthy and faulty — is deployed onto localhost (UDP DNS, toy-TLS
//! HTTPS, SMTP with STARTTLS) and fetched both ways.

use ecosystem::{Ecosystem, EcosystemConfig, SnapshotDetail};
use netbase::{DomainName, SimDate};
use simnet::wire::WireWorld;
use simnet::PolicyFetchError;

/// Picks a diverse sample: a few domains per policy-fault class.
fn sample_domains(eco: &Ecosystem, date: SimDate, per_class: usize) -> Vec<DomainName> {
    let mut by_class: std::collections::HashMap<String, usize> = Default::default();
    let mut out = Vec::new();
    for spec in eco.domains_at(date) {
        let class = format!("{:?}", eco.effective_policy_fault(spec, date));
        let seen = by_class.entry(class).or_insert(0);
        if *seen < per_class {
            *seen += 1;
            out.push(spec.name.clone());
        }
    }
    out
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn fast_and_wire_paths_agree_on_generated_domains() {
    let eco = Ecosystem::generate(EcosystemConfig::paper(7, 0.005));
    let date = SimDate::ymd(2024, 9, 29);
    let now = date.at_midnight();
    let world = eco.world_at(date, SnapshotDetail::Full);
    let wire = WireWorld::deploy(&world).await.expect("deploys");

    let sample = sample_domains(&eco, date, 3);
    assert!(sample.len() >= 6, "sample too small: {}", sample.len());

    let mut compared = 0;
    for domain in &sample {
        let fast = world.fetch_policy(domain, now);
        let slow = wire.fetch_policy(&world, domain, now).await;
        match (&fast.result, &slow.result) {
            (Ok((fp, fraw)), Ok((sp, sraw))) => {
                assert_eq!(fp, sp, "{domain}: parsed policies differ");
                assert_eq!(fraw, sraw, "{domain}: raw documents differ");
            }
            (Err(fe), Err(se)) => {
                assert_eq!(fe.layer(), se.layer(), "{domain}: {fe} vs {se}");
                // TLS-layer failures agree on the certificate error too.
                if let (
                    PolicyFetchError::Tls(simnet::TlsFailure::Cert(a)),
                    PolicyFetchError::Tls(simnet::TlsFailure::Cert(b)),
                ) = (fe, se)
                {
                    assert_eq!(a, b, "{domain}");
                }
            }
            other => panic!("{domain}: paths disagree: {other:?}"),
        }
        // Delegation evidence agrees.
        assert_eq!(fast.cname_chain, slow.cname_chain, "{domain}");
        compared += 1;
    }
    assert!(compared >= 6);

    // MX probes agree on a few hosts too.
    let mut probed = 0;
    for domain in sample.iter().take(5) {
        let Ok(mx_records) = world.mx_records(domain, now) else {
            continue;
        };
        for mx in mx_records.iter().take(1) {
            let fast = world.probe_mx(mx, now);
            let slow = wire.probe_mx(mx, now).await;
            assert_eq!(fast.reachable, slow.reachable, "{mx}");
            assert_eq!(fast.starttls_offered, slow.starttls_offered, "{mx}");
            assert_eq!(fast.chain, slow.chain, "{mx}");
            probed += 1;
        }
    }
    assert!(probed >= 3);
    wire.shutdown().await;
}
