//! Property-based hardening of the RFC 8461 §4.1 MX matching logic and
//! the §4.4 mismatch taxonomy — the functions the delivery queue's
//! enforcement ladder filter stands on.
//!
//! The generators stress exactly the edge shapes the ISSUE calls out:
//! wildcard patterns vs bare apex names, multi-label subdomains (a
//! wildcard matches *one* leftmost label, never two), and case folding
//! (DNS names compare case-insensitively; policies are authored in
//! whatever case the operator felt like).

use mtasts::{classify_mismatch, mx_matches_policy, MismatchKind, Mode, MxPattern, Policy};
use netbase::DomainName;
use proptest::prelude::*;

/// Strategy: a valid DNS label.
fn label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,14}[a-z0-9]".prop_filter("no trailing hyphen", |s| !s.ends_with('-'))
}

/// Strategy: a base domain of 2–3 labels (the policy-holder apex).
fn apex() -> impl Strategy<Value = String> {
    prop::collection::vec(label(), 2..=3).prop_map(|ls| ls.join("."))
}

/// Randomly upper-cases characters of `s` according to `mask` bits.
fn mixed_case(s: &str, mask: u64) -> String {
    s.chars()
        .enumerate()
        .map(|(i, c)| {
            if mask >> (i % 64) & 1 == 1 {
                c.to_ascii_uppercase()
            } else {
                c
            }
        })
        .collect()
}

fn policy_of(patterns: &[&str]) -> Policy {
    Policy::new(
        Mode::Enforce,
        86_400,
        patterns
            .iter()
            .map(|p| MxPattern::parse(p).unwrap())
            .collect(),
    )
}

proptest! {
    /// A `*.apex` wildcard matches every single-label child, never the
    /// bare apex, and never a grandchild (two labels below the apex).
    #[test]
    fn wildcard_matches_exactly_one_label(
        base in apex(),
        child in label(),
        grandchild in label(),
    ) {
        let policy = policy_of(&[&format!("*.{base}")]);
        let bare: DomainName = base.parse().unwrap();
        let one: DomainName = format!("{child}.{base}").parse().unwrap();
        let two: DomainName = format!("{grandchild}.{child}.{base}").parse().unwrap();
        prop_assert!(mx_matches_policy(&one, &policy), "{one} must match *.{base}");
        prop_assert!(!mx_matches_policy(&bare, &policy), "bare {bare} must not match");
        prop_assert!(!mx_matches_policy(&two, &policy), "{two} spans two labels");
    }

    /// An exact (non-wildcard) pattern matches its own name and nothing
    /// else — not children, not the parent.
    #[test]
    fn exact_pattern_matches_only_itself(base in apex(), child in label()) {
        let host = format!("{child}.{base}");
        let policy = policy_of(&[&host]);
        let exact: DomainName = host.parse().unwrap();
        let parent: DomainName = base.parse().unwrap();
        let deeper: DomainName = format!("x.{host}").parse().unwrap();
        prop_assert!(mx_matches_policy(&exact, &policy));
        prop_assert!(!mx_matches_policy(&parent, &policy));
        prop_assert!(!mx_matches_policy(&deeper, &policy));
    }

    /// Matching is invariant under arbitrary case mangling of either the
    /// host or the pattern text: both parse to canonical lowercase.
    #[test]
    fn matching_folds_case(base in apex(), child in label(), mask in any::<u64>()) {
        let host = format!("{child}.{base}");
        let lower = policy_of(&[&host]);
        let shouted = policy_of(&[&mixed_case(&host, mask)]);
        let mangled: DomainName = mixed_case(&host, mask.rotate_left(13)).parse().unwrap();
        let plain: DomainName = host.parse().unwrap();
        prop_assert_eq!(
            mx_matches_policy(&mangled, &lower),
            mx_matches_policy(&plain, &lower)
        );
        prop_assert_eq!(
            mx_matches_policy(&plain, &shouted),
            mx_matches_policy(&plain, &lower)
        );
    }

    /// `classify_mismatch` is the complement of matching: `None` exactly
    /// when the pattern matches some MX, a typed class otherwise.
    #[test]
    fn classification_complements_matching(
        base in apex(),
        child in label(),
        other in label(),
    ) {
        let pattern = MxPattern::parse(&format!("{child}.{base}")).unwrap();
        let hosts: Vec<DomainName> = vec![
            format!("{other}.{base}").parse().unwrap(),
            format!("{child}.{base}").parse().unwrap(),
        ];
        // The pattern's own name is in the set: always a match.
        prop_assert_eq!(classify_mismatch(&pattern, &hosts), None);
        // Remove it; whatever the classifier says must now be `Some`
        // unless the remaining host happens to equal the pattern.
        let rest = &hosts[..1];
        let verdict = classify_mismatch(&pattern, rest);
        prop_assert_eq!(verdict.is_none(), pattern.matches(&rest[0]));
    }

    /// A TLD verdict really means the TLDs all disagree, and a wildcard
    /// pattern one label above the MX set never produces a TLD verdict
    /// against hosts under its own apex.
    #[test]
    fn tld_verdict_is_honest(base in apex(), child in label(), tld in "[a-z]{2,6}") {
        let host: DomainName = format!("{child}.{base}").parse().unwrap();
        let foreign = MxPattern::parse(&format!("{child}.{base}.{tld}")).unwrap();
        if let Some(MismatchKind::Tld) = classify_mismatch(&foreign, std::slice::from_ref(&host)) {
            prop_assert!(host.tld() != foreign.name().tld());
        }
        let wild = MxPattern::parse(&format!("*.{base}")).unwrap();
        let verdict = classify_mismatch(&wild, std::slice::from_ref(&host));
        prop_assert_eq!(verdict, None, "wildcard covers its child {host}");
    }

    /// Multi-label subdomains under a wildcard apex classify as 3LD+ (or
    /// typo), never as a complete-domain mismatch: the eSLD agrees.
    #[test]
    fn deep_subdomain_never_complete_mismatch(
        base in apex(),
        a in label(),
        b in label(),
    ) {
        let wild = MxPattern::parse(&format!("*.{base}")).unwrap();
        let deep: DomainName = format!("{a}.{b}.{base}").parse().unwrap();
        if let Some(MismatchKind::CompleteDomain) =
            classify_mismatch(&wild, std::slice::from_ref(&deep))
        {
            prop_assert!(false, "{deep} shares the eSLD of *.{base}")
        }
    }
}
