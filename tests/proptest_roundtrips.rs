//! Property-based tests over the core data structures and codecs.

use dns::types::{Message, Question, Rcode, Record, RecordData, RecordType, SoaRecord};
use netbase::{levenshtein, levenshtein_within, DomainName};
use proptest::prelude::*;

/// Strategy: a valid DNS label.
fn label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,14}[a-z0-9]".prop_filter("no double hyphen edge", |s| !s.ends_with('-'))
}

/// Strategy: a valid domain name of 2-4 labels.
fn domain_name() -> impl Strategy<Value = DomainName> {
    prop::collection::vec(label(), 2..=4)
        .prop_map(|labels| labels.join(".").parse::<DomainName>().unwrap())
}

/// Strategy: arbitrary record data.
fn record_data() -> impl Strategy<Value = RecordData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RecordData::A(o.into())),
        any::<[u8; 16]>().prop_map(|o| RecordData::Aaaa(o.into())),
        domain_name().prop_map(RecordData::Ns),
        domain_name().prop_map(RecordData::Cname),
        domain_name().prop_map(RecordData::Ptr),
        (any::<u16>(), domain_name()).prop_map(|(preference, exchange)| RecordData::Mx {
            preference,
            exchange
        }),
        prop::collection::vec("[ -~]{0,80}", 1..3).prop_map(|strings| {
            // TXT character-strings are ≤255 bytes; the strategy stays well
            // under.
            RecordData::Txt(strings)
        }),
        (domain_name(), domain_name(), any::<u32>()).prop_map(|(mname, rname, serial)| {
            RecordData::Soa(SoaRecord {
                mname,
                rname,
                serial,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            })
        }),
        (
            0u8..4,
            0u8..2,
            0u8..2,
            prop::collection::vec(any::<u8>(), 0..40)
        )
            .prop_map(|(usage, selector, matching_type, data)| RecordData::Tlsa(
                dns::TlsaRecord {
                    usage,
                    selector,
                    matching_type,
                    data,
                }
            )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any well-formed DNS message round-trips through the wire codec,
    /// with and without name compression.
    #[test]
    fn dns_message_roundtrips(
        id in any::<u16>(),
        qname in domain_name(),
        answers in prop::collection::vec((domain_name(), any::<u32>(), record_data()), 0..6),
    ) {
        let q = Message::query(id, Question::new(qname, RecordType::Txt));
        let mut msg = Message::response_to(&q, Rcode::NoError);
        for (name, ttl, data) in answers {
            msg.answers.push(Record::new(name, ttl, data));
        }
        let compressed = dns::wire::encode_with(&msg, true);
        let plain = dns::wire::encode_with(&msg, false);
        prop_assert_eq!(&dns::wire::decode(&compressed).unwrap(), &msg);
        prop_assert_eq!(&dns::wire::decode(&plain).unwrap(), &msg);
        prop_assert!(compressed.len() <= plain.len());
    }

    /// Valid MTA-STS policies round-trip through serialization.
    #[test]
    fn policy_document_roundtrips(
        mode in prop_oneof![
            Just(mtasts::Mode::Enforce),
            Just(mtasts::Mode::Testing),
            Just(mtasts::Mode::None)
        ],
        max_age in 1u64..31_557_600,
        mx in prop::collection::vec(domain_name(), 1..4),
        wildcard in any::<bool>(),
    ) {
        let mut patterns: Vec<mtasts::MxPattern> = mx
            .iter()
            .map(|m| mtasts::MxPattern::parse(&m.to_string()).unwrap())
            .collect();
        if wildcard {
            let base = mx[0].to_string();
            patterns.push(mtasts::MxPattern::parse(&format!("*.{base}")).unwrap());
        }
        let policy = mtasts::Policy::new(mode, max_age, patterns);
        let document = policy.to_document();
        let parsed = mtasts::policy::parse_policy(&document).unwrap();
        prop_assert_eq!(parsed, policy);
    }

    /// Valid record ids round-trip through the record parser.
    #[test]
    fn sts_record_roundtrips(id in "[a-zA-Z0-9]{1,32}") {
        let text = format!("v=STSv1; id={id};");
        let parsed = mtasts::parse_record(&text).unwrap();
        prop_assert_eq!(parsed.id, id);
    }

    /// The record parser never panics on arbitrary printable input.
    #[test]
    fn record_parser_total(input in "[ -~]{0,120}") {
        let _ = mtasts::parse_record(&input);
        let _ = mtasts::policy::parse_policy(&input);
        let _ = mtasts::parse_tlsrpt(&input);
    }

    /// The DNS wire decoder never panics on arbitrary bytes.
    #[test]
    fn wire_decoder_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = dns::wire::decode(&bytes);
    }

    /// Certificate decoding never panics and round-trips valid certs.
    #[test]
    fn cert_decoder_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = pkix::SimCert::from_bytes(&bytes);
    }

    /// Levenshtein is a metric: symmetry, identity, triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(
        a in "[a-z.]{0,20}",
        b in "[a-z.]{0,20}",
        c in "[a-z.]{0,20}",
    ) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    /// The bounded variant agrees with the exact distance.
    #[test]
    fn bounded_levenshtein_agrees(
        a in "[a-z.]{0,20}",
        b in "[a-z.]{0,20}",
        bound in 0usize..8,
    ) {
        let exact = levenshtein(&a, &b);
        match levenshtein_within(&a, &b, bound) {
            Some(d) => prop_assert_eq!(d, exact),
            None => prop_assert!(exact > bound),
        }
    }

    /// Domain-name parsing canonicalizes: reparsing the display form is
    /// the identity.
    #[test]
    fn domain_name_canonical(name in domain_name()) {
        let reparsed: DomainName = name.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, name);
    }

    /// Wildcard pattern matching never matches across label counts.
    #[test]
    fn wildcard_matches_exactly_one_label(base in domain_name(), extra in label()) {
        let pattern = mtasts::MxPattern::parse(&format!("*.{base}")).unwrap();
        let one: DomainName = format!("{extra}.{base}").parse().unwrap();
        let two: DomainName = format!("{extra}.{extra}.{base}").parse().unwrap();
        prop_assert!(pattern.matches(&one));
        prop_assert!(!pattern.matches(&two));
        prop_assert!(!pattern.matches(&base));
    }

    /// Zone files round-trip through the parser.
    #[test]
    fn zonefile_roundtrips(
        apex in domain_name(),
        hosts in prop::collection::vec((label(), any::<[u8; 4]>()), 1..5),
    ) {
        let mut zone = dns::Zone::new(apex.clone());
        for (host, addr) in &hosts {
            let name: DomainName = format!("{host}.{apex}").parse().unwrap();
            zone.add_rr(&name, 300, RecordData::A((*addr).into()));
        }
        let text = zone.to_zonefile();
        let back = dns::Zone::parse(&text).unwrap();
        prop_assert_eq!(back.apex(), zone.apex());
        let mut a: Vec<String> = zone.iter().map(|r| format!("{r:?}")).collect();
        let mut b: Vec<String> = back.iter().map(|r| format!("{r:?}")).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}
