//! The resilient scan supervisor, end to end: a flaky world, a run
//! killed mid-snapshot, a resume from the checkpoint, and one domain
//! poisoned on purpose — with the degradation report to show for it.
//!
//! ```sh
//! cargo run --release --example resilient_scan
//! ```

use ecosystem::{Ecosystem, EcosystemConfig};
use scanner::longitudinal::Study;
use scanner::{ScanConfig, SupervisedOutcome, SupervisorConfig};
use simnet::TransientFaultConfig;

fn main() {
    let config = EcosystemConfig::paper(42, 0.01);
    println!(
        "generating ecosystem (seed {}, scale {})...",
        config.seed, config.scale
    );
    let study = Study::new(Ecosystem::generate(config));

    // One domain is made to panic mid-scan: the supervisor must abandon
    // it and keep going.
    let last_date = *study.eco.config.full_scan_dates().last().unwrap();
    let victim = study.eco.domains_at(last_date).next().unwrap().name.clone();

    let checkpoint = std::env::temp_dir().join("mtasts-resilient-scan.json");
    let _ = std::fs::remove_file(&checkpoint);
    let mut cfg = SupervisorConfig {
        scan: ScanConfig::resilient(1, 5),
        checkpoint_path: Some(checkpoint.clone()),
        checkpoint_every: 25,
        // Kill the first invocation mid-campaign.
        domain_budget: Some(400),
        transient: Some(TransientFaultConfig::uniform(7, 0.08)),
        chaos_panic_domains: vec![victim.clone()],
        threads: 0,
    };

    println!(
        "running 11 monthly full scans under an 8% transient-fault rate,\n\
         dying after 400 domains (checkpoint: {})...",
        checkpoint.display()
    );
    let mut invocations = 0;
    let outcome = loop {
        invocations += 1;
        match study.run_full_supervised(&cfg) {
            SupervisedOutcome::Suspended { report } => {
                println!(
                    "  invocation {invocations}: suspended after {} domains \
                     ({} retries so far) — resuming from checkpoint",
                    report.domains_scanned, report.retries_issued
                );
                // The "operator" restarts the campaign without the kill.
                cfg.domain_budget = None;
            }
            done @ SupervisedOutcome::Complete { .. } => break done,
        }
    };

    let SupervisedOutcome::Complete { snapshots, report } = outcome else {
        unreachable!("loop breaks on Complete");
    };
    println!("\ncampaign complete in {invocations} invocations:");
    println!("  snapshots:            {}", snapshots.len());
    println!("  domains scanned:      {}", report.domains_scanned);
    println!("  retries issued:       {}", report.retries_issued);
    println!("  transients recovered: {}", report.transients_recovered);
    // The victim is abandoned once per snapshot it appears in — every
    // other domain in those snapshots still got scanned.
    println!(
        "  domains abandoned:    {} (`{}` × {} snapshots)",
        report.domains_abandoned,
        victim,
        report.abandoned_domains.len()
    );
    assert!(report.domains_abandoned >= 1);
    assert!(report
        .abandoned_domains
        .iter()
        .all(|d| *d == victim.to_string()));

    let latest = snapshots.last().unwrap();
    let bad = latest.scans.iter().filter(|s| s.is_misconfigured()).count();
    println!(
        "\nlatest snapshot ({}): {} of {} domains misconfigured ({:.1}%) — \
         persistent errors only; every recovered transient above was kept\n\
         out of these numbers",
        latest.date,
        bad,
        latest.len(),
        100.0 * bad as f64 / latest.len() as f64
    );
    let _ = std::fs::remove_file(&checkpoint);
}
