//! Enforcement demo: drain the *same* degraded scenario — a flapping
//! primary MX plus an on-path attacker stripping STARTTLS for ten
//! minutes — under the three MTA-STS deployments (`none`, `testing`,
//! `enforce`) and print the interception and bounce ledgers side by
//! side.
//!
//! What the table shows:
//!
//! - with **no policy** (and with `mode: none`), the strip window turns
//!   every in-window delivery into intercepted plaintext — mail flows,
//!   the attacker reads it;
//! - **testing** keeps mail flowing too, but every downgraded session is
//!   counted and lands in the RFC 8460 TLSRPT report;
//! - **enforce** refuses the downgraded sessions outright: attempts
//!   inside the window requeue and recover after it closes, so nothing
//!   is intercepted and nothing bounces — at the cost of latency.
//!
//! ```sh
//! cargo run --release --example enforced_pipeline
//! ```

use mtasts::Mode;
use netbase::Duration;
use sender::scenario::{build, Degradation, Scenario, ScenarioSpec, StsDeployment};
use sender::{
    BounceReason, DeliveryQueue, EnforcementConfig, FastTransport, MessageStatus, QueueConfig,
    QueueOutcome,
};
use simnet::{AttackKind, AttackSchedule};

/// STARTTLS strip window relative to the epoch, seconds.
const STRIP: (i64, i64) = (60, 660);

fn scenario(sts: StsDeployment) -> Scenario {
    let spec = ScenarioSpec {
        messages_per_domain: 12,
        sts,
        ..ScenarioSpec::small(
            42,
            Degradation::FlappingMx {
                down_secs: 600,
                up_secs: 600,
                cycles: 3,
            },
        )
    };
    let s = build(spec);
    let start = s.spec.epoch + Duration::seconds(STRIP.0);
    let end = s.spec.epoch + Duration::seconds(STRIP.1);
    s.world.set_attacker(AttackSchedule::new().with_window(
        AttackKind::StartTlsStrip,
        None,
        start,
        end,
    ));
    s
}

fn drain(s: &Scenario) -> QueueOutcome {
    let cfg = QueueConfig {
        threads: 1,
        wave_size: 8,
        enforcement: Some(EnforcementConfig::default()),
        ..QueueConfig::default()
    };
    DeliveryQueue::new(cfg).run(&FastTransport::new(&s.world), &s.messages)
}

fn main() {
    let deployments = [
        ("no-policy", StsDeployment::None),
        (
            "testing",
            StsDeployment::Published {
                mode: Mode::Testing,
                max_age: 604_800,
            },
        ),
        (
            "enforce",
            StsDeployment::Published {
                mode: Mode::Enforce,
                max_age: 604_800,
            },
        ),
    ];

    println!(
        "same world three ways: mxa.* flaps 600s down/up x3, attacker strips\n\
         STARTTLS in [{}s, {}s); only the published policy differs\n",
        STRIP.0, STRIP.1
    );

    let mut outcomes = Vec::new();
    for (label, sts) in deployments {
        let s = scenario(sts);
        let out = drain(&s);
        outcomes.push((label, s, out));
    }

    println!(
        "{:<10} {:>9} {:>10} {:>12} {:>10} {:>13} {:>9}",
        "policy", "delivered", "validated", "intercepted", "soft-fail", "policy-bounce", "requeues"
    );
    for (label, s, out) in &outcomes {
        let st = &out.stats;
        println!(
            "{:<10} {:>6}/{:<2} {:>10} {:>12} {:>10} {:>13} {:>9}",
            label,
            st.delivered,
            s.messages.len(),
            st.delivered_validated,
            st.intercepted,
            st.soft_fails,
            st.bounced_policy,
            st.requeues,
        );
    }

    // The interception ledger: which messages the attacker actually read.
    println!("\nintercepted messages (attacker read the payload):");
    for (label, _, out) in &outcomes {
        let hits: Vec<&str> = out
            .records
            .iter()
            .filter(|r| r.intercepted)
            .map(|r| r.id.as_str())
            .collect();
        match hits.len() {
            0 => println!("  {label:<10} none"),
            n => println!("  {label:<10} {n} messages: {}", hits.join(", ")),
        }
    }

    // The bounce ledger: what enforcement refused for good.
    println!("\nbounced messages:");
    for (label, _, out) in &outcomes {
        let mut any = false;
        for rec in &out.records {
            if let MessageStatus::Bounced { reason } = &rec.status {
                any = true;
                let why = match reason {
                    BounceReason::PolicyRefused { failure } => {
                        format!("policy refused ({})", failure.label())
                    }
                    BounceReason::Permanent { code, text } => format!("{code}: {text}"),
                    BounceReason::RetriesExhausted { last_error } => {
                        format!("retries exhausted: {last_error}")
                    }
                    BounceReason::Unroutable => "unroutable".to_string(),
                };
                println!(
                    "  {label:<10} {} after {} attempts — {why}",
                    rec.id, rec.attempts
                );
            }
        }
        if !any {
            println!("  {label:<10} none");
        }
    }

    // Testing mode's paper trail: the downgrades feed the TLSRPT report.
    let (_, _, testing) = &outcomes[1];
    let report = testing.tlsrpt.build(
        "enforced-pipeline-demo",
        "tlsrpt@sender.test",
        netbase::SimDate::ymd(2024, 6, 1),
    );
    let failures: u64 = report.policies.iter().map(|p| p.total_failure).sum();
    let successes: u64 = report.policies.iter().map(|p| p.total_successful).sum();
    println!(
        "\ntesting-mode TLSRPT: {} successful sessions, {} failed across {} policy blocks",
        successes,
        failures,
        report.policies.len()
    );
}
