//! Live-wire scan: the same world served over *real* localhost sockets —
//! an authoritative UDP DNS server, HTTPS policy servers speaking the
//! toy-TLS + HTTP/1.1 stack, and SMTP MX servers with STARTTLS — scanned
//! by the real protocol clients, and cross-checked against the in-memory
//! fast path.
//!
//! ```sh
//! cargo run --example live_wire_scan
//! ```

use dns::RecordData;
use netbase::{DomainName, SimDate};
use simnet::wire::WireWorld;
use simnet::{CertKind, MxEndpoint, WebEndpoint, World};

fn n(s: &str) -> DomainName {
    s.parse().expect("example names are valid")
}

fn deploy(world: &World, domain: &DomainName, kind: CertKind, now: netbase::SimInstant) {
    let policy_host = domain.prefixed("mta-sts").unwrap();
    let mx_host = domain.prefixed("mx").unwrap();
    world.ensure_zone(domain);
    let mut web = WebEndpoint::up();
    web.install_chain(
        policy_host.clone(),
        world
            .pki
            .issue(&kind, std::slice::from_ref(&policy_host), now),
    );
    web.install_policy(
        policy_host.clone(),
        &format!("version: STSv1\r\nmode: enforce\r\nmx: {mx_host}\r\nmax_age: 86400\r\n"),
    );
    let web_ip = world.add_web_endpoint(web);
    let mx_chain = world
        .pki
        .issue(&CertKind::Valid, std::slice::from_ref(&mx_host), now);
    let mx_ip = world.add_mx_endpoint(MxEndpoint::healthy(mx_host.clone(), mx_chain));
    world.with_zone(domain, |z| {
        z.add_rr(
            domain,
            300,
            RecordData::Mx {
                preference: 10,
                exchange: mx_host.clone(),
            },
        );
        z.add_rr(&mx_host, 300, RecordData::A(mx_ip));
        z.add_rr(&policy_host, 300, RecordData::A(web_ip));
        z.add_rr(
            &domain.prefixed("_mta-sts").unwrap(),
            300,
            RecordData::Txt(vec!["v=STSv1; id=live1;".into()]),
        );
    });
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let world = World::new();
    let now_date = SimDate::ymd(2024, 6, 1);
    let now = now_date.at_midnight();
    let cases = [
        ("healthy.example", CertKind::Valid),
        ("expired.example", CertKind::Expired),
        ("selfsigned.example", CertKind::SelfSigned),
        (
            "mismatch.example",
            CertKind::WrongName(n("shared.hosting.example")),
        ),
    ];
    for (domain, kind) in &cases {
        deploy(&world, &n(domain), kind.clone(), now);
    }

    println!("deploying onto real localhost sockets...");
    let wire = WireWorld::deploy(&world).await.expect("deploy succeeds");
    println!("  DNS server on {}", wire.dns_addr);

    for (domain, _) in &cases {
        let domain = n(domain);
        let fast = world.fetch_policy(&domain, now);
        let live = wire.fetch_policy(&world, &domain, now).await;
        let describe = |r: &Result<(mtasts::Policy, String), simnet::PolicyFetchError>| match r {
            Ok((p, _)) => format!("OK (mode {})", p.mode),
            Err(e) => format!("{} error: {e}", e.layer()),
        };
        println!("\n{domain}:");
        println!("  in-memory: {}", describe(&fast.result));
        println!("  over wire: {}", describe(&live.result));
        let agree = match (&fast.result, &live.result) {
            (Ok(_), Ok(_)) => true,
            (Err(a), Err(b)) => a.layer() == b.layer(),
            _ => false,
        };
        println!("  paths agree: {agree}");
        assert!(agree, "fast and wire paths must agree");

        // Probe the MX over the wire too.
        let mx = domain.prefixed("mx").unwrap();
        let probe = wire.probe_mx(&mx, now).await;
        println!(
            "  MX probe over wire: reachable={} starttls={} chain={}",
            probe.reachable,
            probe.starttls_offered,
            probe.chain.as_ref().map_or(0, |c| c.len())
        );
    }

    wire.shutdown().await;
    println!("\nall servers shut down cleanly");
}
