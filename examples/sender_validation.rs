//! Sender-side validation (§6): run the deliverability-test platform over
//! a calibrated sender population and print the inferred statistics.
//!
//! ```sh
//! cargo run --example sender_validation
//! ```

use netbase::SimDate;
use sender::profile::calib;
use sender::{analyze, Platform, SenderPopulation, TestCase};

fn main() {
    let platform = Platform::new(SimDate::ymd(2024, 6, 1));
    let pop = SenderPopulation::generate(7, calib::SENDER_DOMAINS);
    println!(
        "running {} senders against {} receiver configurations...",
        pop.len(),
        TestCase::ALL.len()
    );
    let records = platform.run_all(&pop.profiles);
    let stats = analyze(&records);
    let n = stats.senders as f64;
    println!("\nmeasured (paper):");
    println!(
        "  TLS-capable:        {:4} = {:.1}%   (2,264 = 94.6%)",
        stats.tls_senders,
        100.0 * stats.tls_senders as f64 / n
    );
    println!(
        "  opportunistic TLS:  {:4} = {:.1}%   (2,232 = 93.2%)",
        stats.opportunistic,
        100.0 * stats.opportunistic as f64 / n
    );
    println!(
        "  PKIX always:        {:4} = {:.1}%    (31 = 1.3%)",
        stats.pkix_always,
        100.0 * stats.pkix_always as f64 / n
    );
    println!(
        "  validate MTA-STS:   {:4} = {:.1}%   (469 = 19.6%)",
        stats.mtasts_validators,
        100.0 * stats.mtasts_validators as f64 / n
    );
    println!(
        "  validate DANE:      {:4} = {:.1}%   (714 = 29.8%)",
        stats.dane_validators,
        100.0 * stats.dane_validators as f64 / n
    );
    println!(
        "  validate both:      {:4} = {:.1}%    (203 = 8.5%)",
        stats.both_validators,
        100.0 * stats.both_validators as f64 / n
    );
    println!(
        "  prefer MTA-STS bug: {:4} = {:.1}%     (62 = 2.6%)",
        stats.prefer_mtasts,
        100.0 * stats.prefer_mtasts as f64 / n
    );
    println!(
        "  top-10 operators:   {:.1}% of interactions (60.7%)",
        100.0 * stats.top10_share()
    );
}
