//! A miniature longitudinal study: generate a scaled-down ecosystem,
//! run the weekly record scans and monthly full scans, and print the
//! headline findings next to the paper's.
//!
//! ```sh
//! cargo run --release --example longitudinal_study
//! ```

use ecosystem::{Ecosystem, EcosystemConfig};
use scanner::analysis::{fig2_series, fig4_series, table1};
use scanner::longitudinal::Study;
use scanner::taxonomy::MisconfigCategory;

fn main() {
    let config = EcosystemConfig::paper(42, 0.02);
    println!(
        "generating ecosystem (seed {}, scale {}, ~{} domains at the end)...",
        config.seed,
        config.scale,
        (68_030.0 * config.scale) as u64
    );
    let study = Study::new(Ecosystem::generate(config));
    println!("running 160 weekly record scans + 11 monthly full scans...");
    let run = study.run();

    println!("\nTable 1 (percentages scale-invariant):");
    for row in table1(&run, study.eco.config.scale) {
        println!(
            "  {}: {} MTA-STS domains / {} MX domains = {:.3}%",
            row.tld, row.mtasts_domains, row.mx_domains, row.percent
        );
    }

    let f2 = fig2_series(&run, study.eco.config.scale);
    println!("\nFigure 2: adoption grew from");
    println!("  {:?}", f2.first().unwrap());
    println!("  to {:?}", f2.last().unwrap());

    let f4 = fig4_series(&run);
    let latest = f4.last().unwrap();
    println!(
        "\nFigure 4 (latest scan {}): {}/{} domains misconfigured ({:.1}%; paper 29.6%)",
        latest.date,
        latest.misconfigured,
        latest.total,
        100.0 * latest.misconfigured as f64 / latest.total as f64
    );
    for cat in MisconfigCategory::ALL {
        println!("  {}: {:.1}%", cat.label(), latest.category_pct[&cat]);
    }
}
