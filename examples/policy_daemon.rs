//! The policy-resolution daemon end to end (DESIGN.md
//! "Policy-resolution service"): a shared single-flight TOFU cache
//! answering "how do I deliver to domain X right now?" for concurrent
//! sender traffic, with rate-admitted refreshes, periodic expiry
//! sweeps, and a live Prometheus `/metrics` endpoint served over TCP.
//!
//! The walkthrough:
//!
//! 1. a thundering herd — 8 worker threads all resolving the same cold
//!    domain at once — triggers exactly **one** policy fetch;
//! 2. three daemon ticks drain mixed request batches deterministically
//!    (cold fetches, warm hits, §3.3 stale fallbacks under a simulated
//!    policy-host outage);
//! 3. the daemon binds a real socket and serves the service counters
//!    at `/metrics` in Prometheus text exposition.
//!
//! ```sh
//! cargo run --release --example policy_daemon
//! ```

use netbase::{DomainName, Duration, SimInstant};
use sender::resolver::{
    AdmissionConfig, DaemonConfig, PolicyResolver, PolicySource, ResolverConfig, ResolverDaemon,
};
use std::sync::Arc;

fn n(s: &str) -> DomainName {
    s.parse().expect("domain")
}

fn epoch() -> SimInstant {
    SimInstant::from_unix_secs(1_717_200_000)
}

/// A small world: three enforce-mode domains whose policy hosts can be
/// switched off, one domain with no MTA-STS at all.
struct World {
    outage: bool,
}

impl PolicySource for World {
    fn record_txts(&self, domain: &DomainName, _now: SimInstant) -> Option<Vec<String>> {
        if domain == &n("plaintext.example") {
            Some(Vec::new()) // never deployed MTA-STS
        } else if self.outage {
            // The operator rolled the record id (demanding a refetch)
            // right as the policy hosts went dark — the §3.3 shape.
            Some(vec!["v=STSv1; id=gen2;".to_string()])
        } else {
            Some(vec!["v=STSv1; id=gen1;".to_string()])
        }
    }

    fn fetch_policy(&self, _domain: &DomainName, _now: SimInstant) -> Result<String, String> {
        if self.outage {
            Err("policy host unreachable".to_string())
        } else {
            Ok(
                "version: STSv1\r\nmode: enforce\r\nmx: mx.example.com\r\nmax_age: 604800\r\n"
                    .to_string(),
            )
        }
    }
}

fn main() {
    let resolver = Arc::new(PolicyResolver::new(
        ResolverConfig {
            shards: 16,
            admission: Some(AdmissionConfig {
                rate_per_sec: 100.0,
                burst: 50,
                max_delay: Duration::seconds(5),
            }),
            threads: 1,
        },
        epoch(),
    ));

    // --- 1. The thundering herd -------------------------------------
    println!("== cold herd: 8 workers, 1 domain ==");
    let world = Arc::new(World { outage: false });
    let herd: Vec<_> = (0..8)
        .map(|_| {
            let resolver = Arc::clone(&resolver);
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                let (_, disposition) = resolver.resolve(&*world, &n("alpha.example"), epoch());
                disposition
            })
        })
        .collect();
    for (i, h) in herd.into_iter().enumerate() {
        println!("  worker {i}: {:?}", h.join().expect("worker"));
    }
    let m = resolver.metrics();
    println!(
        "  fetches={} coalesced={} hits={} (single-flight: one fetch for the whole herd)\n",
        m.fetches, m.coalesced, m.hits
    );

    // --- 2. Daemon ticks over mixed batches --------------------------
    let mut daemon = ResolverDaemon::new(
        DaemonConfig {
            tick: Duration::minutes(1),
            sweep_every: 2,
        },
        Arc::clone(&resolver),
        epoch() + Duration::minutes(1),
    );
    let batch = vec![
        n("alpha.example"),
        n("beta.example"),
        n("gamma.example"),
        n("plaintext.example"),
        n("beta.example"), // in-batch duplicate → coalesces
    ];

    println!("== tick 1: mixed batch, policy hosts up ==");
    for row in daemon.tick(&*world, &batch) {
        println!(
            "  #{} {:<22} {:?}{}",
            row.seq,
            row.domain.to_string(),
            row.disposition,
            row.mode
                .map(|m| format!(" (mode {m:?})"))
                .unwrap_or_default()
        );
    }

    println!("== tick 2: same batch, fully warm ==");
    for row in daemon.tick(&*world, &batch) {
        println!(
            "  #{} {:<22} {:?}",
            row.seq,
            row.domain.to_string(),
            row.disposition
        );
    }

    println!("== tick 3: record ids rolled, policy hosts dark (§3.3 stale fallback) ==");
    let dark = World { outage: true };
    for row in daemon.tick(&dark, &batch) {
        println!(
            "  #{} {:<22} {:?} stale={}",
            row.seq,
            row.domain.to_string(),
            row.disposition,
            row.stale
        );
    }
    println!();

    // --- 3. /metrics over real TCP ------------------------------------
    println!("== /metrics ==");
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let server = {
        let resolver = Arc::clone(&resolver);
        std::thread::spawn(move || {
            ResolverDaemon::serve_metrics(resolver, "127.0.0.1:0", Some(1), move |addr| {
                addr_tx.send(addr).expect("addr");
            })
        })
    };
    let addr = addr_rx.recv().expect("bound");
    use std::io::{Read as _, Write as _};
    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: daemon\r\n\r\n")
        .expect("request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("response");
    server.join().expect("server").expect("serve");
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
    for line in body.lines().filter(|l| !l.starts_with('#')) {
        println!("  {line}");
    }
}
