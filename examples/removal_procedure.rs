//! The MTA-STS removal procedure (§2.6 / RFC 8461 §8.3): a domain that
//! follows the four-step sequence releases its senders cleanly; one that
//! rips the records out strands senders with cached enforce policies.
//!
//! ```sh
//! cargo run --example removal_procedure
//! ```

use mtasts::removal::{check_removal, DeploymentSnapshot, RemovalVerdict};
use mtasts::{parse_policy, Mode, MxPattern, Policy};
use netbase::{Duration, SimDate};

fn enforce_policy() -> Policy {
    Policy::new(
        Mode::Enforce,
        604_800,
        vec![MxPattern::parse("mx.example.com").unwrap()],
    )
}

fn none_policy() -> Policy {
    parse_policy("version: STSv1\r\nmode: none\r\nmax_age: 86400\r\n").unwrap()
}

fn snapshot(date: SimDate, id: Option<&str>, policy: Option<Policy>) -> DeploymentSnapshot {
    DeploymentSnapshot {
        at: date.at_midnight(),
        record_id: id.map(String::from),
        policy,
    }
}

fn main() {
    // The correct sequence.
    let clean = vec![
        snapshot(SimDate::ymd(2024, 5, 1), Some("a1"), Some(enforce_policy())),
        // Step 1+2: none-mode policy, one-day max_age, new record id.
        snapshot(SimDate::ymd(2024, 6, 1), Some("a2"), Some(none_policy())),
        // Step 3: wait out max(old, new) max_age (7 days > 1 day needed).
        snapshot(SimDate::ymd(2024, 6, 12), Some("a2"), Some(none_policy())),
        // Step 4: everything removed.
        snapshot(SimDate::ymd(2024, 6, 20), None, None),
    ];
    println!("correct removal: {:?}\n", check_removal(&clean));

    // The abrupt removal the paper warns about.
    let abrupt = vec![
        snapshot(SimDate::ymd(2024, 5, 1), Some("a1"), Some(enforce_policy())),
        snapshot(SimDate::ymd(2024, 6, 1), None, None),
    ];
    let verdict = check_removal(&abrupt);
    println!("abrupt removal:  {verdict:?}");
    if let RemovalVerdict::Abrupt { stranded_for, .. } = verdict {
        println!(
            "=> senders with the cached enforce policy keep enforcing for up to {} days\n",
            stranded_for.as_days()
        );
    }

    // Forgetting to bump the record id.
    let no_bump = vec![
        snapshot(
            SimDate::ymd(2024, 5, 1),
            Some("same"),
            Some(enforce_policy()),
        ),
        snapshot(SimDate::ymd(2024, 6, 1), Some("same"), Some(none_policy())),
        snapshot(SimDate::ymd(2024, 7, 1), None, None),
    ];
    println!("id not bumped:   {:?}", check_removal(&no_bump));

    // Removing before the waiting period elapses.
    let rushed = vec![
        snapshot(SimDate::ymd(2024, 5, 1), Some("a1"), Some(enforce_policy())),
        snapshot(SimDate::ymd(2024, 6, 1), Some("a2"), Some(none_policy())),
        snapshot(SimDate::ymd(2024, 6, 2), None, None),
    ];
    let verdict = check_removal(&rushed);
    println!("removed early:   {verdict:?}");
    if let RemovalVerdict::RemovedTooSoon {
        required_wait,
        observed_wait,
    } = verdict
    {
        println!(
            "=> waited {} days, needed {}",
            observed_wait.as_days(),
            required_wait.as_days()
        );
    }
    let _ = Duration::ZERO;
}
