//! Quickstart: deploy MTA-STS for a domain in a simulated Internet, then
//! validate it exactly as a sending MTA would.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dns::RecordData;
use mtasts::{DeliveryObservation, SenderAction, SenderEngine, StsFailure};
use netbase::{DomainName, SimDate};
use pkix::validate_chain;
use simnet::{CertKind, MxEndpoint, WebEndpoint, World};

fn n(s: &str) -> DomainName {
    s.parse().expect("example names are valid")
}

/// Installs `domain` with a correct MTA-STS deployment (record, policy
/// host, STARTTLS MX with a valid certificate).
fn deploy_domain(world: &World, domain: &DomainName, mode: &str, now: netbase::SimInstant) {
    let policy_host = domain.prefixed("mta-sts").unwrap();
    let mx_host = domain.prefixed("mx").unwrap();
    world.ensure_zone(domain);

    // 1. The HTTPS policy host.
    let mut web = WebEndpoint::up();
    web.install_chain(
        policy_host.clone(),
        world
            .pki
            .issue(&CertKind::Valid, std::slice::from_ref(&policy_host), now),
    );
    web.install_policy(
        policy_host.clone(),
        &format!("version: STSv1\r\nmode: {mode}\r\nmx: {mx_host}\r\nmax_age: 604800\r\n"),
    );
    let web_ip = world.add_web_endpoint(web);

    // 2. The STARTTLS-capable MX.
    let mx_chain = world
        .pki
        .issue(&CertKind::Valid, std::slice::from_ref(&mx_host), now);
    let mx_ip = world.add_mx_endpoint(MxEndpoint::healthy(mx_host.clone(), mx_chain));

    // 3. DNS: MX, the policy host's A record, and the _mta-sts record.
    world.with_zone(domain, |z| {
        z.add_rr(
            domain,
            300,
            RecordData::Mx {
                preference: 10,
                exchange: mx_host.clone(),
            },
        );
        z.add_rr(&mx_host, 300, RecordData::A(mx_ip));
        z.add_rr(&policy_host, 300, RecordData::A(web_ip));
        z.add_rr(
            &domain.prefixed("_mta-sts").unwrap(),
            300,
            RecordData::Txt(vec!["v=STSv1; id=20240601a;".into()]),
        );
    });
}

fn main() {
    let world = World::new();
    let now = SimDate::ymd(2024, 6, 1).at_midnight();

    // A healthy deployment and a broken one (expired MX certificate).
    deploy_domain(&world, &n("good.example"), "enforce", now);
    deploy_domain(&world, &n("broken.example"), "enforce", now);
    {
        // Break the second domain: swap its MX certificate for an expired one.
        let mx_host = n("mx.broken.example");
        let expired = world
            .pki
            .issue(&CertKind::Expired, std::slice::from_ref(&mx_host), now);
        for ip in world.mx_ips() {
            world.with_mx(ip, |mx| {
                if mx.hostname == mx_host {
                    mx.chain = expired.clone();
                }
            });
        }
    }

    // A sending MTA delivers to both, with full MTA-STS validation.
    let mut engine = SenderEngine::new();
    for domain in [n("good.example"), n("broken.example")] {
        let record_txts = world.mta_sts_txts(&domain, now).ok();
        let mx = world.mx_records(&domain, now).unwrap().remove(0);
        let fetch_world = world.clone();
        let fetch_domain = domain.clone();
        let probe = world.probe_mx(&mx, now);
        let chain = probe.chain.clone().unwrap_or_default();
        let trust = world.pki.trust_store().clone();
        let mx_for_tls = mx.clone();
        let (outcome, action) = engine.evaluate(DeliveryObservation {
            domain: &domain,
            record_txts: record_txts.as_deref(),
            fetch_policy: move || {
                fetch_world
                    .fetch_policy(&fetch_domain, now)
                    .result
                    .map(|(_, raw)| raw)
                    .map_err(|e| e.to_string())
            },
            mx_host: &mx,
            check_mx_tls: move || {
                if !probe.starttls_offered {
                    return Err(StsFailure::StartTlsUnavailable);
                }
                validate_chain(&chain, &mx_for_tls, now, &trust).map_err(StsFailure::CertInvalid)
            },
            now,
        });
        println!("{domain}:");
        println!("  outcome: {outcome:?}");
        println!("  action:  {action:?}");
        match action {
            SenderAction::Deliver => println!("  => message delivered, MTA-STS validated\n"),
            SenderAction::Refuse => println!("  => message NOT delivered (enforce mode)\n"),
            SenderAction::DeliverUnvalidated => {
                println!("  => delivered without MTA-STS protection\n")
            }
        }
    }
}
