//! Policy-delegation audit (§5 / Table 2): install a customer on each
//! policy-hosting provider, verify the delegation works, then have the
//! customer opt out and observe what the provider's documented
//! deprovisioning behaviour does to MTA-STS validation.
//!
//! ```sh
//! cargo run --example delegation_audit
//! ```

use dns::RecordData;
use ecosystem::providers::{policy_providers, PolicyUpdateOnOptOut};
use mtasts::Mode;
use netbase::{DomainName, SimDate};
use simnet::{CertKind, WebEndpoint, World};

fn main() {
    let now_date = SimDate::ymd(2024, 6, 1);
    let now = now_date.at_midnight();

    for provider in policy_providers() {
        let world = World::new();
        let customer: DomainName = format!("customer-of-{}.com", provider.key).parse().unwrap();
        let policy_host = customer.prefixed("mta-sts").unwrap();
        let target = provider.cname_target(&customer);
        let base = provider.base_domain();

        // Provider infrastructure + the delegation.
        world.ensure_zone(&base);
        let mut web = WebEndpoint::up();
        web.install_chain(
            policy_host.clone(),
            world
                .pki
                .issue(&CertKind::Valid, std::slice::from_ref(&policy_host), now),
        );
        web.install_policy(
            policy_host.clone(),
            &format!("version: STSv1\r\nmode: enforce\r\nmx: mx.{customer}\r\nmax_age: 86400\r\n"),
        );
        let web_ip = world.add_web_endpoint(web);
        world.with_zone(&base, |z| {
            z.add_rr(&target, 300, RecordData::A(web_ip));
        });
        world.ensure_zone(&customer);
        world.with_zone(&customer, |z| {
            z.add_rr(&policy_host, 300, RecordData::Cname(target.clone()));
            z.add_rr(
                &customer.prefixed("_mta-sts").unwrap(),
                300,
                RecordData::Txt(vec!["v=STSv1; id=1;".into()]),
            );
        });

        let before = world.fetch_policy(&customer, now);
        let before_desc = match &before.result {
            Ok((p, _)) => format!("policy served, mode {}", p.mode),
            Err(e) => format!("{e}"),
        };

        // The customer opts out; the provider applies its documented
        // behaviour (Table 2, verified with each provider's support).
        if provider.opt_out.returns_nxdomain {
            world.with_zone(&base, |z| {
                z.remove_all(&target);
            });
        }
        match provider.opt_out.policy_update {
            PolicyUpdateOnOptOut::Unchanged => {}
            PolicyUpdateOnOptOut::EmptiedFile => {
                world.with_web(web_ip, |ep| {
                    ep.install_policy(policy_host.clone(), "");
                });
            }
            PolicyUpdateOnOptOut::ModeToNone => {
                world.with_web(web_ip, |ep| {
                    ep.install_policy(
                        policy_host.clone(),
                        "version: STSv1\r\nmode: none\r\nmax_age: 86400\r\n",
                    );
                });
            }
        }
        if !provider.opt_out.reissues_cert && !provider.opt_out.returns_nxdomain {
            // Certificates lapse eventually: simulate with an expired chain.
            world.with_web(web_ip, |ep| {
                ep.install_chain(
                    policy_host.clone(),
                    world
                        .pki
                        .issue(&CertKind::Expired, std::slice::from_ref(&policy_host), now),
                );
            });
        }

        let after = world.fetch_policy(&customer, now);
        let after_desc = match &after.result {
            Ok((p, _)) if p.mode == Mode::None => "mode none (released)".to_string(),
            Ok((p, _)) => format!("STALE policy still served, mode {}", p.mode),
            Err(e) => format!("{e}"),
        };
        println!("{}:", provider.key);
        println!("  while customer: {before_desc}");
        println!("  after opt-out:  {after_desc}");
        println!(
            "  (NXDOMAIN={}, reissues cert={}, update={:?})\n",
            provider.opt_out.returns_nxdomain,
            provider.opt_out.reissues_cert,
            provider.opt_out.policy_update
        );
    }
    println!("none of the eight providers follow RFC 8461 §8.3's removal procedure");
}
