//! Outbound delivery pipeline demo: drain a queue against a domain
//! whose first primary MX is flapping, and print the resulting
//! bounce/retry ledger — which rung carried each message, how many
//! attempts and connection-level fail-overs it took, and what the
//! circuit breaker did to the dead host in the meantime.
//!
//! ```sh
//! cargo run --release --example outbound_pipeline
//! ```

use sender::scenario::{build, Degradation, ScenarioSpec};
use sender::{BounceReason, DeliveryQueue, FastTransport, MessageStatus, QueueConfig};

fn main() {
    // Four recipient domains, each with two preference-10 primaries and
    // a preference-20 backup; the first primary alternates 10 minutes
    // dead / 10 minutes alive for three cycles starting at the epoch.
    let spec = ScenarioSpec {
        messages_per_domain: 12,
        ..ScenarioSpec::small(
            42,
            Degradation::FlappingMx {
                down_secs: 600,
                up_secs: 600,
                cycles: 3,
            },
        )
    };
    let scenario = build(spec);
    println!(
        "queue: {} messages across {} domains; mxa.* flaps 600s down / 600s up x3\n",
        scenario.messages.len(),
        scenario.topologies.len()
    );

    let cfg = QueueConfig {
        threads: 1,
        ..QueueConfig::default()
    };
    let transport = FastTransport::new(&scenario.world);
    let outcome = DeliveryQueue::new(cfg).run(&transport, &scenario.messages);

    println!(
        "{:<6} {:<18} {:>9} {:>9} {:>7}  outcome",
        "msg", "recipient", "attempts", "failover", "skips"
    );
    for rec in &outcome.records {
        let outcome_text = match &rec.status {
            MessageStatus::Delivered {
                mx_host,
                tls_used,
                validated,
            } => {
                let tls = match (tls_used, validated) {
                    (true, true) => " (TLS, validated)",
                    (true, false) => " (TLS)",
                    _ => "",
                };
                format!("delivered via {mx_host}{tls}")
            }
            MessageStatus::Bounced { reason } => match reason {
                BounceReason::Permanent { code, text } => {
                    format!("bounced {code}: {text}")
                }
                BounceReason::RetriesExhausted { last_error } => {
                    format!("bounced after retries: {last_error}")
                }
                BounceReason::PolicyRefused { failure } => {
                    format!("bounced: policy refused ({})", failure.label())
                }
                BounceReason::Unroutable => "bounced: unroutable".to_string(),
            },
        };
        println!(
            "{:<6} {:<18} {:>9} {:>9} {:>7}  {}",
            rec.id, rec.rcpt_to, rec.attempts, rec.failovers, rec.breaker_skips, outcome_text
        );
    }

    let s = &outcome.stats;
    println!(
        "\ntotals: {} delivered, {} bounced ({} permanent / {} exhausted / {} unroutable)",
        s.delivered,
        s.bounced_permanent + s.bounced_exhausted + s.bounced_unroutable,
        s.bounced_permanent,
        s.bounced_exhausted,
        s.bounced_unroutable,
    );
    println!(
        "        {} attempts, {} requeues, {} fail-overs, {} breaker skips",
        s.attempts, s.requeues, s.failovers, s.breaker_skips
    );
    for (host, state) in outcome.board.iter() {
        println!("breaker {host}: {state:?}");
    }
}
