//! policy_lint: a diagnostic for MTA-STS configuration text.
//!
//! Feed it a `_mta-sts` TXT record and/or a policy document and it
//! reports every problem the study's taxonomy knows about, plus the
//! consistency check against a list of MX hosts:
//!
//! ```sh
//! cargo run --example policy_lint -- \
//!     --record 'v=STSv1; id=20240131;' \
//!     --policy $'version: STSv1\nmode: enforce\nmx: mx1.example.com\nmax_age: 604800' \
//!     --mx mx1.example.com --mx mx2.example.com
//! ```
//!
//! With no arguments it lints a set of demonstration inputs drawn from
//! the error classes §4.3-4.4 of the paper observed in the wild.

use mtasts::{classify_mismatch, evaluate_record_set, policy::parse_policy, MxPattern};
use netbase::DomainName;

struct Args {
    records: Vec<String>,
    policy: Option<String>,
    mx: Vec<DomainName>,
}

fn parse_args() -> Args {
    let mut args = Args {
        records: Vec::new(),
        policy: None,
        mx: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let value = iter.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        });
        match flag.as_str() {
            "--record" => args.records.push(value),
            "--policy" => args.policy = Some(value),
            "--mx" => args.mx.push(value.parse().unwrap_or_else(|e| {
                eprintln!("bad --mx value: {e}");
                std::process::exit(2);
            })),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn lint(records: &[String], policy_text: Option<&str>, mx: &[DomainName]) -> bool {
    let mut healthy = true;

    if !records.is_empty() {
        match evaluate_record_set(records) {
            Ok(record) => println!("record: OK (id={})", record.id),
            Err(e) => {
                healthy = false;
                println!("record: INVALID [{}] {e}", e.label());
            }
        }
    }

    let Some(text) = policy_text else {
        return healthy;
    };
    match parse_policy(text) {
        Ok(policy) => {
            println!(
                "policy: OK (mode={}, max_age={}, {} mx pattern(s))",
                policy.mode,
                policy.max_age,
                policy.mx.len()
            );
            if policy.max_age < 86_400 {
                println!("policy: WARN max_age under one day gives senders little protection");
            }
            if !mx.is_empty() {
                let mut matched_all = true;
                for host in mx {
                    if !mtasts::mx_matches_policy(host, &policy) {
                        matched_all = false;
                        healthy = false;
                        println!("consistency: MX {host} matches no pattern");
                    }
                }
                for pattern in &policy.mx {
                    if let Some(kind) = classify_mismatch(pattern, mx) {
                        healthy = false;
                        println!(
                            "consistency: pattern {pattern} matches no MX [{}]",
                            kind.label()
                        );
                        if mtasts::matching::has_stray_mta_sts_label(pattern) {
                            println!(
                                "             (the pattern embeds an `mta-sts` label — a common\n\
                                 misreading of RFC 8461; list the MX host, not the policy host)"
                            );
                        }
                    }
                }
                if matched_all {
                    println!("consistency: every MX is covered");
                }
                if policy.mode == mtasts::Mode::Enforce
                    && !mx.iter().any(|h| mtasts::mx_matches_policy(h, &policy))
                {
                    println!(
                        "DELIVERY FAILURE: enforce mode with no matching MX — compliant\n\
                         senders will refuse mail for this domain"
                    );
                }
            }
        }
        Err(e) => {
            healthy = false;
            println!("policy: INVALID [{}] {e}", e.label());
        }
    }
    healthy
}

fn main() {
    let args = parse_args();
    if !args.records.is_empty() || args.policy.is_some() {
        let ok = lint(&args.records, args.policy.as_deref(), &args.mx);
        std::process::exit(if ok { 0 } else { 1 });
    }

    // Demonstration: the wild error classes from §4.3-4.4.
    // (label, TXT records, policy body, served MX hosts)
    type Demo = (
        &'static str,
        Vec<String>,
        Option<&'static str>,
        Vec<&'static str>,
    );
    println!("== demo: the paper's observed error classes ==\n");
    let demos: Vec<Demo> = vec![
        (
            "healthy deployment",
            vec!["v=STSv1; id=20240131;".into()],
            Some("version: STSv1\nmode: enforce\nmx: mx1.example.com\nmax_age: 604800\n"),
            vec!["mx1.example.com"],
        ),
        (
            "id with dashes (61% of broken records)",
            vec!["v=STSv1; id=2024-01-31;".into()],
            None,
            vec![],
        ),
        (
            "policy fields stuffed into the record",
            vec!["v=STSv1; id=1; mx: a.com; mode: testing;".into()],
            None,
            vec![],
        ),
        (
            "email address as mx pattern",
            vec!["v=STSv1; id=1;".into()],
            Some("version: STSv1\nmode: enforce\nmx: postmaster@mx.example.com\nmax_age: 86400\n"),
            vec![],
        ),
        (
            "stray mta-sts label (597 domains)",
            vec!["v=STSv1; id=1;".into()],
            Some("version: STSv1\nmode: enforce\nmx: mta-sts.example.com\nmax_age: 86400\n"),
            vec!["mx.example.com"],
        ),
        (
            "stale policy after mail migration",
            vec!["v=STSv1; id=1;".into()],
            Some("version: STSv1\nmode: enforce\nmx: legacymx.example.com\nmax_age: 86400\n"),
            vec!["aspmx.l.google.com"],
        ),
    ];
    for (name, records, policy, mx) in demos {
        println!("--- {name} ---");
        let mx: Vec<DomainName> = mx.iter().map(|m| m.parse().unwrap()).collect();
        lint(&records, policy, &mx);
        println!();
    }
    // A valid pattern type exercised for completeness.
    let _ = MxPattern::parse("*.example.com").unwrap();
}
